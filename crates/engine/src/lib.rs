//! Columnar in-memory execution engine for the algebra DAG — the stand-in
//! for the paper's MonetDB back-end.
//!
//! Design goals mirror what makes the paper's cost model tick:
//!
//! * the narrow `iter|pos|item` tables are stored column-wise
//!   ([`Column`]), with `Arc`-shared columns so projection/rename is free
//!   (MonetDB "operates on table descriptors rather than individual rows");
//! * `#` ([`exrquy_algebra::Op::RowId`]) materializes a dense integer
//!   column in one `memcpy`-class pass — "negligible cost or even free";
//! * `%` ([`exrquy_algebra::Op::RowNum`]) performs a real sort — the
//!   blocking operator whose elimination the whole paper is about;
//! * the step operator `⬡` is evaluated with staircase join
//!   (`exrquy-xml::axis`), per iteration group and fragment;
//! * every operator's wall-clock time is recorded per operator *kind*
//!   ([`Profile`]), which is exactly the granularity of the paper's
//!   Table 2 breakdown.
//!
//! Evaluation is memoized over the shared DAG: an operator reachable via
//! ten paths is evaluated once (§3's sharing).

pub mod bits;
pub mod column;
pub mod eval;
pub mod funs;
pub mod item;
mod kernels;
mod par;
pub mod profile;
pub mod table;
mod vec;

pub use bits::BitVec;
pub use column::{Column, ColumnBuilder, ColumnError};
pub use eval::{Engine, EngineOptions, EvalError, StepAlgo};
pub use item::Item;
pub use profile::{Profile, SchedStats, VecStats};
pub use table::{ColView, SelVec, Table};
