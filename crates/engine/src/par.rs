//! Work-stealing intra-query scheduler.
//!
//! The scheduler runs over a *node graph* — either the shared DAG
//! (scalar path) or a flattened [`PhysPlan`] whose slots may be fused
//! chains (vectorized path, via [`eval_parallel_phys`]). Both shapes go
//! through the same worker loops and the same kernels, so serial and
//! parallel runs of either path produce bit-identical tables (the
//! differential suites assert this).
//!
//! Independent pure nodes evaluate concurrently; every node-constructing
//! ("writer") operator is pinned to the main thread, in exactly the
//! serial topological sequence — the single-writer rule. Fragment ids
//! and interned name ids are handed out in the same order as a serial
//! run.
//!
//! Shape of the loop: alternate
//!
//! 1. a **parallel region** draining every ready pure node through
//!    per-worker deques with work stealing (a finished node releases its
//!    parents; newly ready pure parents go onto the finishing worker's
//!    own deque), and
//! 2. a **writer phase** executing ready writers on the main thread with
//!    `&mut FragArena`.
//!
//! Termination: after a region drains, the topologically earliest
//! unfinished node has all children finished; the region would have
//! consumed it if it were pure, so it is the next writer in sequence (or
//! the root is done). The loop therefore always progresses.
//!
//! Budget charging, cancellation polls, and failpoint polls go through
//! the shared atomic [`BudgetMeter`] — those are the yield points.
//! Failpoint trip *placement* is racy under parallel completion order
//! (the counters are global), but the error paths taken are the same.

use crate::eval::{
    eval_attr, eval_element, eval_pure, eval_textnode, poll_failpoints, Engine, EngineOptions,
    EvalError,
};
use crate::profile::{Profile, SchedStats};
use crate::table::Table;
use crate::vec::exec_fused;
use exrquy_algebra::{Dag, FuseStep, Op, OpId, PhysOp, PhysPlan};
use exrquy_diag::BudgetMeter;
use exrquy_xml::FragArena;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Shared atomic scheduler counters of one execution, snapshotted into
/// [`SchedStats`] when the run completes.
#[derive(Default)]
struct SchedCounters {
    regions: AtomicU64,
    par_ops: AtomicU64,
    inline_ops: AtomicU64,
    steals: AtomicU64,
    queue_peak: AtomicU64,
}

impl SchedCounters {
    fn note_queue_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SchedStats {
        SchedStats {
            regions: self.regions.load(Ordering::Relaxed),
            par_ops: self.par_ops.load(Ordering::Relaxed),
            inline_ops: self.inline_ops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }
}

// Everything a worker touches must cross the scope boundary.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<FragArena>();
    assert_sync::<EngineOptions>();
    assert_sync::<BudgetMeter>();
    assert_send::<EvalError>();
    assert_send::<Profile>();
};

/// What a scheduled node executes.
enum NodeKind<'p> {
    /// A pure logical operator (kernels run via [`eval_pure`]).
    Pure(OpId),
    /// An arena-mutating constructor, pinned to the main thread.
    Writer(OpId),
    /// A fused chain over the node's single child.
    Fused(&'p [FuseStep]),
}

/// A schedulable plan: nodes in topological order with node-index
/// operand edges (operand order and multiplicity preserved — kernels
/// resolve children by ordinal).
struct NodeGraph<'p> {
    nodes: Vec<NodeKind<'p>>,
    children: Vec<Vec<u32>>,
    /// DAG id publishing each node's table (chain tail for fused nodes);
    /// the key for memo-cache seeding, profiling, and failpoints.
    out_ids: Vec<OpId>,
    root: usize,
}

impl NodeGraph<'_> {
    fn len(&self) -> usize {
        self.nodes.len()
    }
}

fn graph_from_dag(dag: &Dag, root: OpId) -> NodeGraph<'static> {
    let order = dag.topo_order(root);
    let mut idx_of: HashMap<OpId, u32> = HashMap::with_capacity(order.len());
    let mut g = NodeGraph {
        nodes: Vec::with_capacity(order.len()),
        children: Vec::with_capacity(order.len()),
        out_ids: Vec::with_capacity(order.len()),
        root: 0,
    };
    for &id in &order {
        idx_of.insert(id, g.nodes.len() as u32);
        let op = dag.op(id);
        g.children
            .push(op.children().iter().map(|c| idx_of[c]).collect());
        g.nodes.push(if is_writer_op(op) {
            NodeKind::Writer(id)
        } else {
            NodeKind::Pure(id)
        });
        g.out_ids.push(id);
    }
    g.root = idx_of[&root] as usize;
    g
}

fn graph_from_phys<'p>(dag: &Dag, plan: &'p PhysPlan) -> NodeGraph<'p> {
    let mut g = NodeGraph {
        nodes: Vec::with_capacity(plan.len()),
        children: Vec::with_capacity(plan.len()),
        out_ids: Vec::with_capacity(plan.len()),
        root: plan.root as usize,
    };
    for op in &plan.ops {
        match op {
            PhysOp::Op { id, args } => {
                g.children.push(args.clone());
                g.nodes.push(if is_writer_op(dag.op(*id)) {
                    NodeKind::Writer(*id)
                } else {
                    NodeKind::Pure(*id)
                });
            }
            PhysOp::Fused { input, steps, .. } => {
                g.children.push(vec![*input]);
                g.nodes.push(NodeKind::Fused(steps));
            }
        }
        g.out_ids.push(op.out_id());
    }
    g
}

/// Shared scheduler state, borrowed by every worker of a region.
struct Cx<'a, 'p> {
    dag: &'a Dag,
    graph: &'a NodeGraph<'p>,
    arena: &'a FragArena,
    opts: &'a EngineOptions,
    meter: &'a BudgetMeter,
    /// One result slot per graph node.
    results: &'a [OnceLock<Arc<Table>>],
    /// Outstanding-children count per node (with multiplicity: a node
    /// using one child twice waits for it twice).
    waiting: &'a [AtomicUsize],
    /// Reverse edges, with multiplicity.
    parents: &'a [Vec<u32>],
    threads: usize,
    counters: &'a SchedCounters,
}

impl Cx<'_, '_> {
    fn result(&self, ni: u32) -> Arc<Table> {
        self.results[ni as usize]
            .get()
            .expect("child evaluated before parent (topological invariant)")
            .clone()
    }

    /// Evaluate one pure node, publish its table, and return the parents
    /// it made ready (pure parents only — writers are picked up by the
    /// main loop's sequence pointer).
    fn step(&self, ni: u32, prof: &mut Profile) -> Result<Vec<u32>, EvalError> {
        self.meter.poll()?;
        let out = self.graph.out_ids[ni as usize];
        let ch = &self.graph.children[ni as usize];
        let table = match &self.graph.nodes[ni as usize] {
            NodeKind::Pure(id) => {
                poll_failpoints(&self.opts.failpoints, self.dag, *id, self.meter.ops_seen())?;
                let started = Instant::now();
                let table = eval_pure(
                    self.dag,
                    *id,
                    &|k| self.result(ch[k]),
                    self.arena,
                    self.opts,
                    self.meter,
                )?;
                prof.record(self.dag, *id, started.elapsed());
                prof.record_rows(*id, table.nrows());
                table
            }
            NodeKind::Fused(steps) => {
                let started = Instant::now();
                let input = self.result(ch[0]);
                let mut batches = 0u64;
                let table = exec_fused(
                    &input,
                    steps,
                    self.arena,
                    self.opts,
                    self.meter,
                    &mut batches,
                )?;
                prof.vec.batches += batches;
                prof.record(self.dag, out, started.elapsed());
                prof.record_rows(out, table.nrows());
                table
            }
            NodeKind::Writer(_) => unreachable!("writers run on the owning thread"),
        };
        self.meter.charge_rows(table.nrows())?;
        let _ = self.results[ni as usize].set(Arc::new(table));
        self.meter.record_op();
        Ok(self.release_parents(ni))
    }

    /// Decrement each parent's outstanding count; a parent hitting zero
    /// is ready. Pure ready parents are returned; ready writers surface
    /// through the main loop's `waiting` check instead.
    fn release_parents(&self, ni: u32) -> Vec<u32> {
        let mut ready = Vec::new();
        for &p in &self.parents[ni as usize] {
            if self.waiting[p as usize].fetch_sub(1, Ordering::AcqRel) == 1
                && !matches!(self.graph.nodes[p as usize], NodeKind::Writer(_))
            {
                ready.push(p);
            }
        }
        ready
    }
}

/// Drain `seeds` and everything they transitively make ready, in
/// parallel. Linear stretches run inline on the calling thread; a scoped
/// worker pool is only spun up once two or more nodes are ready at the
/// same time.
fn run_region(
    cx: &Cx<'_, '_>,
    mut seeds: Vec<u32>,
    profile: &mut Profile,
) -> Result<(), EvalError> {
    while seeds.len() == 1 {
        let ni = seeds.pop().expect("len checked");
        cx.counters.inline_ops.fetch_add(1, Ordering::Relaxed);
        seeds.extend(cx.step(ni, profile)?);
    }
    if seeds.is_empty() {
        return Ok(());
    }
    cx.counters.regions.fetch_add(1, Ordering::Relaxed);
    cx.counters.note_queue_depth(seeds.len());
    let w = cx.threads.min(seeds.len());
    let deques: Vec<Mutex<VecDeque<u32>>> = (0..w).map(|_| Mutex::new(VecDeque::new())).collect();
    // `tasks` counts published-but-unfinished nodes; workers spin until
    // it reaches zero. Children are published (and counted) before their
    // releaser is retired, so the count only hits zero when the region
    // is truly drained.
    let tasks = AtomicUsize::new(seeds.len());
    for (i, ni) in seeds.into_iter().enumerate() {
        deques[i % w].lock().expect("deque lock").push_back(ni);
    }
    let abort = AtomicBool::new(false);
    let first_err: Mutex<Option<EvalError>> = Mutex::new(None);
    let worker_profiles: Vec<Profile> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..w)
            .map(|wi| {
                let (deques, tasks, abort, first_err) = (&deques, &tasks, &abort, &first_err);
                s.spawn(move || {
                    let mut prof = Profile::default();
                    worker_loop(cx, wi, deques, tasks, abort, first_err, &mut prof);
                    prof
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region worker panicked"))
            .collect()
    });
    for p in &worker_profiles {
        profile.merge(p);
    }
    if let Some(e) = first_err.into_inner().expect("error lock") {
        return Err(e);
    }
    Ok(())
}

fn worker_loop(
    cx: &Cx<'_, '_>,
    wi: usize,
    deques: &[Mutex<VecDeque<u32>>],
    tasks: &AtomicUsize,
    abort: &AtomicBool,
    first_err: &Mutex<Option<EvalError>>,
    prof: &mut Profile,
) {
    let w = deques.len();
    loop {
        if abort.load(Ordering::Acquire) || tasks.load(Ordering::Acquire) == 0 {
            return;
        }
        // Own deque first (LIFO: cache-warm, depth-first); steal FIFO
        // from the others otherwise (oldest task: likely a big subtree).
        let mut next = deques[wi].lock().expect("deque lock").pop_back();
        if next.is_none() {
            for k in 1..w {
                let victim = (wi + k) % w;
                next = deques[victim].lock().expect("deque lock").pop_front();
                if next.is_some() {
                    cx.counters.steals.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        let Some(ni) = next else {
            std::thread::yield_now();
            continue;
        };
        cx.counters.par_ops.fetch_add(1, Ordering::Relaxed);
        match cx.step(ni, prof) {
            Ok(ready) => {
                if !ready.is_empty() {
                    let outstanding = tasks.fetch_add(ready.len(), Ordering::Release) + ready.len();
                    cx.counters.note_queue_depth(outstanding);
                    let mut dq = deques[wi].lock().expect("deque lock");
                    dq.extend(ready);
                }
            }
            Err(e) => {
                let mut slot = first_err.lock().expect("error lock");
                if slot.is_none() {
                    *slot = Some(e);
                }
                abort.store(true, Ordering::Release);
                return;
            }
        }
        tasks.fetch_sub(1, Ordering::Release);
    }
}

/// Evaluate one writer node on the main thread; `ch` are its operand
/// node indices in [`Op::children`] order.
fn eval_writer(
    engine: &mut Engine<'_, '_>,
    id: OpId,
    ch: &[u32],
    results: &[OnceLock<Arc<Table>>],
) -> Result<Table, EvalError> {
    let get = |k: usize| -> Arc<Table> {
        results[ch[k] as usize]
            .get()
            .expect("writer input evaluated")
            .clone()
    };
    match engine.dag.op(id).clone() {
        Op::Element { .. } => {
            let (nt, ct) = (get(0), get(1));
            eval_element(engine.arena, &nt, &ct)
        }
        Op::Attr { .. } => {
            let (nt, vt) = (get(0), get(1));
            eval_attr(engine.arena, &nt, &vt)
        }
        Op::TextNode { .. } => {
            let ct = get(0);
            eval_textnode(engine.arena, &ct)
        }
        other => unreachable!("`{}` is not a writer operator", other.kind_name()),
    }
}

fn is_writer_op(op: &Op) -> bool {
    matches!(
        op,
        Op::Element { .. } | Op::Attr { .. } | Op::TextNode { .. }
    )
}

/// Parallel evaluation of the DAG rooted at `root` (entered from
/// [`Engine::eval`] on the scalar path when `threads > 1`).
pub(crate) fn eval_parallel(
    engine: &mut Engine<'_, '_>,
    root: OpId,
) -> Result<Arc<Table>, EvalError> {
    let graph = graph_from_dag(engine.dag, root);
    eval_parallel_graph(engine, &graph)
}

/// Parallel evaluation of a flattened plan (entered from the vectorized
/// executor when `threads > 1`); fused chains are scheduled as single
/// nodes, so both paths share the kernel bodies.
pub(crate) fn eval_parallel_phys(
    engine: &mut Engine<'_, '_>,
    plan: &PhysPlan,
) -> Result<Arc<Table>, EvalError> {
    let graph = graph_from_phys(engine.dag, plan);
    eval_parallel_graph(engine, &graph)
}

fn eval_parallel_graph(
    engine: &mut Engine<'_, '_>,
    graph: &NodeGraph<'_>,
) -> Result<Arc<Table>, EvalError> {
    let dag = engine.dag;
    let n = graph.len();
    let results: Vec<OnceLock<Arc<Table>>> = (0..n).map(|_| OnceLock::new()).collect();
    // Seed from the memo cache (repeated `eval` calls on one engine).
    for (i, out) in graph.out_ids.iter().enumerate() {
        if let Some(t) = engine.cache.get(out) {
            let _ = results[i].set(t.clone());
        }
    }
    let mut waiting: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let mut parents: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        if results[i].get().is_some() {
            continue;
        }
        let mut outstanding = 0;
        for &c in &graph.children[i] {
            if results[c as usize].get().is_some() {
                continue;
            }
            outstanding += 1;
            parents[c as usize].push(i as u32);
        }
        waiting[i] = AtomicUsize::new(outstanding);
    }
    let writer_seq: Vec<usize> = (0..n)
        .filter(|&i| matches!(graph.nodes[i], NodeKind::Writer(_)) && results[i].get().is_none())
        .collect();
    let mut seeds: Vec<u32> = (0..n)
        .filter(|&i| {
            results[i].get().is_none()
                && !matches!(graph.nodes[i], NodeKind::Writer(_))
                && waiting[i].load(Ordering::Relaxed) == 0
        })
        .map(|i| i as u32)
        .collect();
    let threads = engine.opts.threads;
    let counters = SchedCounters::default();
    let mut next_writer = 0;
    while results[graph.root].get().is_none() {
        if !seeds.is_empty() {
            let cx = Cx {
                dag,
                graph,
                arena: &*engine.arena,
                opts: &engine.opts,
                meter: &engine.meter,
                results: &results,
                waiting: &waiting,
                parents: &parents,
                threads,
                counters: &counters,
            };
            run_region(&cx, std::mem::take(&mut seeds), &mut engine.profile)?;
        }
        let mut progressed = false;
        while next_writer < writer_seq.len() {
            let i = writer_seq[next_writer];
            if waiting[i].load(Ordering::Acquire) != 0 {
                break;
            }
            next_writer += 1;
            progressed = true;
            let NodeKind::Writer(id) = graph.nodes[i] else {
                unreachable!("writer sequence holds writers only")
            };
            engine.meter.poll()?;
            engine.poll_failpoints(id)?;
            let started = Instant::now();
            let table = eval_writer(engine, id, &graph.children[i], &results)?;
            engine.profile.record(dag, id, started.elapsed());
            let nrows = table.nrows();
            engine.profile.record_rows(id, nrows);
            let _ = results[i].set(Arc::new(table));
            engine.charge_op_output(nrows)?;
            engine.meter.record_op();
            for &p in &parents[i] {
                if waiting[p as usize].fetch_sub(1, Ordering::AcqRel) == 1
                    && !matches!(graph.nodes[p as usize], NodeKind::Writer(_))
                {
                    seeds.push(p);
                }
            }
        }
        if results[graph.root].get().is_some() {
            break;
        }
        if seeds.is_empty() && !progressed {
            unreachable!("scheduler stalled: no ready node but the root is incomplete");
        }
    }
    engine.profile.sched.merge(&counters.snapshot());
    // Fill the memo cache so later `eval` calls (e.g. a second root over
    // the same engine) reuse this run's results.
    for (i, out) in graph.out_ids.iter().enumerate() {
        if let Some(t) = results[i].get() {
            engine.cache.entry(*out).or_insert_with(|| t.clone());
        }
    }
    Ok(results[graph.root].get().expect("root evaluated").clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EngineOptions;
    use crate::item::Item;
    use exrquy_algebra::{AValue, Col, FunKind};
    use exrquy_xml::Catalog;

    fn opts(threads: usize) -> EngineOptions {
        EngineOptions {
            threads,
            ..EngineOptions::default()
        }
    }

    fn lit(dag: &mut Dag, cols: Vec<Col>, rows: Vec<Vec<i64>>) -> OpId {
        dag.add(Op::Lit {
            cols,
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(AValue::Int).collect())
                .collect(),
        })
    }

    /// A diamond of pure operators: two independent branches over one
    /// shared literal, joined by a union.
    fn diamond(dag: &mut Dag) -> OpId {
        let rows: Vec<Vec<i64>> = (0..10_000).map(|i| vec![i % 7, i]).collect();
        let base = lit(dag, vec![Col::ITER, Col::ITEM], rows);
        let a = dag.add(Op::RowNum {
            input: base,
            new: Col::POS,
            order: vec![exrquy_algebra::SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let b = dag.add(Op::RowId {
            input: base,
            new: Col::POS,
        });
        dag.add(Op::Union { l: a, r: b })
    }

    #[test]
    fn parallel_matches_serial_on_diamond() {
        let mut dag = Dag::new();
        let root = diamond(&mut dag);
        let run = |threads: usize| -> Table {
            let mut arena = FragArena::new(Arc::new(Catalog::new()));
            let mut e = Engine::new(&dag, &mut arena, opts(threads));
            (*e.eval(root).unwrap()).clone()
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial.schema(), par.schema());
        assert_eq!(serial.nrows(), par.nrows());
        for (name, col) in serial.columns() {
            assert_eq!(col.to_column(), par.col(*name).to_column(), "column {name}");
        }
    }

    #[test]
    fn scheduler_counters_populate_under_parallel_execution() {
        let mut dag = Dag::new();
        let root = diamond(&mut dag);
        let mut arena = FragArena::new(Arc::new(Catalog::new()));
        let mut e = Engine::new(&dag, &mut arena, opts(4));
        e.eval(root).unwrap();
        let s = e.profile.sched;
        // The diamond has 4 pure operators; every one must be accounted
        // either to a worker pool or to an inline stretch.
        assert_eq!(s.par_ops + s.inline_ops, 4, "{s:?}");
        // The two independent branches are ready simultaneously.
        assert!(s.regions >= 1, "{s:?}");
        assert!(s.queue_peak >= 2, "{s:?}");
        // Serial execution never touches the scheduler.
        let mut arena2 = FragArena::new(Arc::new(Catalog::new()));
        let mut e2 = Engine::new(&dag, &mut arena2, opts(1));
        e2.eval(root).unwrap();
        assert_eq!(e2.profile.sched, SchedStats::default());
    }

    #[test]
    fn parallel_runs_fused_chains_identically() {
        // fun → σ → fun over a wide literal: fuses into one chain, which
        // the scheduler must execute as a single node with the same
        // result as the serial vectorized run and the scalar run.
        let mut dag = Dag::new();
        let rows: Vec<Vec<i64>> = (0..20_000).map(|i| vec![i % 11, i]).collect();
        let base = lit(&mut dag, vec![Col::ITER, Col::ITEM], rows);
        let lt = dag.add(Op::Fun {
            input: base,
            new: Col::RES,
            kind: FunKind::Lt,
            args: vec![Col::ITER, Col::ITEM],
        });
        let sel = dag.add(Op::Select {
            input: lt,
            col: Col::RES,
        });
        let add = dag.add(Op::Fun {
            input: sel,
            new: Col::ITEM1,
            kind: FunKind::Add,
            args: vec![Col::ITER, Col::ITEM],
        });
        let root = dag.add(Op::Distinct { input: add });
        let run = |threads: usize, scalar: bool| -> Table {
            let mut arena = FragArena::new(Arc::new(Catalog::new()));
            let mut e = Engine::new(
                &dag,
                &mut arena,
                EngineOptions {
                    threads,
                    scalar,
                    ..EngineOptions::default()
                },
            );
            (*e.eval(root).unwrap()).clone()
        };
        let scalar = run(1, true);
        for t in [run(1, false), run(4, false)] {
            assert_eq!(scalar.schema(), t.schema());
            assert_eq!(scalar.nrows(), t.nrows());
            // Value-wise comparison: the vectorized path may pick denser
            // physical representations (bit-packed booleans) for the
            // same logical column.
            for (name, col) in scalar.columns() {
                let tc = t.col(*name);
                for r in 0..scalar.nrows() {
                    assert_eq!(col.get(r), tc.get(r), "column {name} row {r}");
                }
            }
        }
        // The chain really fused (3 ops in one slot).
        let mut arena = FragArena::new(Arc::new(Catalog::new()));
        let mut e = Engine::new(&dag, &mut arena, opts(4));
        e.eval(root).unwrap();
        assert_eq!(e.profile.vec.fused_chains, 1, "{:?}", e.profile.vec);
        assert_eq!(e.profile.vec.fused_ops, 3, "{:?}", e.profile.vec);
    }

    #[test]
    fn parallel_construction_matches_serial() {
        let mut dag = Dag::new();
        let names = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::ITEM],
            rows: vec![
                vec![AValue::Int(1), AValue::str("a")],
                vec![AValue::Int(2), AValue::str("b")],
            ],
        });
        let content = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::POS, Col::ITEM],
            rows: vec![
                vec![AValue::Int(1), AValue::Int(1), AValue::Int(10)],
                vec![AValue::Int(2), AValue::Int(1), AValue::Int(20)],
            ],
        });
        let elem = dag.add(Op::Element { names, content });
        let render = |threads: usize| -> Vec<String> {
            let mut arena = FragArena::new(Arc::new(Catalog::new()));
            let mut e = Engine::new(&dag, &mut arena, opts(threads));
            let t = e.eval(elem).unwrap();
            (0..t.nrows())
                .map(|r| {
                    let Item::Node(node) = t.item(Col::ITEM, r) else {
                        panic!("expected node")
                    };
                    exrquy_xml::serialize::node_to_string(e.arena, node)
                })
                .collect()
        };
        assert_eq!(render(1), render(4));
        assert_eq!(render(4), vec!["<a>10</a>".to_string(), "<b>20</b>".into()]);
    }

    #[test]
    fn parallel_reports_evaluation_errors() {
        let mut dag = Dag::new();
        // Select on a non-boolean column fails identically on both paths.
        let base = lit(&mut dag, vec![Col::ITER, Col::ITEM], vec![vec![1, 5]]);
        let bad = dag.add(Op::Select {
            input: base,
            col: Col::ITEM,
        });
        let ok = dag.add(Op::Distinct { input: base });
        let root = dag.add(Op::Union { l: bad, r: ok });
        let err_of = |threads: usize| {
            let mut arena = FragArena::new(Arc::new(Catalog::new()));
            let mut e = Engine::new(&dag, &mut arena, opts(threads));
            e.eval(root).unwrap_err()
        };
        assert_eq!(err_of(1).code, err_of(4).code);
    }
}
