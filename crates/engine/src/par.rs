//! Work-stealing intra-query scheduler.
//!
//! [`eval_parallel`] evaluates independent pure subplans of the shared
//! DAG concurrently and pins every node-constructing ("writer") operator
//! to the main thread, in exactly the serial topological sequence — the
//! single-writer rule. Fragment ids and interned name ids are handed out
//! in the same order as a serial run, so the two paths produce
//! bit-identical tables (the differential suites assert this).
//!
//! Shape of the loop: alternate
//!
//! 1. a **parallel region** draining every ready pure operator through
//!    per-worker deques with work stealing (a finished operator releases
//!    its parents; newly ready pure parents go onto the finishing
//!    worker's own deque), and
//! 2. a **writer phase** executing ready writers on the main thread with
//!    `&mut FragArena`.
//!
//! Termination: after a region drains, the topologically earliest
//! unfinished operator has all children finished; the region would have
//! consumed it if it were pure, so it is the next writer in sequence (or
//! the root is done). The loop therefore always progresses.
//!
//! Budget charging, cancellation polls, and failpoint polls go through
//! the shared atomic [`BudgetMeter`] — those are the yield points.
//! Failpoint trip *placement* is racy under parallel completion order
//! (the counters are global), but the error paths taken are the same.

use crate::eval::{
    eval_attr, eval_element, eval_pure, eval_textnode, poll_failpoints, Engine, EngineOptions,
    EvalError,
};
use crate::profile::{Profile, SchedStats};
use crate::table::Table;
use exrquy_algebra::{Dag, Op, OpId};
use exrquy_diag::BudgetMeter;
use exrquy_xml::FragArena;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Shared atomic scheduler counters of one execution, snapshotted into
/// [`SchedStats`] when the run completes.
#[derive(Default)]
struct SchedCounters {
    regions: AtomicU64,
    par_ops: AtomicU64,
    inline_ops: AtomicU64,
    steals: AtomicU64,
    queue_peak: AtomicU64,
}

impl SchedCounters {
    fn note_queue_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SchedStats {
        SchedStats {
            regions: self.regions.load(Ordering::Relaxed),
            par_ops: self.par_ops.load(Ordering::Relaxed),
            inline_ops: self.inline_ops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }
}

// Everything a worker touches must cross the scope boundary.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<FragArena>();
    assert_sync::<EngineOptions>();
    assert_sync::<BudgetMeter>();
    assert_send::<EvalError>();
    assert_send::<Profile>();
};

/// Shared scheduler state, borrowed by every worker of a region.
struct Cx<'a> {
    dag: &'a Dag,
    arena: &'a FragArena,
    opts: &'a EngineOptions,
    meter: &'a BudgetMeter,
    /// One result slot per DAG operator, indexed by `OpId.0`.
    results: &'a [OnceLock<Arc<Table>>],
    /// Outstanding-children count per operator (with multiplicity: an
    /// operator using one child twice waits for it twice).
    waiting: &'a [AtomicUsize],
    /// Reverse edges, with multiplicity, restricted to the live plan.
    parents: &'a [Vec<u32>],
    is_writer: &'a [bool],
    threads: usize,
    counters: &'a SchedCounters,
}

impl Cx<'_> {
    fn result(&self, id: OpId) -> Arc<Table> {
        self.results[id.0 as usize]
            .get()
            .expect("child evaluated before parent (topological invariant)")
            .clone()
    }

    /// Evaluate one pure operator, publish its table, and return the
    /// parents it made ready (pure parents only — writers are picked up
    /// by the main loop's sequence pointer).
    fn step(&self, id: OpId, prof: &mut Profile) -> Result<Vec<OpId>, EvalError> {
        self.meter.poll()?;
        poll_failpoints(&self.opts.failpoints, self.dag, id, self.meter.ops_seen())?;
        let started = Instant::now();
        let table = eval_pure(
            self.dag,
            id,
            &|i| self.result(i),
            self.arena,
            self.opts,
            self.meter,
        )?;
        prof.record(self.dag, id, started.elapsed());
        self.meter.charge_rows(table.nrows())?;
        let _ = self.results[id.0 as usize].set(Arc::new(table));
        self.meter.record_op();
        Ok(self.release_parents(id))
    }

    /// Decrement each parent's outstanding count; a parent hitting zero
    /// is ready. Pure ready parents are returned; ready writers surface
    /// through the main loop's `waiting` check instead.
    fn release_parents(&self, id: OpId) -> Vec<OpId> {
        let mut ready = Vec::new();
        for &p in &self.parents[id.0 as usize] {
            if self.waiting[p as usize].fetch_sub(1, Ordering::AcqRel) == 1
                && !self.is_writer[p as usize]
            {
                ready.push(OpId(p));
            }
        }
        ready
    }
}

/// Drain `seeds` and everything they transitively make ready, in
/// parallel. Linear stretches run inline on the calling thread; a scoped
/// worker pool is only spun up once two or more operators are ready at
/// the same time.
fn run_region(cx: &Cx<'_>, mut seeds: Vec<OpId>, profile: &mut Profile) -> Result<(), EvalError> {
    while seeds.len() == 1 {
        let id = seeds.pop().expect("len checked");
        cx.counters.inline_ops.fetch_add(1, Ordering::Relaxed);
        seeds.extend(cx.step(id, profile)?);
    }
    if seeds.is_empty() {
        return Ok(());
    }
    cx.counters.regions.fetch_add(1, Ordering::Relaxed);
    cx.counters.note_queue_depth(seeds.len());
    let w = cx.threads.min(seeds.len());
    let deques: Vec<Mutex<VecDeque<OpId>>> = (0..w).map(|_| Mutex::new(VecDeque::new())).collect();
    // `tasks` counts published-but-unfinished operators; workers spin
    // until it reaches zero. Children are published (and counted) before
    // their releaser is retired, so the count only hits zero when the
    // region is truly drained.
    let tasks = AtomicUsize::new(seeds.len());
    for (i, id) in seeds.into_iter().enumerate() {
        deques[i % w].lock().expect("deque lock").push_back(id);
    }
    let abort = AtomicBool::new(false);
    let first_err: Mutex<Option<EvalError>> = Mutex::new(None);
    let worker_profiles: Vec<Profile> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..w)
            .map(|wi| {
                let (deques, tasks, abort, first_err) = (&deques, &tasks, &abort, &first_err);
                s.spawn(move || {
                    let mut prof = Profile::default();
                    worker_loop(cx, wi, deques, tasks, abort, first_err, &mut prof);
                    prof
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region worker panicked"))
            .collect()
    });
    for p in &worker_profiles {
        profile.merge(p);
    }
    if let Some(e) = first_err.into_inner().expect("error lock") {
        return Err(e);
    }
    Ok(())
}

fn worker_loop(
    cx: &Cx<'_>,
    wi: usize,
    deques: &[Mutex<VecDeque<OpId>>],
    tasks: &AtomicUsize,
    abort: &AtomicBool,
    first_err: &Mutex<Option<EvalError>>,
    prof: &mut Profile,
) {
    let w = deques.len();
    loop {
        if abort.load(Ordering::Acquire) || tasks.load(Ordering::Acquire) == 0 {
            return;
        }
        // Own deque first (LIFO: cache-warm, depth-first); steal FIFO
        // from the others otherwise (oldest task: likely a big subtree).
        let mut next = deques[wi].lock().expect("deque lock").pop_back();
        if next.is_none() {
            for k in 1..w {
                let victim = (wi + k) % w;
                next = deques[victim].lock().expect("deque lock").pop_front();
                if next.is_some() {
                    cx.counters.steals.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        let Some(id) = next else {
            std::thread::yield_now();
            continue;
        };
        cx.counters.par_ops.fetch_add(1, Ordering::Relaxed);
        match cx.step(id, prof) {
            Ok(ready) => {
                if !ready.is_empty() {
                    let outstanding = tasks.fetch_add(ready.len(), Ordering::Release) + ready.len();
                    cx.counters.note_queue_depth(outstanding);
                    let mut dq = deques[wi].lock().expect("deque lock");
                    dq.extend(ready);
                }
            }
            Err(e) => {
                let mut slot = first_err.lock().expect("error lock");
                if slot.is_none() {
                    *slot = Some(e);
                }
                abort.store(true, Ordering::Release);
                return;
            }
        }
        tasks.fetch_sub(1, Ordering::Release);
    }
}

/// Evaluate one writer operator on the main thread.
fn eval_writer(
    engine: &mut Engine<'_, '_>,
    id: OpId,
    results: &[OnceLock<Arc<Table>>],
) -> Result<Table, EvalError> {
    let get = |i: OpId| -> Arc<Table> {
        results[i.0 as usize]
            .get()
            .expect("writer input evaluated")
            .clone()
    };
    match engine.dag.op(id).clone() {
        Op::Element { names, content } => {
            let (nt, ct) = (get(names), get(content));
            eval_element(engine.arena, &nt, &ct)
        }
        Op::Attr { names, values } => {
            let (nt, vt) = (get(names), get(values));
            eval_attr(engine.arena, &nt, &vt)
        }
        Op::TextNode { content } => {
            let ct = get(content);
            eval_textnode(engine.arena, &ct)
        }
        other => unreachable!("`{}` is not a writer operator", other.kind_name()),
    }
}

fn is_writer_op(op: &Op) -> bool {
    matches!(
        op,
        Op::Element { .. } | Op::Attr { .. } | Op::TextNode { .. }
    )
}

/// Parallel evaluation of the plan rooted at `root` (entered from
/// [`Engine::eval`] when `threads > 1`).
pub(crate) fn eval_parallel(
    engine: &mut Engine<'_, '_>,
    root: OpId,
) -> Result<Arc<Table>, EvalError> {
    let dag = engine.dag;
    let order = dag.topo_order(root);
    let n = dag.len();
    let results: Vec<OnceLock<Arc<Table>>> = (0..n).map(|_| OnceLock::new()).collect();
    // Seed from the memo cache (repeated `eval` calls on one engine).
    for (id, t) in &engine.cache {
        let _ = results[id.0 as usize].set(t.clone());
    }
    let mut waiting: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let mut parents: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut is_writer = vec![false; n];
    for &id in &order {
        let i = id.0 as usize;
        is_writer[i] = is_writer_op(dag.op(id));
        if results[i].get().is_some() {
            continue;
        }
        let mut outstanding = 0;
        for c in dag.op(id).children() {
            if results[c.0 as usize].get().is_some() {
                continue;
            }
            outstanding += 1;
            parents[c.0 as usize].push(id.0);
        }
        waiting[i] = AtomicUsize::new(outstanding);
    }
    let writer_seq: Vec<OpId> = order
        .iter()
        .copied()
        .filter(|&id| is_writer[id.0 as usize] && results[id.0 as usize].get().is_none())
        .collect();
    let mut seeds: Vec<OpId> = order
        .iter()
        .copied()
        .filter(|&id| {
            results[id.0 as usize].get().is_none()
                && !is_writer[id.0 as usize]
                && waiting[id.0 as usize].load(Ordering::Relaxed) == 0
        })
        .collect();
    let threads = engine.opts.threads;
    let counters = SchedCounters::default();
    let mut next_writer = 0;
    while results[root.0 as usize].get().is_none() {
        if !seeds.is_empty() {
            let cx = Cx {
                dag,
                arena: &*engine.arena,
                opts: &engine.opts,
                meter: &engine.meter,
                results: &results,
                waiting: &waiting,
                parents: &parents,
                is_writer: &is_writer,
                threads,
                counters: &counters,
            };
            run_region(&cx, std::mem::take(&mut seeds), &mut engine.profile)?;
        }
        let mut progressed = false;
        while next_writer < writer_seq.len() {
            let id = writer_seq[next_writer];
            if waiting[id.0 as usize].load(Ordering::Acquire) != 0 {
                break;
            }
            next_writer += 1;
            progressed = true;
            engine.meter.poll()?;
            engine.poll_failpoints(id)?;
            let started = Instant::now();
            let table = eval_writer(engine, id, &results)?;
            engine.profile.record(dag, id, started.elapsed());
            let nrows = table.nrows();
            let _ = results[id.0 as usize].set(Arc::new(table));
            engine.charge_op_output(nrows)?;
            engine.meter.record_op();
            for &p in &parents[id.0 as usize] {
                if waiting[p as usize].fetch_sub(1, Ordering::AcqRel) == 1 && !is_writer[p as usize]
                {
                    seeds.push(OpId(p));
                }
            }
        }
        if results[root.0 as usize].get().is_some() {
            break;
        }
        if seeds.is_empty() && !progressed {
            unreachable!("scheduler stalled: no ready operator but the root is incomplete");
        }
    }
    engine.profile.sched.merge(&counters.snapshot());
    // Fill the memo cache so later `eval` calls (e.g. a second root over
    // the same engine) reuse this run's results.
    for &id in &order {
        if let Some(t) = results[id.0 as usize].get() {
            engine.cache.entry(id).or_insert_with(|| t.clone());
        }
    }
    Ok(results[root.0 as usize]
        .get()
        .expect("root evaluated")
        .clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EngineOptions;
    use crate::item::Item;
    use exrquy_algebra::{AValue, Col};
    use exrquy_xml::Catalog;

    fn opts(threads: usize) -> EngineOptions {
        EngineOptions {
            threads,
            ..EngineOptions::default()
        }
    }

    fn lit(dag: &mut Dag, cols: Vec<Col>, rows: Vec<Vec<i64>>) -> OpId {
        dag.add(Op::Lit {
            cols,
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(AValue::Int).collect())
                .collect(),
        })
    }

    /// A diamond of pure operators: two independent branches over one
    /// shared literal, joined by a union.
    fn diamond(dag: &mut Dag) -> OpId {
        let rows: Vec<Vec<i64>> = (0..10_000).map(|i| vec![i % 7, i]).collect();
        let base = lit(dag, vec![Col::ITER, Col::ITEM], rows);
        let a = dag.add(Op::RowNum {
            input: base,
            new: Col::POS,
            order: vec![exrquy_algebra::SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let b = dag.add(Op::RowId {
            input: base,
            new: Col::POS,
        });
        dag.add(Op::Union { l: a, r: b })
    }

    #[test]
    fn parallel_matches_serial_on_diamond() {
        let mut dag = Dag::new();
        let root = diamond(&mut dag);
        let run = |threads: usize| -> Table {
            let mut arena = FragArena::new(Arc::new(Catalog::new()));
            let mut e = Engine::new(&dag, &mut arena, opts(threads));
            (*e.eval(root).unwrap()).clone()
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial.schema(), par.schema());
        assert_eq!(serial.nrows(), par.nrows());
        for (name, col) in serial.columns() {
            assert_eq!(col.as_ref(), par.col(*name).as_ref(), "column {name}");
        }
    }

    #[test]
    fn scheduler_counters_populate_under_parallel_execution() {
        let mut dag = Dag::new();
        let root = diamond(&mut dag);
        let mut arena = FragArena::new(Arc::new(Catalog::new()));
        let mut e = Engine::new(&dag, &mut arena, opts(4));
        e.eval(root).unwrap();
        let s = e.profile.sched;
        // The diamond has 4 pure operators; every one must be accounted
        // either to a worker pool or to an inline stretch.
        assert_eq!(s.par_ops + s.inline_ops, 4, "{s:?}");
        // The two independent branches are ready simultaneously.
        assert!(s.regions >= 1, "{s:?}");
        assert!(s.queue_peak >= 2, "{s:?}");
        // Serial execution never touches the scheduler.
        let mut arena2 = FragArena::new(Arc::new(Catalog::new()));
        let mut e2 = Engine::new(&dag, &mut arena2, opts(1));
        e2.eval(root).unwrap();
        assert_eq!(e2.profile.sched, SchedStats::default());
    }

    #[test]
    fn parallel_construction_matches_serial() {
        let mut dag = Dag::new();
        let names = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::ITEM],
            rows: vec![
                vec![AValue::Int(1), AValue::str("a")],
                vec![AValue::Int(2), AValue::str("b")],
            ],
        });
        let content = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::POS, Col::ITEM],
            rows: vec![
                vec![AValue::Int(1), AValue::Int(1), AValue::Int(10)],
                vec![AValue::Int(2), AValue::Int(1), AValue::Int(20)],
            ],
        });
        let elem = dag.add(Op::Element { names, content });
        let render = |threads: usize| -> Vec<String> {
            let mut arena = FragArena::new(Arc::new(Catalog::new()));
            let mut e = Engine::new(&dag, &mut arena, opts(threads));
            let t = e.eval(elem).unwrap();
            (0..t.nrows())
                .map(|r| {
                    let Item::Node(node) = t.item(Col::ITEM, r) else {
                        panic!("expected node")
                    };
                    exrquy_xml::serialize::node_to_string(e.arena, node)
                })
                .collect()
        };
        assert_eq!(render(1), render(4));
        assert_eq!(render(4), vec!["<a>10</a>".to_string(), "<b>20</b>".into()]);
    }

    #[test]
    fn parallel_reports_evaluation_errors() {
        let mut dag = Dag::new();
        // Select on a non-boolean column fails identically on both paths.
        let base = lit(&mut dag, vec![Col::ITER, Col::ITEM], vec![vec![1, 5]]);
        let bad = dag.add(Op::Select {
            input: base,
            col: Col::ITEM,
        });
        let ok = dag.add(Op::Distinct { input: base });
        let root = dag.add(Op::Union { l: bad, r: ok });
        let err_of = |threads: usize| {
            let mut arena = FragArena::new(Arc::new(Catalog::new()));
            let mut e = Engine::new(&dag, &mut arena, opts(threads));
            e.eval(root).unwrap_err()
        };
        assert_eq!(err_of(1).code, err_of(4).code);
    }
}
