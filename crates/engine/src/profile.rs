//! Per-operator-kind execution profiling.
//!
//! The paper's Table 2 breaks Q11's execution time down by plan phase
//! (path steps, atomization/arithmetic, join, the `iter→seq` reorder,
//! element construction, `fn:count`). Those phases correspond 1:1 to
//! operator kinds in our plans, so profiling by kind regenerates the
//! table.

use exrquy_algebra::{Dag, Op, OpId};
use std::collections::BTreeMap;
use std::time::Duration;

/// Work-stealing scheduler counters of one execution. All zero under
/// serial execution; under parallel execution they make queue pressure
/// and steal traffic visible, so scheduler regressions show up in
/// `BENCH_par.json` rather than only in wall-clock noise.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Parallel regions that spun up a worker pool.
    pub regions: u64,
    /// Operators evaluated inside worker pools.
    pub par_ops: u64,
    /// Operators evaluated inline on single-ready linear stretches.
    pub inline_ops: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// High-water mark of simultaneously outstanding ready tasks.
    pub queue_peak: u64,
}

impl SchedStats {
    /// Fold another execution's counters into this one (sums; the queue
    /// high-water mark takes the max).
    pub fn merge(&mut self, other: &SchedStats) {
        self.regions += other.regions;
        self.par_ops += other.par_ops;
        self.inline_ops += other.inline_ops;
        self.steals += other.steals;
        self.queue_peak = self.queue_peak.max(other.queue_peak);
    }
}

/// Vectorized-executor counters of one execution. All zero on the
/// scalar path; on the flattened-plan path they record how much of the
/// plan ran through fused single-pass kernels, so `--explain` and
/// `BENCH_vec.json` can report fusion coverage alongside wall time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VecStats {
    /// Slots in the flattened physical plan.
    pub phys_slots: u64,
    /// Fused select→fun→project chains executed.
    pub fused_chains: u64,
    /// Logical operators absorbed into fused chains.
    pub fused_ops: u64,
    /// Batches (morsels) processed by vectorized kernels.
    pub batches: u64,
}

impl VecStats {
    /// Fold another execution's counters into this one.
    pub fn merge(&mut self, other: &VecStats) {
        self.phys_slots += other.phys_slots;
        self.fused_chains += other.fused_chains;
        self.fused_ops += other.fused_ops;
        self.batches += other.batches;
    }
}

/// Aggregated wall-clock per operator kind and per operator instance.
#[derive(Debug, Default, Clone)]
pub struct Profile {
    per_kind: BTreeMap<&'static str, Duration>,
    per_op: BTreeMap<u32, Duration>,
    /// Output row count per operator instance (the *actual* cardinality
    /// that `--explain` reports next to the planner's estimate). Fused
    /// chains record only their final operator; absorbed members have no
    /// entry.
    per_op_rows: BTreeMap<u32, u64>,
    total: Duration,
    /// Scheduler counters (parallel executions only; zero when serial).
    pub sched: SchedStats,
    /// Vectorized-executor counters (zero on the scalar path).
    pub vec: VecStats,
}

/// Phase names used by the Table 2 reproduction.
pub const PHASES: &[&str] = &[
    "path steps",
    "atomization & arithmetic",
    "join",
    "iter→seq reorder (%)",
    "node construction",
    "aggregation",
    "other",
];

impl Profile {
    /// Record `d` spent in `op`.
    pub fn record(&mut self, dag: &Dag, op: OpId, d: Duration) {
        *self
            .per_kind
            .entry(dag.op(op).kind_name())
            .or_insert(Duration::ZERO) += d;
        *self.per_op.entry(op.0).or_insert(Duration::ZERO) += d;
        self.total += d;
    }

    /// Record the output row count of `op` (latest execution wins).
    pub fn record_rows(&mut self, op: OpId, nrows: usize) {
        self.per_op_rows.insert(op.0, nrows as u64);
    }

    /// Observed output row count of `op`, if it was executed.
    pub fn op_rows(&self, op: OpId) -> Option<u64> {
        self.per_op_rows.get(&op.0).copied()
    }

    /// All observed output row counts, keyed by raw operator id.
    pub fn rows(&self) -> &BTreeMap<u32, u64> {
        &self.per_op_rows
    }

    /// Fold another profile into this one (parallel workers each record
    /// into a private profile; the scheduler merges them when the region
    /// joins).
    pub fn merge(&mut self, other: &Profile) {
        for (kind, d) in &other.per_kind {
            *self.per_kind.entry(kind).or_insert(Duration::ZERO) += *d;
        }
        for (op, d) in &other.per_op {
            *self.per_op.entry(*op).or_insert(Duration::ZERO) += *d;
        }
        for (op, n) in &other.per_op_rows {
            self.per_op_rows.insert(*op, *n);
        }
        self.total += other.total;
        self.sched.merge(&other.sched);
        self.vec.merge(&other.vec);
    }

    /// Total recorded time.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Time per operator kind.
    pub fn per_kind(&self) -> &BTreeMap<&'static str, Duration> {
        &self.per_kind
    }

    /// Time spent in a single operator.
    pub fn op_time(&self, op: OpId) -> Duration {
        self.per_op.get(&op.0).copied().unwrap_or(Duration::ZERO)
    }

    /// Classify an operator into a Table 2 phase.
    pub fn phase_of(op: &Op) -> &'static str {
        match op {
            Op::Step { .. } | Op::Doc { .. } | Op::Fanout { .. } => "path steps",
            Op::Fun { .. } => "atomization & arithmetic",
            Op::EquiJoin { .. } | Op::ThetaJoin { .. } | Op::Cross { .. } => "join",
            Op::RowNum { .. } => "iter→seq reorder (%)",
            Op::Element { .. } | Op::Attr { .. } | Op::TextNode { .. } => "node construction",
            Op::Aggr { .. } => "aggregation",
            _ => "other",
        }
    }

    /// Aggregate recorded times into Table 2 phases.
    pub fn by_phase(&self, dag: &Dag) -> BTreeMap<&'static str, Duration> {
        let mut out: BTreeMap<&'static str, Duration> = BTreeMap::new();
        for (op_raw, d) in &self.per_op {
            let phase = Self::phase_of(dag.op(OpId(*op_raw)));
            *out.entry(phase).or_insert(Duration::ZERO) += *d;
        }
        out
    }

    /// Render the Table 2-style breakdown.
    pub fn render_breakdown(&self, dag: &Dag) -> String {
        use std::fmt::Write;
        let phases = self.by_phase(dag);
        let total: Duration = self.total.max(Duration::from_nanos(1));
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>12} {:>7}", "Phase", "Time [ms]", "%");
        for name in PHASES {
            if let Some(d) = phases.get(name) {
                let _ = writeln!(
                    out,
                    "{:<28} {:>12.3} {:>6.1}%",
                    name,
                    d.as_secs_f64() * 1e3,
                    100.0 * d.as_secs_f64() / total.as_secs_f64()
                );
            }
        }
        let _ = writeln!(out, "{:<28} {:>12.3}", "total", total.as_secs_f64() * 1e3);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_algebra::{AValue, Col};

    #[test]
    fn records_and_aggregates() {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        let r = dag.add(Op::RowNum {
            input: l,
            new: Col::POS,
            order: vec![],
            part: None,
        });
        let mut p = Profile::default();
        p.record(&dag, l, Duration::from_millis(2));
        p.record(&dag, r, Duration::from_millis(3));
        p.record(&dag, r, Duration::from_millis(1));
        assert_eq!(p.total(), Duration::from_millis(6));
        assert_eq!(p.op_time(r), Duration::from_millis(4));
        let phases = p.by_phase(&dag);
        assert_eq!(
            phases.get("iter→seq reorder (%)"),
            Some(&Duration::from_millis(4))
        );
        let txt = p.render_breakdown(&dag);
        assert!(txt.contains("iter→seq reorder"));
    }
}
