//! Runtime items: the values populating `item` columns.
//!
//! An item is a node reference or an atomic value (§1: "ordered finite
//! sequences of items (atomic values or nodes)"). Atomic types are the
//! pragmatic subset XMark needs: integers, doubles, strings, booleans.
//! Untyped (node-derived) values are represented as strings and promoted
//! numerically on demand, which matches XQuery's untypedAtomic promotion
//! rules for the schema-less documents the paper evaluates on.

use exrquy_xml::NodeId;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// One item value.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Node(NodeId),
    Int(i64),
    Dbl(f64),
    Str(Arc<str>),
    Bool(bool),
}

impl Item {
    /// Build a string item.
    pub fn str(s: &str) -> Item {
        Item::Str(Arc::from(s))
    }

    /// Is this a node reference?
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    /// Numeric view (Int and Dbl only).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Item::Int(i) => Some(*i as f64),
            Item::Dbl(d) => Some(*d),
            _ => None,
        }
    }

    /// Numeric view with untyped (string) promotion — the comparison rules
    /// use this when the other operand is numeric.
    pub fn as_number_promoting(&self) -> Option<f64> {
        match self {
            Item::Str(s) => exrquy_xml::atomize::parse_number(s),
            other => other.as_number(),
        }
    }

    /// String rendering (XQuery `fn:string` on atomics; nodes must be
    /// atomized before calling this).
    pub fn to_xq_string(&self) -> String {
        match self {
            Item::Node(n) => format!("[node {n}]"),
            Item::Int(i) => i.to_string(),
            Item::Dbl(d) => fmt_double(*d),
            Item::Str(s) => s.to_string(),
            Item::Bool(b) => b.to_string(),
        }
    }

    /// Effective boolean value of this single item.
    pub fn ebv(&self) -> bool {
        match self {
            Item::Node(_) => true,
            Item::Int(i) => *i != 0,
            Item::Dbl(d) => *d != 0.0 && !d.is_nan(),
            Item::Str(s) => !s.is_empty(),
            Item::Bool(b) => *b,
        }
    }

    /// Total order for sorting (`%` over item columns, `order by`).
    /// Cross-class values order by class rank (bool < number < string <
    /// node); numbers compare numerically across Int/Dbl; NaN sorts first.
    pub fn sort_cmp(&self, other: &Item) -> Ordering {
        fn class(i: &Item) -> u8 {
            match i {
                Item::Bool(_) => 0,
                Item::Int(_) | Item::Dbl(_) => 1,
                Item::Str(_) => 2,
                Item::Node(_) => 3,
            }
        }
        match (self, other) {
            (Item::Node(a), Item::Node(b)) => a.cmp(b),
            (Item::Bool(a), Item::Bool(b)) => a.cmp(b),
            (Item::Str(a), Item::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => {
                    x.partial_cmp(&y)
                        .unwrap_or_else(|| match (x.is_nan(), y.is_nan()) {
                            (true, true) => Ordering::Equal,
                            (true, false) => Ordering::Less,
                            (false, true) => Ordering::Greater,
                            _ => unreachable!(),
                        })
                }
                _ => class(a).cmp(&class(b)),
            },
        }
    }

    /// Hash key for grouping/joining: numbers collapse to their f64 bits so
    /// `Int(2)` and `Dbl(2.0)` group together.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Item::Node(n) => GroupKey::Node(*n),
            Item::Int(i) => GroupKey::Num((*i as f64).to_bits()),
            Item::Dbl(d) => GroupKey::Num(d.to_bits()),
            Item::Str(s) => GroupKey::Str(s.clone()),
            Item::Bool(b) => GroupKey::Bool(*b),
        }
    }
}

/// Hashable key of an item (see [`Item::group_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    Node(NodeId),
    Num(u64),
    Str(Arc<str>),
    Bool(bool),
}

/// XQuery-style rendering of a double (integral doubles print without
/// fraction, e.g. `5000` not `5000.0`).
pub fn fmt_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".into()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".into()
        } else {
            "-INF".into()
        }
    } else if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xq_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ebv_rules() {
        assert!(Item::Node(NodeId::new(0, 0)).ebv());
        assert!(!Item::Int(0).ebv());
        assert!(Item::Int(-1).ebv());
        assert!(!Item::Dbl(f64::NAN).ebv());
        assert!(!Item::str("").ebv());
        assert!(Item::str("false").ebv()); // non-empty string is true
        assert!(!Item::Bool(false).ebv());
    }

    #[test]
    fn numeric_promotion() {
        assert_eq!(Item::str("42").as_number_promoting(), Some(42.0));
        assert_eq!(Item::str("x").as_number_promoting(), None);
        assert_eq!(Item::Int(2).as_number_promoting(), Some(2.0));
    }

    #[test]
    fn sort_order_across_classes() {
        let mut v = [
            Item::str("b"),
            Item::Int(10),
            Item::Dbl(2.5),
            Item::Bool(true),
            Item::Node(NodeId::new(0, 3)),
            Item::Node(NodeId::new(0, 1)),
            Item::str("a"),
        ];
        v.sort_by(|a, b| a.sort_cmp(b));
        // bool < numbers < strings < nodes; numbers numeric; nodes doc order
        assert_eq!(v[0], Item::Bool(true));
        assert_eq!(v[1], Item::Dbl(2.5));
        assert_eq!(v[2], Item::Int(10));
        assert_eq!(v[3], Item::str("a"));
        assert_eq!(v[4], Item::str("b"));
        assert_eq!(v[5], Item::Node(NodeId::new(0, 1)));
    }

    #[test]
    fn group_keys_unify_numeric_types() {
        assert_eq!(Item::Int(2).group_key(), Item::Dbl(2.0).group_key());
        assert_ne!(Item::Int(2).group_key(), Item::str("2").group_key());
    }

    #[test]
    fn double_formatting() {
        assert_eq!(fmt_double(5000.0), "5000");
        assert_eq!(fmt_double(2.5), "2.5");
        assert_eq!(fmt_double(f64::NAN), "NaN");
        assert_eq!(fmt_double(f64::INFINITY), "INF");
    }
}
