//! Tables: named, `Arc`-shared columns of equal logical length, each
//! optionally filtered through a shared **selection vector**.
//!
//! A [`SelVec`] is a list of physical row indices into the underlying
//! column. `σ`/positional-predicate/`\` chains produce tables whose
//! columns are the *unchanged* input columns plus a selection vector —
//! no gather, no per-value clone. Readers go through [`ColView`], which
//! maps logical row `i` to physical row `sel[i]`; selections compose
//! eagerly (a select over a selected table builds one flat index list),
//! so access stays O(1) with a single indirection at most.

use crate::column::{ColRef, Column, ColumnError};
use crate::item::Item;
use exrquy_algebra::Col;
use std::sync::Arc;

/// A selection vector: physical row indices, in logical row order.
/// Indices may repeat (a join output gathers one physical row many
/// times) and may be empty (everything filtered out).
pub type SelVec = Vec<u32>;

/// Shared selection-vector handle; one vector is typically shared by
/// every column of a filtered table.
pub type SelRef = Arc<SelVec>;

// Intra-query parallelism ships tables between worker threads; keep the
// whole value layer `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Item>();
    assert_send_sync::<Column>();
    assert_send_sync::<ColView>();
    assert_send_sync::<Table>();
};

/// A read view of one column: shared column data plus an optional
/// selection vector. Cloning is two `Arc` bumps.
#[derive(Debug, Clone)]
pub struct ColView {
    data: ColRef,
    sel: Option<SelRef>,
}

impl ColView {
    /// A dense view over a whole column.
    pub fn dense(data: ColRef) -> Self {
        ColView { data, sel: None }
    }

    /// A view of `data` through `sel`.
    pub fn selected(data: ColRef, sel: SelRef) -> Self {
        ColView {
            data,
            sel: Some(sel),
        }
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.data.len(),
        }
    }

    /// True when the view exposes no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when no selection vector is interposed.
    pub fn is_dense(&self) -> bool {
        self.sel.is_none()
    }

    /// The selection vector, if any.
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref().map(|s| s.as_slice())
    }

    /// The underlying (physical) column.
    pub fn data(&self) -> &ColRef {
        &self.data
    }

    /// Physical row index of logical row `i`.
    #[inline]
    fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// Value at logical row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Item {
        self.data.get(self.phys(i))
    }

    /// Integer at logical row `i` (typed invariant error otherwise).
    #[inline]
    pub fn get_int(&self, i: usize) -> Result<i64, ColumnError> {
        self.data.get_int(self.phys(i))
    }

    /// Boolean at logical row `i`, `None` for non-boolean values.
    #[inline]
    pub fn get_bool(&self, i: usize) -> Option<bool> {
        match &*self.data {
            Column::Bool(v) => Some(v.get(self.phys(i))),
            other => match other.get(self.phys(i)) {
                Item::Bool(b) => Some(b),
                _ => None,
            },
        }
    }

    /// Dense `i64` slice when the view is an unselected `Int` column —
    /// the fast path for sort keys and join keys.
    pub fn as_int_slice(&self) -> Option<&[i64]> {
        match (&self.sel, &*self.data) {
            (None, Column::Int(v)) => Some(v),
            _ => None,
        }
    }

    /// Materialize into a dense `i64` vector.
    pub fn to_int_vec(&self) -> Result<Vec<i64>, ColumnError> {
        match &self.sel {
            None => self.data.to_int_vec(),
            Some(s) => s.iter().map(|&p| self.data.get_int(p as usize)).collect(),
        }
    }

    /// Materialize into a dense column (cheap `Vec` clone when already
    /// dense; see [`to_ref`](Self::to_ref) to avoid even that).
    pub fn to_column(&self) -> Column {
        match &self.sel {
            None => (*self.data).clone(),
            Some(s) => {
                let idx: Vec<usize> = s.iter().map(|&p| p as usize).collect();
                self.data.gather(&idx)
            }
        }
    }

    /// Shared dense column: the existing `Arc` when dense, a gathered
    /// copy otherwise.
    pub fn to_ref(&self) -> ColRef {
        match &self.sel {
            None => self.data.clone(),
            Some(_) => Arc::new(self.to_column()),
        }
    }

    /// Materialize logical rows `idx` into a dense column.
    pub fn gather(&self, idx: &[usize]) -> Column {
        match &self.sel {
            None => self.data.gather(idx),
            Some(s) => {
                let phys: Vec<usize> = idx.iter().map(|&i| s[i] as usize).collect();
                self.data.gather(&phys)
            }
        }
    }

    /// Zero-copy narrowing: view of logical rows `idx` (selection
    /// vectors compose eagerly — the result has one flat indirection).
    pub fn narrow(&self, idx: &SelRef) -> ColView {
        match &self.sel {
            None => ColView::selected(self.data.clone(), idx.clone()),
            Some(s) => {
                let composed: SelVec = idx.iter().map(|&i| s[i as usize]).collect();
                ColView::selected(self.data.clone(), Arc::new(composed))
            }
        }
    }
}

/// One intermediate result: named column views of equal logical length.
#[derive(Debug, Clone)]
pub struct Table {
    cols: Vec<(Col, ColView)>,
    nrows: usize,
}

impl Table {
    /// Build from (name, column) pairs; all columns must have equal length.
    pub fn new(cols: Vec<(Col, Column)>) -> Table {
        let nrows = cols.first().map_or(0, |(_, c)| c.len());
        for (name, c) in &cols {
            assert_eq!(c.len(), nrows, "column `{name}` length mismatch");
        }
        Table {
            cols: cols
                .into_iter()
                .map(|(n, c)| (n, ColView::dense(Arc::new(c))))
                .collect(),
            nrows,
        }
    }

    /// Build from shared dense columns.
    pub fn from_refs(cols: Vec<(Col, ColRef)>, nrows: usize) -> Table {
        for (name, c) in &cols {
            assert_eq!(c.len(), nrows, "column `{name}` length mismatch");
        }
        Table {
            cols: cols
                .into_iter()
                .map(|(n, c)| (n, ColView::dense(c)))
                .collect(),
            nrows,
        }
    }

    /// Build from column views (zero-copy constructor of the vectorized
    /// kernels); all views must have logical length `nrows`.
    pub fn from_views(cols: Vec<(Col, ColView)>, nrows: usize) -> Table {
        for (name, v) in &cols {
            assert_eq!(v.len(), nrows, "column `{name}` length mismatch");
        }
        Table { cols, nrows }
    }

    /// An empty table with the given schema.
    pub fn empty(schema: &[Col]) -> Table {
        Table::new(schema.iter().map(|&c| (c, Column::Item(vec![]))).collect())
    }

    /// Number of (logical) rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column names in layout order.
    pub fn schema(&self) -> Vec<Col> {
        self.cols.iter().map(|(n, _)| *n).collect()
    }

    /// View of column `name`.
    pub fn col(&self, name: Col) -> ColView {
        self.cols
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c.clone())
            .unwrap_or_else(|| panic!("table has no column `{name}`"))
    }

    /// All (name, view) pairs in layout order.
    pub fn columns(&self) -> &[(Col, ColView)] {
        &self.cols
    }

    /// Item at (`row`, `name`).
    pub fn item(&self, name: Col, row: usize) -> Item {
        self.col(name).get(row)
    }

    /// Integer at (`row`, `name`) — test/debug convenience; engine
    /// kernels use the fallible [`ColView::get_int`] instead.
    pub fn int(&self, name: Col, row: usize) -> i64 {
        self.col(name).get_int(row).expect("integer column value")
    }

    /// New table with rows **materialized** by `idx` (the scalar path's
    /// shape; the vectorized path uses [`select_rows`](Self::select_rows)).
    pub fn gather(&self, idx: &[usize]) -> Table {
        Table {
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (*n, ColView::dense(Arc::new(c.gather(idx)))))
                .collect(),
            nrows: idx.len(),
        }
    }

    /// New table keeping logical rows `idx`, zero-copy: columns are
    /// shared and filtered through a selection vector. One composed
    /// vector is shared across all columns with identical prior
    /// selection state.
    pub fn select_rows(&self, idx: SelVec) -> Table {
        let idx: SelRef = Arc::new(idx);
        let nrows = idx.len();
        // Compose per distinct prior selection (almost always: none, or
        // one vector shared by every column).
        let mut composed: Vec<(*const SelVec, SelRef)> = Vec::new();
        let cols = self
            .cols
            .iter()
            .map(|(n, v)| {
                let view = match &v.sel {
                    None => ColView::selected(v.data.clone(), idx.clone()),
                    Some(prior) => {
                        let key: *const SelVec = Arc::as_ptr(prior);
                        let sel = match composed.iter().find(|(k, _)| *k == key) {
                            Some((_, s)) => s.clone(),
                            None => {
                                let s: SelRef = Arc::new(
                                    idx.iter().map(|&i| prior[i as usize]).collect::<SelVec>(),
                                );
                                composed.push((key, s.clone()));
                                s
                            }
                        };
                        ColView::selected(v.data.clone(), sel)
                    }
                };
                (*n, view)
            })
            .collect();
        Table { cols, nrows }
    }

    /// New table with an extra (dense, logically aligned) column.
    pub fn with_column(&self, name: Col, col: Column) -> Table {
        assert_eq!(col.len(), self.nrows);
        let mut cols = self.cols.clone();
        cols.push((name, ColView::dense(Arc::new(col))));
        Table {
            cols,
            nrows: self.nrows,
        }
    }

    /// Render as an aligned text table (debugging, examples).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let names: Vec<String> = self.cols.iter().map(|(n, _)| n.name()).collect();
        let _ = writeln!(out, "| {} |", names.join(" | "));
        for r in 0..self.nrows {
            let vals: Vec<String> = self
                .cols
                .iter()
                .map(|(_, c)| c.get(r).to_xq_string())
                .collect();
            let _ = writeln!(out, "| {} |", vals.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Table::new(vec![
            (Col::ITER, Column::Int(vec![1, 1, 2])),
            (
                Col::ITEM,
                Column::Item(vec![Item::str("a"), Item::str("b"), Item::str("c")]),
            ),
        ]);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.int(Col::ITER, 2), 2);
        assert_eq!(t.item(Col::ITEM, 0), Item::str("a"));
        assert_eq!(t.schema(), vec![Col::ITER, Col::ITEM]);
    }

    #[test]
    fn gather_rows() {
        let t = Table::new(vec![(Col::POS, Column::Int(vec![10, 20, 30]))]);
        let g = t.gather(&[2, 1]);
        assert_eq!(g.nrows(), 2);
        assert_eq!(g.int(Col::POS, 0), 30);
    }

    #[test]
    fn select_rows_is_zero_copy_and_reads_through() {
        let t = Table::new(vec![
            (Col::POS, Column::Int(vec![10, 20, 30, 40])),
            (
                Col::ITEM,
                Column::Item(vec![
                    Item::str("a"),
                    Item::str("b"),
                    Item::str("c"),
                    Item::str("d"),
                ]),
            ),
        ]);
        let s = t.select_rows(vec![3, 1]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.int(Col::POS, 0), 40);
        assert_eq!(s.item(Col::ITEM, 1), Item::str("b"));
        // The physical column is shared, not copied.
        assert!(Arc::ptr_eq(s.col(Col::POS).data(), t.col(Col::POS).data()));
    }

    #[test]
    fn empty_selection() {
        let t = Table::new(vec![(Col::POS, Column::Int(vec![10, 20]))]);
        let s = t.select_rows(vec![]);
        assert_eq!(s.nrows(), 0);
        assert!(s.col(Col::POS).is_empty());
        assert_eq!(s.col(Col::POS).to_column(), Column::Int(vec![]));
        // Selecting from an empty selection stays empty.
        assert_eq!(s.select_rows(vec![]).nrows(), 0);
    }

    #[test]
    fn full_selection_matches_identity() {
        let t = Table::new(vec![(Col::POS, Column::Int(vec![10, 20, 30]))]);
        let s = t.select_rows(vec![0, 1, 2]);
        assert_eq!(s.nrows(), t.nrows());
        for r in 0..3 {
            assert_eq!(s.int(Col::POS, r), t.int(Col::POS, r));
        }
        assert_eq!(s.col(Col::POS).to_column(), Column::Int(vec![10, 20, 30]));
    }

    #[test]
    fn repeated_and_composed_selection() {
        let t = Table::new(vec![(Col::POS, Column::Int(vec![10, 20, 30, 40]))]);
        // Repeated physical rows are legal (join outputs do this).
        let s = t.select_rows(vec![2, 2, 0, 2]);
        assert_eq!(s.nrows(), 4);
        assert_eq!(s.col(Col::POS).to_int_vec().unwrap(), vec![30, 30, 10, 30]);
        // A second selection composes into one flat indirection over the
        // ORIGINAL physical column.
        let s2 = s.select_rows(vec![3, 1]);
        assert_eq!(s2.col(Col::POS).to_int_vec().unwrap(), vec![30, 30]);
        assert_eq!(s2.col(Col::POS).sel(), Some(&[2u32, 2u32][..]));
        assert!(Arc::ptr_eq(s2.col(Col::POS).data(), t.col(Col::POS).data()));
    }

    #[test]
    fn with_column_after_selection_is_logically_aligned() {
        let t = Table::new(vec![(Col::POS, Column::Int(vec![10, 20, 30]))]);
        let s = t.select_rows(vec![2, 0]);
        let s = s.with_column(Col::ITER, Column::Int(vec![7, 8]));
        assert_eq!(s.int(Col::POS, 0), 30);
        assert_eq!(s.int(Col::ITER, 0), 7);
        // Narrow again: dense columns pick up the new selection, the
        // already-selected column composes.
        let n = s.select_rows(vec![1]);
        assert_eq!(n.int(Col::POS, 0), 10);
        assert_eq!(n.int(Col::ITER, 0), 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        Table::new(vec![
            (Col::ITER, Column::Int(vec![1])),
            (Col::POS, Column::Int(vec![1, 2])),
        ]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        let t = Table::empty(&[Col::ITER]);
        t.col(Col::POS);
    }
}
