//! Tables: named, `Arc`-shared columns of equal length.

use crate::column::{ColRef, Column};
use crate::item::Item;
use exrquy_algebra::Col;
use std::sync::Arc;

// Intra-query parallelism ships tables between worker threads; keep the
// whole value layer `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Item>();
    assert_send_sync::<Column>();
    assert_send_sync::<Table>();
};

/// One materialized intermediate result.
#[derive(Debug, Clone)]
pub struct Table {
    cols: Vec<(Col, ColRef)>,
    nrows: usize,
}

impl Table {
    /// Build from (name, column) pairs; all columns must have equal length.
    pub fn new(cols: Vec<(Col, Column)>) -> Table {
        let nrows = cols.first().map_or(0, |(_, c)| c.len());
        for (name, c) in &cols {
            assert_eq!(c.len(), nrows, "column `{name}` length mismatch");
        }
        Table {
            cols: cols.into_iter().map(|(n, c)| (n, Arc::new(c))).collect(),
            nrows,
        }
    }

    /// Build from shared columns.
    pub fn from_refs(cols: Vec<(Col, ColRef)>, nrows: usize) -> Table {
        for (name, c) in &cols {
            assert_eq!(c.len(), nrows, "column `{name}` length mismatch");
        }
        Table { cols, nrows }
    }

    /// An empty table with the given schema.
    pub fn empty(schema: &[Col]) -> Table {
        Table::new(schema.iter().map(|&c| (c, Column::Item(vec![]))).collect())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column names in layout order.
    pub fn schema(&self) -> Vec<Col> {
        self.cols.iter().map(|(n, _)| *n).collect()
    }

    /// Shared handle to column `name`.
    pub fn col(&self, name: Col) -> &ColRef {
        self.cols
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c)
            .unwrap_or_else(|| panic!("table has no column `{name}`"))
    }

    /// All (name, column) pairs.
    pub fn columns(&self) -> &[(Col, ColRef)] {
        &self.cols
    }

    /// Item at (`row`, `name`).
    pub fn item(&self, name: Col, row: usize) -> Item {
        self.col(name).get(row)
    }

    /// Integer at (`row`, `name`).
    pub fn int(&self, name: Col, row: usize) -> i64 {
        self.col(name).get_int(row)
    }

    /// New table with rows gathered by `idx`.
    pub fn gather(&self, idx: &[usize]) -> Table {
        Table {
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (*n, Arc::new(c.gather(idx))))
                .collect(),
            nrows: idx.len(),
        }
    }

    /// New table with an extra column.
    pub fn with_column(&self, name: Col, col: Column) -> Table {
        assert_eq!(col.len(), self.nrows);
        let mut cols = self.cols.clone();
        cols.push((name, Arc::new(col)));
        Table {
            cols,
            nrows: self.nrows,
        }
    }

    /// Render as an aligned text table (debugging, examples).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let names: Vec<String> = self.cols.iter().map(|(n, _)| n.name()).collect();
        let _ = writeln!(out, "| {} |", names.join(" | "));
        for r in 0..self.nrows {
            let vals: Vec<String> = self
                .cols
                .iter()
                .map(|(_, c)| c.get(r).to_xq_string())
                .collect();
            let _ = writeln!(out, "| {} |", vals.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Table::new(vec![
            (Col::ITER, Column::Int(vec![1, 1, 2])),
            (
                Col::ITEM,
                Column::Item(vec![Item::str("a"), Item::str("b"), Item::str("c")]),
            ),
        ]);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.int(Col::ITER, 2), 2);
        assert_eq!(t.item(Col::ITEM, 0), Item::str("a"));
        assert_eq!(t.schema(), vec![Col::ITER, Col::ITEM]);
    }

    #[test]
    fn gather_rows() {
        let t = Table::new(vec![(Col::POS, Column::Int(vec![10, 20, 30]))]);
        let g = t.gather(&[2, 1]);
        assert_eq!(g.nrows(), 2);
        assert_eq!(g.int(Col::POS, 0), 30);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        Table::new(vec![
            (Col::ITER, Column::Int(vec![1])),
            (Col::POS, Column::Int(vec![1, 2])),
        ]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        let t = Table::empty(&[Col::ITER]);
        t.col(Col::POS);
    }
}
