//! The pre/size/level tree encoding.
//!
//! A [`Document`] stores one XML fragment as a struct-of-arrays indexed by
//! *preorder rank* (`pre`), exactly the document-order-preserving node
//! identifiers the paper's Figure 5 relies on. For every node we keep
//!
//! * its [`NodeKind`],
//! * its interned name (elements, attributes, processing instructions),
//! * `size` — the number of nodes in its subtree excluding itself (so the
//!   descendants of `v` occupy exactly the pre ranks `v+1 ..= v+size(v)`),
//! * `level` — its depth, and
//! * `parent` — the pre rank of its parent (`u32::MAX` for the root).
//!
//! Attribute nodes are materialized in the preorder sequence directly after
//! their owner element and before the element's children; this gives
//! attributes stable, document-order-compatible identifiers while axis
//! evaluation simply filters them out everywhere except on the `attribute`
//! axis.

use crate::name::{NameId, NamePool};
use std::fmt;

/// Kind of a node in the encoded tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The (virtual) document root produced by the parser.
    Document,
    Element,
    Attribute,
    Text,
    Comment,
    ProcessingInstruction,
}

impl NodeKind {
    /// Whether nodes of this kind can carry children.
    pub fn can_have_children(self) -> bool {
        matches!(self, NodeKind::Document | NodeKind::Element)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Document => "document",
            NodeKind::Element => "element",
            NodeKind::Attribute => "attribute",
            NodeKind::Text => "text",
            NodeKind::Comment => "comment",
            NodeKind::ProcessingInstruction => "processing-instruction",
        };
        f.write_str(s)
    }
}

/// Sentinel parent rank of root nodes.
pub const NO_PARENT: u32 = u32::MAX;

/// Index into a document's text data, or `NO_TEXT`.
pub const NO_TEXT: u32 = u32::MAX;

/// One encoded XML fragment.
///
/// All per-node vectors have identical length; index = preorder rank.
#[derive(Debug, Default, Clone)]
pub struct Document {
    pub kinds: Vec<NodeKind>,
    pub names: Vec<NameId>,
    pub sizes: Vec<u32>,
    pub levels: Vec<u16>,
    pub parents: Vec<u32>,
    /// Per-node index into `text_data` (text content of text nodes, value of
    /// attributes, content of comments/PIs); `NO_TEXT` otherwise.
    pub texts: Vec<u32>,
    /// Shared string content referenced from `texts`. Entries are
    /// `Arc<str>` so a subtree splice ([`TreeBuilder::copy_subtree`])
    /// copies text by refcount bump, not by reallocating every string.
    pub text_data: Vec<std::sync::Arc<str>>,
    /// Lazily built per-name element/attribute streams (sorted pre rank
    /// lists) — the tag-name-based access paths of TwigStack-style step
    /// evaluation (paper §1). Built on first use by
    /// [`name_streams`](Self::name_streams).
    /// `OnceLock` (not `OnceCell`) so a `Document` stays `Sync`: catalogs
    /// share fragments across query threads, and the first step evaluation
    /// to need the streams may happen on any of them.
    name_streams: std::sync::OnceLock<NameStreams>,
}

/// Per-name sorted preorder streams.
#[derive(Debug, Default, Clone)]
pub struct NameStreams {
    /// Element name → ascending pre ranks of elements with that name.
    pub elements: std::collections::HashMap<NameId, Vec<u32>>,
    /// Attribute name → ascending pre ranks of attributes with that name.
    pub attributes: std::collections::HashMap<NameId, Vec<u32>>,
}

impl Document {
    /// Create an empty fragment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes in the fragment.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the fragment holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kind of node `pre`.
    pub fn kind(&self, pre: u32) -> NodeKind {
        self.kinds[pre as usize]
    }

    /// Name of node `pre` (`NameId::NONE` for unnamed nodes).
    pub fn name(&self, pre: u32) -> NameId {
        self.names[pre as usize]
    }

    /// Subtree size of node `pre` (descendants including attributes,
    /// excluding the node itself).
    pub fn size(&self, pre: u32) -> u32 {
        self.sizes[pre as usize]
    }

    /// Depth of node `pre` (roots are at level 0).
    pub fn level(&self, pre: u32) -> u16 {
        self.levels[pre as usize]
    }

    /// Parent rank of node `pre`, or `None` for roots.
    pub fn parent(&self, pre: u32) -> Option<u32> {
        let p = self.parents[pre as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// String content of a text/attribute/comment/PI node; `None` otherwise.
    pub fn text(&self, pre: u32) -> Option<&str> {
        let t = self.texts[pre as usize];
        (t != NO_TEXT).then(|| &*self.text_data[t as usize])
    }

    /// Per-name node streams, built lazily on first access (one pass over
    /// the fragment). Preorder ranks per list are ascending by
    /// construction.
    pub fn name_streams(&self) -> &NameStreams {
        self.name_streams.get_or_init(|| {
            let mut s = NameStreams::default();
            for pre in 0..self.len() as u32 {
                match self.kind(pre) {
                    NodeKind::Element => s.elements.entry(self.name(pre)).or_default().push(pre),
                    NodeKind::Attribute => {
                        s.attributes.entry(self.name(pre)).or_default().push(pre)
                    }
                    _ => continue,
                };
            }
            s
        })
    }

    /// Iterator over the pre ranks of the children of `pre` (attributes are
    /// *not* children).
    pub fn children(&self, pre: u32) -> ChildIter<'_> {
        ChildIter {
            doc: self,
            next: pre + 1,
            end: pre + 1 + self.size(pre),
        }
    }

    /// Iterator over the attribute nodes of element `pre`.
    ///
    /// Attributes are stored as a contiguous run immediately after their
    /// owner element.
    pub fn attributes(&self, pre: u32) -> impl Iterator<Item = u32> + '_ {
        let end = pre + 1 + self.size(pre);
        (pre + 1..end).take_while(move |&p| self.kind(p) == NodeKind::Attribute)
    }

    /// `true` iff `anc` is a proper ancestor of `desc` (pre/size window
    /// containment check — the heart of staircase join pruning).
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        anc < desc && desc <= anc + self.size(anc)
    }

    /// Pre-allocate room for `additional` more nodes across all six
    /// encoding columns (bulk constructors know their output size up
    /// front; one reservation beats six growth schedules).
    pub fn reserve(&mut self, additional: usize) {
        self.kinds.reserve(additional);
        self.names.reserve(additional);
        self.sizes.reserve(additional);
        self.levels.reserve(additional);
        self.parents.reserve(additional);
        self.texts.reserve(additional);
    }

    /// Append one node; used by [`crate::builder::TreeBuilder`]. Returns the
    /// new node's pre rank.
    pub(crate) fn push_node(
        &mut self,
        kind: NodeKind,
        name: NameId,
        level: u16,
        parent: u32,
        text: u32,
    ) -> u32 {
        let pre = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.names.push(name);
        self.sizes.push(0);
        self.levels.push(level);
        self.parents.push(parent);
        self.texts.push(text);
        pre
    }

    /// Append a parentless attribute node (a computed attribute
    /// constructor outside any element content creates one). Returns its
    /// pre rank. Only valid on fragments built as flat forests.
    pub fn push_orphan_attribute(&mut self, name: NameId, value: &str) -> u32 {
        let text = self.push_text_data(value.into());
        self.push_node(NodeKind::Attribute, name, 0, NO_PARENT, text)
    }

    /// Intern string content, returning its index for `texts`.
    pub(crate) fn push_text_data(&mut self, s: std::sync::Arc<str>) -> u32 {
        let id = self.text_data.len() as u32;
        self.text_data.push(s);
        id
    }

    /// Debug rendering of the encoding: one line per node, as in the
    /// paper's Figure 5.
    pub fn dump(&self, pool: &NamePool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for pre in 0..self.len() as u32 {
            let name = if self.name(pre).is_some() {
                pool.resolve(self.name(pre)).to_owned()
            } else {
                String::from("-")
            };
            let _ = writeln!(
                out,
                "{:>4} {:<10} {:<12} size={:<4} level={:<2} parent={}",
                pre,
                self.kind(pre).to_string(),
                name,
                self.size(pre),
                self.level(pre),
                self.parent(pre).map_or("-".into(), |p| p.to_string()),
            );
        }
        out
    }

    /// Validate the structural invariants of the encoding (used by tests and
    /// debug assertions): sizes nest properly, levels are consistent with
    /// parents, attribute runs directly follow their elements.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.len() as u32;
        for pre in 0..n {
            let size = self.size(pre);
            if pre + size >= n + if size == 0 { 1 } else { 0 } && pre + size > n - 1 {
                return Err(format!("node {pre}: subtree exceeds fragment"));
            }
            if let Some(p) = self.parent(pre) {
                if !self.is_ancestor(p, pre) {
                    return Err(format!("node {pre}: parent {p} window does not cover it"));
                }
                if self.level(pre) != self.level(p) + 1 {
                    return Err(format!("node {pre}: level inconsistent with parent"));
                }
                if self.kind(pre) == NodeKind::Attribute && self.kind(p) != NodeKind::Element {
                    return Err(format!("attribute {pre} not owned by an element"));
                }
            } else if self.level(pre) != 0 {
                return Err(format!("root {pre} not at level 0"));
            }
            // Children windows nest: every node in (pre, pre+size] must have
            // its whole subtree inside the window.
            let end = pre + size;
            let mut c = pre + 1;
            while c <= end {
                if c + self.size(c) > end {
                    return Err(format!("node {c}: subtree escapes parent window of {pre}"));
                }
                c += self.size(c) + 1;
            }
        }
        Ok(())
    }
}

/// Iterator over child pre ranks, skipping attribute runs and whole
/// subtrees via the `size` column.
pub struct ChildIter<'a> {
    doc: &'a Document,
    next: u32,
    end: u32,
}

impl Iterator for ChildIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.next < self.end {
            let pre = self.next;
            self.next = pre + self.doc.size(pre) + 1;
            if self.doc.kind(pre) != NodeKind::Attribute {
                return Some(pre);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    /// Build the paper's Figure 1 fragment `<a><b><c/><d/></b><c/></a>`.
    fn figure1() -> (Document, NamePool) {
        let mut pool = NamePool::new();
        let mut b = TreeBuilder::new();
        let a = pool.intern("a");
        let bn = pool.intern("b");
        let c = pool.intern("c");
        let d = pool.intern("d");
        b.open_element(a);
        b.open_element(bn);
        b.open_element(c);
        b.close();
        b.open_element(d);
        b.close();
        b.close();
        b.open_element(c);
        b.close();
        b.close();
        (b.finish(), pool)
    }

    #[test]
    fn figure1_preorder_ranks() {
        let (doc, pool) = figure1();
        doc.check_invariants().unwrap();
        // Figure 5 of the paper: a=0, b=1, c1=2, d=3, c2=4.
        assert_eq!(doc.len(), 5);
        assert_eq!(pool.resolve(doc.name(0)), "a");
        assert_eq!(pool.resolve(doc.name(1)), "b");
        assert_eq!(pool.resolve(doc.name(2)), "c");
        assert_eq!(pool.resolve(doc.name(3)), "d");
        assert_eq!(pool.resolve(doc.name(4)), "c");
        assert_eq!(doc.size(0), 4);
        assert_eq!(doc.size(1), 2);
        assert_eq!(doc.size(2), 0);
        // b (rank 1) precedes d (rank 3) in document order (§3).
        assert!(doc.is_ancestor(0, 3));
        assert!(doc.is_ancestor(1, 3));
        assert!(!doc.is_ancestor(1, 4));
    }

    #[test]
    fn children_iteration() {
        let (doc, _) = figure1();
        let kids: Vec<u32> = doc.children(0).collect();
        assert_eq!(kids, vec![1, 4]);
        let kids: Vec<u32> = doc.children(1).collect();
        assert_eq!(kids, vec![2, 3]);
        assert!(doc.children(2).next().is_none());
    }

    #[test]
    fn levels_and_parents() {
        let (doc, _) = figure1();
        assert_eq!(doc.level(0), 0);
        assert_eq!(doc.level(3), 2);
        assert_eq!(doc.parent(0), None);
        assert_eq!(doc.parent(3), Some(1));
        assert_eq!(doc.parent(4), Some(0));
    }
}
