//! A small, dependency-free, non-validating XML parser.
//!
//! Supports the XML subset needed by `fn:doc()` over XMark-style documents:
//! elements, attributes, character data, CDATA sections, comments,
//! processing instructions, the five predefined entities and numeric
//! character references, and an optional XML declaration / doctype line
//! (skipped). Namespaces are treated lexically (a name may contain `:`); no
//! prefix resolution is performed, matching the paper's use of plain tag
//! names.

use crate::builder::TreeBuilder;
use crate::name::NamePool;
use crate::tree::Document;
use exrquy_diag::ErrorCode;
use std::fmt;

/// Default element-nesting ceiling: deep enough for any realistic
/// document, shallow enough that recursive descent cannot overflow the
/// stack on hostile input.
pub const DEFAULT_MAX_DEPTH: usize = 512;

/// Error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
    /// Machine-readable code (`FODC0006` for malformed content,
    /// `EXRQ0003` for nesting-depth overflow).
    pub code: ErrorCode,
    /// Where the input came from (file path or URL), when known. Set by
    /// document loaders via [`with_source`](Self::with_source) so the
    /// rendered message names the offending document, not just the offset.
    pub source: Option<String>,
}

impl ParseError {
    /// Attach the originating path/URL to the error.
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            Some(src) => write!(
                f,
                "XML parse error in `{src}` at byte {}: {}",
                self.offset, self.message
            ),
            None => write!(
                f,
                "XML parse error at byte {}: {}",
                self.offset, self.message
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete XML document (one root element, optional prolog) into
/// the pre/size/level encoding. The result carries a document root node at
/// pre rank 0.
pub fn parse_document(input: &str, pool: &mut NamePool) -> Result<Document, ParseError> {
    parse_document_with(input, pool, DEFAULT_MAX_DEPTH)
}

/// [`parse_document`] with an explicit element-nesting ceiling.
pub fn parse_document_with(
    input: &str,
    pool: &mut NamePool,
    max_depth: usize,
) -> Result<Document, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        pool,
        builder: TreeBuilder::new_document(),
        max_depth,
    };
    p.skip_prolog()?;
    p.parse_element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(p.builder.finish())
}

struct Parser<'a, 'p> {
    bytes: &'a [u8],
    pos: usize,
    pool: &'p mut NamePool,
    builder: TreeBuilder,
    max_depth: usize,
}

impl Parser<'_, '_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
            code: ErrorCode::FODC0006,
            source: None,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip XML declaration, doctype, comments and PIs before the root.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Naive: skip to the next `>` (internal subsets unsupported).
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip comments / PIs / whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ParseError> {
        match find(self.bytes, self.pos, end) {
            Some(i) => {
                self.pos = i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn is_name_byte(b: u8, first: bool) -> bool {
        b.is_ascii_alphabetic()
            || b == b'_'
            || b == b':'
            || b >= 0x80
            || (!first && (b.is_ascii_digit() || b == b'-' || b == b'.'))
    }

    fn parse_name(&mut self) -> Result<&str, ParseError> {
        let start = self.pos;
        if !self.peek().is_some_and(|b| Self::is_name_byte(b, true)) {
            return Err(self.err("expected a name"));
        }
        while self.peek().is_some_and(|b| Self::is_name_byte(b, false)) {
            self.pos += 1;
        }
        // Safety: name bytes keep UTF-8 boundaries (multi-byte sequences are
        // accepted wholesale via `b >= 0x80`).
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("valid utf8 slice"))
    }

    /// Parse one element (the document root) and everything inside it.
    ///
    /// Iterative with an explicit stack of open element names: nesting
    /// depth is heap-bounded (and budget-checked against `max_depth`)
    /// instead of consuming a native stack frame per level, so hostile
    /// deeply-nested input cannot overflow the stack no matter how small
    /// the calling thread's stack is.
    fn parse_element(&mut self) -> Result<(), ParseError> {
        let mut open: Vec<String> = Vec::new();
        'start_tag: loop {
            // Positioned at a start tag `<name …`.
            if open.len() >= self.max_depth {
                return Err(ParseError {
                    offset: self.pos,
                    message: format!("element nesting exceeds depth limit {}", self.max_depth),
                    code: ErrorCode::EXRQ0003,
                    source: None,
                });
            }
            self.expect("<")?;
            let name = self.parse_name()?.to_owned();
            let name_id = self.pool.intern(&name);
            self.builder.open_element(name_id);

            // Attributes.
            let mut self_closing = false;
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'>') => {
                        self.pos += 1;
                        break;
                    }
                    Some(b'/') => {
                        self.expect("/>")?;
                        self.builder.close();
                        self_closing = true;
                        break;
                    }
                    Some(_) => {
                        let attr = self.parse_name()?.to_owned();
                        let attr_id = self.pool.intern(&attr);
                        self.skip_ws();
                        self.expect("=")?;
                        self.skip_ws();
                        let quote = match self.peek() {
                            Some(q @ (b'"' | b'\'')) => q,
                            _ => return Err(self.err("expected quoted attribute value")),
                        };
                        self.pos += 1;
                        let raw_start = self.pos;
                        while self.peek().is_some_and(|b| b != quote) {
                            self.pos += 1;
                        }
                        let raw = std::str::from_utf8(&self.bytes[raw_start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in attribute value"))?;
                        let value = decode_entities(raw).map_err(|m| self.err(m))?;
                        // `quote` is ASCII (`"` or `'`), so the one-byte slice
                        // is always valid UTF-8.
                        self.expect(std::str::from_utf8(&[quote]).unwrap())?;
                        self.builder.attribute(attr_id, &value);
                    }
                    None => return Err(self.err("unterminated start tag")),
                }
            }
            if self_closing {
                if open.is_empty() {
                    return Ok(());
                }
            } else {
                open.push(name);
            }

            // Content events of the innermost open element, until a child
            // start tag re-enters the outer loop or everything is closed.
            loop {
                if self.starts_with("</") {
                    self.pos += 2;
                    let end_name = self.parse_name()?.to_owned();
                    // Invariant: the content loop only runs with at least one
                    // open element (self-closing roots returned above).
                    let name = open.pop().expect("open element stack non-empty");
                    if end_name != name {
                        return Err(self.err(format!(
                            "mismatched end tag: expected `</{name}>`, found `</{end_name}>`"
                        )));
                    }
                    self.skip_ws();
                    self.expect(">")?;
                    self.builder.close();
                    if open.is_empty() {
                        return Ok(());
                    }
                } else if self.starts_with("<!--") {
                    let start = self.pos + 4;
                    let end = find(self.bytes, start, "-->")
                        .ok_or_else(|| self.err("unterminated comment"))?;
                    let content = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in comment"))?;
                    self.builder.comment(content);
                    self.pos = end + 3;
                } else if self.starts_with("<![CDATA[") {
                    let start = self.pos + 9;
                    let end = find(self.bytes, start, "]]>")
                        .ok_or_else(|| self.err("unterminated CDATA section"))?;
                    let content = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                    self.builder.text(content);
                    self.pos = end + 3;
                } else if self.starts_with("<?") {
                    self.pos += 2;
                    let target = self.parse_name()?.to_owned();
                    let target_id = self.pool.intern(&target);
                    let start = self.pos;
                    let end =
                        find(self.bytes, start, "?>").ok_or_else(|| self.err("unterminated PI"))?;
                    let content = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in PI"))?
                        .trim_start();
                    self.builder.processing_instruction(target_id, content);
                    self.pos = end + 2;
                } else if self.starts_with("<") {
                    continue 'start_tag;
                } else if self.peek().is_none() {
                    let name = open.last().expect("open element stack non-empty");
                    return Err(self.err(format!("unexpected end of input inside `<{name}>`")));
                } else {
                    // Character data up to the next `<`.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'<') {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in character data"))?;
                    let text = decode_entities(raw).map_err(|m| self.err(m))?;
                    self.builder.text(&text);
                }
            }
        }
    }
}

/// Intern every name [`parse_document`] would intern — element names,
/// attribute names, processing-instruction targets — without building a
/// tree. This is the cheap half of lazy document loading: a catalog can
/// freeze its [`NamePool`] over a corpus up front (name-id equality is
/// what compiled plans rely on) while deferring the expensive
/// pre/size/level encoding until a shard is first touched. The scan is
/// tolerant of malformed input (it stops interning rather than erroring;
/// the real parse at materialization time reports the error), but on any
/// input the full parser accepts, the scan interns a superset of the
/// parser's names — materialization verifies this and re-parsing can run
/// against a frozen pool.
pub fn scan_names(input: &str, pool: &mut NamePool) {
    let bytes = input.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        match bytes[pos..].iter().position(|&b| b == b'<') {
            Some(i) => pos += i + 1,
            None => return,
        }
        match bytes.get(pos) {
            // End tag: its name was interned by the matching start tag on
            // any input the parser accepts.
            Some(b'/') => match find(bytes, pos, ">") {
                Some(i) => pos = i + 1,
                None => return,
            },
            Some(b'!') => {
                let (end, skip) = if bytes[pos..].starts_with(b"!--") {
                    ("-->", 3)
                } else if bytes[pos..].starts_with(b"![CDATA[") {
                    ("]]>", 3)
                } else {
                    (">", 1)
                };
                match find(bytes, pos, end) {
                    Some(i) => pos = i + skip,
                    None => return,
                }
            }
            Some(b'?') => {
                pos += 1;
                if let Some(name) = scan_name(bytes, &mut pos) {
                    pool.intern(name);
                }
                match find(bytes, pos, "?>") {
                    Some(i) => pos = i + 2,
                    None => return,
                }
            }
            Some(_) => {
                if let Some(name) = scan_name(bytes, &mut pos) {
                    pool.intern(name);
                } else {
                    continue;
                }
                // Attributes up to the closing `>`; quoted values are
                // consumed whole so a `<` inside one cannot start a tag.
                loop {
                    while matches!(bytes.get(pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                        pos += 1;
                    }
                    match bytes.get(pos) {
                        None => return,
                        Some(b'>') => {
                            pos += 1;
                            break;
                        }
                        Some(&b) if Parser::is_name_byte(b, true) => {
                            if let Some(name) = scan_name(bytes, &mut pos) {
                                pool.intern(name);
                            }
                            while matches!(bytes.get(pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                                pos += 1;
                            }
                            if bytes.get(pos) == Some(&b'=') {
                                pos += 1;
                                while matches!(bytes.get(pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                                    pos += 1;
                                }
                                if let Some(&q @ (b'"' | b'\'')) = bytes.get(pos) {
                                    pos += 1;
                                    while bytes.get(pos).is_some_and(|&b| b != q) {
                                        pos += 1;
                                    }
                                    pos += 1;
                                }
                            }
                        }
                        Some(_) => pos += 1,
                    }
                }
            }
            None => return,
        }
    }
}

/// A name token at `*pos`, advancing past it (the scanning twin of
/// [`Parser::parse_name`]).
fn scan_name<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a str> {
    let start = *pos;
    if !bytes
        .get(*pos)
        .is_some_and(|&b| Parser::is_name_byte(b, true))
    {
        return None;
    }
    while bytes
        .get(*pos)
        .is_some_and(|&b| Parser::is_name_byte(b, false))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos]).ok()
}

fn find(haystack: &[u8], from: usize, needle: &str) -> Option<usize> {
    let n = needle.as_bytes();
    haystack[from..]
        .windows(n.len())
        .position(|w| w == n)
        .map(|i| from + i)
}

/// Decode the predefined entities and numeric character references.
pub fn decode_entities(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity reference in `{raw}`"))?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let cp = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad hex character reference `&{entity};`"))?;
                out.push(char::from_u32(cp).ok_or("invalid code point")?);
            }
            _ if entity.starts_with('#') => {
                let cp = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| format!("bad character reference `&{entity};`"))?;
                out.push(char::from_u32(cp).ok_or("invalid code point")?);
            }
            _ => return Err(format!("unknown entity `&{entity};`")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;

    fn parse(s: &str) -> (Document, NamePool) {
        let mut pool = NamePool::new();
        let doc = parse_document(s, &mut pool).unwrap();
        doc.check_invariants().unwrap();
        (doc, pool)
    }

    #[test]
    fn parses_figure1_fragment() {
        let (doc, pool) = parse("<a><b><c/><d/></b><c/></a>");
        // doc node + 5 elements
        assert_eq!(doc.len(), 6);
        assert_eq!(doc.kind(0), NodeKind::Document);
        let names: Vec<&str> = (1..6).map(|p| pool.resolve(doc.name(p))).collect();
        assert_eq!(names, vec!["a", "b", "c", "d", "c"]);
        assert_eq!(doc.size(1), 4);
    }

    #[test]
    fn parses_attributes_and_text() {
        let (doc, pool) = parse(r#"<e pos="1" kind='x'>hello</e>"#);
        assert_eq!(doc.len(), 5);
        assert_eq!(doc.kind(2), NodeKind::Attribute);
        assert_eq!(pool.resolve(doc.name(2)), "pos");
        assert_eq!(doc.text(2), Some("1"));
        assert_eq!(doc.text(3), Some("x"));
        assert_eq!(doc.kind(4), NodeKind::Text);
        assert_eq!(doc.text(4), Some("hello"));
    }

    #[test]
    fn decodes_entities() {
        let (doc, _) = parse("<e a=\"&lt;&#65;&#x42;\">&amp;ok&gt;</e>");
        // pre 0 = document node, 1 = <e>, 2 = @a, 3 = text
        assert_eq!(doc.text(2), Some("<AB"));
        assert_eq!(doc.text(3), Some("&ok>"));
    }

    #[test]
    fn skips_prolog_and_doctype() {
        let (doc, _) = parse("<?xml version=\"1.0\"?><!DOCTYPE a><!-- hi --><a>x</a><!-- bye -->");
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.text(2), Some("x"));
    }

    #[test]
    fn cdata_and_comments_and_pi() {
        let (doc, pool) = parse("<a><![CDATA[1<2]]><!--c--><?t  data?></a>");
        assert_eq!(doc.kind(2), NodeKind::Text);
        assert_eq!(doc.text(2), Some("1<2"));
        assert_eq!(doc.kind(3), NodeKind::Comment);
        assert_eq!(doc.text(3), Some("c"));
        assert_eq!(doc.kind(4), NodeKind::ProcessingInstruction);
        assert_eq!(pool.resolve(doc.name(4)), "t");
        assert_eq!(doc.text(4), Some("data"));
    }

    #[test]
    fn rejects_mismatched_tags() {
        let mut pool = NamePool::new();
        let err = parse_document("<a><b></a></b>", &mut pool).unwrap_err();
        assert!(err.message.contains("mismatched end tag"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut pool = NamePool::new();
        assert!(parse_document("<a/>junk", &mut pool).is_err());
    }

    #[test]
    fn rejects_unterminated_input() {
        let mut pool = NamePool::new();
        assert!(parse_document("<a><b>", &mut pool).is_err());
        assert!(parse_document("<a", &mut pool).is_err());
    }

    #[test]
    fn scan_names_covers_parser_interning() {
        // Every name the parser interns must already be in a pool the
        // scanner filled — the invariant lazy loading relies on.
        let inputs = [
            "<a><b><c/><d/></b><c/></a>",
            r#"<e pos="1" kind='x'>hello</e>"#,
            "<a><![CDATA[1<2]]><!--c--><?t  data?></a>",
            "<?xml version=\"1.0\"?><!DOCTYPE a><!-- hi --><a at=\"v\">x</a>",
            r#"<r><x a="&lt;tag&gt;" b='<not-a-tag c="1"/>'/><y/></r>"#,
            "<ns:a ns:b=\"1\"><_c d-e.f=\"2\"/></ns:a>",
        ];
        for input in inputs {
            let mut scanned = NamePool::new();
            scan_names(input, &mut scanned);
            let mut parsed = NamePool::new();
            let _ = parse_document(input, &mut parsed);
            for name in parsed.names() {
                assert!(
                    scanned.lookup(name).is_some(),
                    "scan missed `{name}` in {input}"
                );
            }
        }
    }

    #[test]
    fn scan_names_tolerates_malformed_input() {
        // The scanner never errors; it just stops (the real parse reports).
        for bad in ["<a><b>", "<a", "<", "</", "<!", "<a x=", "<a x='unterm"] {
            let mut pool = NamePool::new();
            scan_names(bad, &mut pool);
        }
    }
}
