//! Shared immutable catalogs and per-execution fragment overlays.
//!
//! XQuery evaluation reads documents and *creates* new XML fragments
//! (element/text constructors). The two concerns have opposite lifecycles
//! — documents outlive queries, constructed fragments die with one — so
//! they live in two layers:
//!
//! * [`Catalog`] — the immutable base: parsed documents, the frozen
//!   [`NamePool`] they were interned against, and the `fn:doc()` URL map.
//!   A catalog is `Send + Sync` and meant to be shared as
//!   `Arc<Catalog>` by any number of concurrent query executions.
//! * [`FragArena`] — the per-execution overlay: it owns every fragment
//!   (and every name) a single evaluation constructs. Node resolution
//!   consults the overlay for fragment ids beyond the catalog's range, so
//!   constructed nodes and base nodes coexist in one id space. When the
//!   execution ends the arena is simply dropped — there is no rollback
//!   (`truncate_frags`) and structurally no way for one query's fragments
//!   to leak into the catalog or into another query.
//!
//! A [`NodeId`] — `(fragment, preorder rank)` — is the document-order-
//! preserving node identifier that flows through the relational plans
//! (the `item` column of the paper's `iter|pos|item` tables).

use crate::name::{NameId, NamePool};
use crate::parse::{parse_document, scan_names, ParseError};
use crate::stats::{self, CatalogStats};
use crate::tree::Document;
use exrquy_diag::ErrorCode;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Global node identifier. Lexicographic order on `(frag, pre)` is the
/// document order the relational plans rely on (the paper's "order-
/// preserving node identifiers", §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Fragment index: catalog fragments first, overlay fragments after.
    pub frag: u32,
    /// Preorder rank within the fragment.
    pub pre: u32,
}

impl NodeId {
    /// Construct a node id.
    pub fn new(frag: u32, pre: u32) -> Self {
        Self { frag, pre }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.frag, self.pre)
    }
}

/// Read access to encoded nodes and interned names, implemented by both
/// layers ([`Catalog`], [`FragArena`]). Serialization, atomization and
/// the runtime functions are generic over this, so they work against a
/// bare catalog and against an overlay alike.
pub trait NodeRead {
    /// Access fragment `frag`.
    fn frag(&self, frag: u32) -> &Document;

    /// Resolve an interned name.
    fn resolve_name(&self, id: NameId) -> &str;

    /// Access the fragment containing `node`.
    fn doc_of(&self, node: NodeId) -> &Document {
        self.frag(node.frag)
    }
}

/// One base fragment: either an eagerly parsed document or a lazy slot
/// holding the raw XML plus a write-once cell the parsed tree lands in
/// on first touch. Names are interned eagerly in both cases (the scan
/// pass of [`CatalogBuilder::load_str_lazy`]), so the catalog's pool is
/// frozen and complete regardless of which slots have materialized.
#[derive(Debug)]
enum FragSlot {
    Loaded(Arc<Document>),
    Lazy {
        xml: Arc<str>,
        cell: OnceLock<Arc<Document>>,
    },
}

impl FragSlot {
    fn document(&self) -> Option<&Arc<Document>> {
        match self {
            FragSlot::Loaded(d) => Some(d),
            FragSlot::Lazy { cell, .. } => cell.get(),
        }
    }
}

impl Clone for FragSlot {
    fn clone(&self) -> Self {
        match self {
            FragSlot::Loaded(d) => FragSlot::Loaded(Arc::clone(d)),
            FragSlot::Lazy { xml, cell } => {
                let copy = OnceLock::new();
                if let Some(d) = cell.get() {
                    let _ = copy.set(Arc::clone(d));
                }
                FragSlot::Lazy {
                    xml: Arc::clone(xml),
                    cell: copy,
                }
            }
        }
    }
}

/// Why a batch of lazy fragments failed to materialize. Either way
/// nothing from the failing batch became visible — materialization
/// stages every parse first and commits only a fully parsed batch, so a
/// budget trip or parse error mid-shard leaves no partial shard behind.
#[derive(Debug, Clone)]
pub enum MaterializeError {
    /// A document in the batch is malformed (or parse was fault-injected).
    Parse(ParseError),
    /// Parsing the batch would exceed the caller's node ceiling.
    NodeBudget { nodes: usize, cap: usize },
}

impl fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterializeError::Parse(e) => e.fmt(f),
            MaterializeError::NodeBudget { nodes, cap } => write!(
                f,
                "lazy document load would materialize {nodes} XML nodes, exceeding the budget of {cap}"
            ),
        }
    }
}

impl std::error::Error for MaterializeError {}

/// What one [`Catalog::materialize_frags`] call committed.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaterializeStats {
    /// Fragments parsed and committed by this call.
    pub frags: usize,
    /// Nodes those fragments hold.
    pub nodes: usize,
    /// Raw XML bytes parsed.
    pub bytes: usize,
}

/// The immutable document layer: parsed (or lazily pending) documents, a
/// frozen name pool, the `fn:doc()` URL map, and the shard layout — a
/// partition of the fragment range into contiguous, ascending shards.
/// Cheap to clone (fragments and pool are behind `Arc`s) and shareable
/// across threads.
#[derive(Debug, Clone)]
pub struct Catalog {
    frags: Vec<FragSlot>,
    pool: Arc<NamePool>,
    docs: HashMap<String, NodeId>,
    /// Shard boundaries: shard `i` covers fragments
    /// `shards[i]..shards[i+1]`; always `shards[0] == 0` and
    /// `*shards.last() == frag_count()`. Contiguity + ascending order is
    /// what makes a shard-major concatenation of per-shard results equal
    /// to global document/collection order.
    shards: Vec<u32>,
    /// Statistics snapshot for cost-based planning, computed once on
    /// first use (see [`stats`](Self::stats)). Lives on the catalog so it
    /// is invalidated by exactly the same executor swap that invalidates
    /// the plan cache.
    stats: OnceLock<Arc<CatalogStats>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            frags: Vec::new(),
            pool: Arc::default(),
            docs: HashMap::new(),
            shards: vec![0, 0],
            stats: OnceLock::new(),
        }
    }
}

impl Catalog {
    /// An empty catalog (no documents, no names, one empty shard).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start building a catalog from scratch.
    pub fn builder() -> CatalogBuilder {
        CatalogBuilder::default()
    }

    /// A builder seeded with this catalog's contents — the staging area
    /// for (re)loading documents: mutate the builder freely, then swap the
    /// built catalog in. A failed load leaves the original untouched.
    pub fn to_builder(&self) -> CatalogBuilder {
        CatalogBuilder {
            frags: self.frags.clone(),
            pool: (*self.pool).clone(),
            docs: self.docs.clone(),
            shards: self.shard_count(),
        }
    }

    /// Number of base fragments.
    pub fn frag_count(&self) -> usize {
        self.frags.len()
    }

    /// Whether the catalog holds no documents.
    pub fn is_empty(&self) -> bool {
        self.frags.is_empty()
    }

    /// Total node count over all *materialized* base documents (lazy
    /// slots contribute once they load).
    pub fn total_nodes(&self) -> usize {
        self.frags
            .iter()
            .filter_map(|s| s.document())
            .map(|d| d.len())
            .sum()
    }

    /// Number of shards in the layout (≥ 1; empty shards are legal when
    /// there are more shards than documents).
    pub fn shard_count(&self) -> usize {
        self.shards.len() - 1
    }

    /// Shard boundaries (see the field doc on `shards`).
    pub fn shard_bounds(&self) -> &[u32] {
        &self.shards
    }

    /// Fragment range `[lo, hi)` of shard `i`.
    pub fn shard_range(&self, i: usize) -> (u32, u32) {
        (self.shards[i], self.shards[i + 1])
    }

    /// Which shard holds fragment `frag`. Boundaries may repeat (empty
    /// shards), so the owner is the last shard whose lower bound is
    /// ≤ `frag`.
    pub fn shard_of(&self, frag: u32) -> usize {
        debug_assert!((frag as usize) < self.frag_count());
        self.shards.partition_point(|&b| b <= frag) - 1
    }

    /// Deterministic hash of the shard layout (boundaries + fragment
    /// count). Part of the plan-cache key: compiled plans embed per-shard
    /// fragment ranges, so two layouts over the same corpus must never
    /// share a cache entry.
    pub fn layout_signature(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.frags.len().hash(&mut h);
        self.shards.hash(&mut h);
        h.finish()
    }

    /// URL registered for fragment `frag`, if it is a document root.
    pub fn frag_url(&self, frag: u32) -> Option<&str> {
        self.docs
            .iter()
            .find(|(_, node)| node.frag == frag)
            .map(|(url, _)| url.as_str())
    }

    /// Whether fragment `frag` has a parsed tree (eager, or lazy and
    /// already touched).
    pub fn is_materialized(&self, frag: u32) -> bool {
        self.frags[frag as usize].document().is_some()
    }

    /// Fragments in `[lo, hi)` that still need parsing.
    pub fn pending_frags(&self, lo: u32, hi: u32) -> Vec<u32> {
        (lo..hi.min(self.frag_count() as u32))
            .filter(|&f| !self.is_materialized(f))
            .collect()
    }

    /// Parse the given lazy fragments and commit them, atomically per
    /// call: every document is parsed into a staging area first (against
    /// a scratch copy of the frozen pool — the eager name scan guarantees
    /// no new names appear), and only a fully parsed batch is published
    /// into the write-once cells. On any error *nothing* from this call
    /// becomes visible. `node_cap` bounds the nodes this call may
    /// materialize (a lazy-load budget); already-materialized fragments
    /// in `frags` are skipped and free.
    ///
    /// Concurrent callers may race on the same fragment; the first commit
    /// wins and later ones are dropped — both parsed the same bytes
    /// against the same frozen pool, so the trees are identical.
    pub fn materialize_frags(
        &self,
        frags: &[u32],
        node_cap: Option<usize>,
    ) -> Result<MaterializeStats, MaterializeError> {
        let mut staged: Vec<(u32, Document)> = Vec::new();
        let mut scratch: Option<NamePool> = None;
        let mut stats = MaterializeStats::default();
        for &f in frags {
            let FragSlot::Lazy { xml, cell } = &self.frags[f as usize] else {
                continue;
            };
            if cell.get().is_some() {
                continue;
            }
            let pool = scratch.get_or_insert_with(|| (*self.pool).clone());
            let before = pool.len();
            let url = self.frag_url(f).unwrap_or("<collection>").to_owned();
            let doc = parse_document(xml, pool)
                .map_err(|e| MaterializeError::Parse(e.with_source(url.clone())))?;
            if pool.len() != before {
                return Err(MaterializeError::Parse(ParseError {
                    offset: 0,
                    message: "lazily loaded document interned names the load-time scan missed"
                        .into(),
                    code: ErrorCode::FODC0006,
                    source: Some(url),
                }));
            }
            stats.frags += 1;
            stats.nodes += doc.len();
            stats.bytes += xml.len();
            if let Some(cap) = node_cap {
                if stats.nodes > cap {
                    return Err(MaterializeError::NodeBudget {
                        nodes: stats.nodes,
                        cap,
                    });
                }
            }
            staged.push((f, doc));
        }
        for (f, doc) in staged {
            if let FragSlot::Lazy { cell, .. } = &self.frags[f as usize] {
                let _ = cell.set(Arc::new(doc));
            }
        }
        Ok(stats)
    }

    /// The frozen name pool documents were interned against.
    pub fn pool(&self) -> &NamePool {
        &self.pool
    }

    /// Shared handle to the frozen pool (the compiler's starting
    /// snapshot).
    pub fn pool_arc(&self) -> Arc<NamePool> {
        Arc::clone(&self.pool)
    }

    /// Root node registered under `url`, if any.
    pub fn doc_root(&self, url: &str) -> Option<NodeId> {
        self.docs.get(url).copied()
    }

    /// Registered `fn:doc()` URLs.
    pub fn doc_urls(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(String::as_str)
    }

    /// Statistics for cost-based planning, frozen per catalog snapshot:
    /// the first call walks every materialized fragment exactly and
    /// byte-scan-estimates the still-lazy ones; every later call returns
    /// the same `Arc`. A fragment materializing *after* the freeze does
    /// not update the snapshot — estimates only steer plan choice, never
    /// results, and the next catalog swap recomputes exactly.
    pub fn stats(&self) -> Arc<CatalogStats> {
        Arc::clone(self.stats.get_or_init(|| {
            let per: Vec<stats::FragStats> = self
                .frags
                .iter()
                .map(|slot| match slot.document() {
                    Some(d) => stats::stats_of_document(d),
                    None => match slot {
                        FragSlot::Lazy { xml, .. } => stats::estimate_from_xml(xml, &self.pool),
                        FragSlot::Loaded(_) => unreachable!("loaded slots have documents"),
                    },
                })
                .collect();
            Arc::new(stats::aggregate(per, &self.shards))
        }))
    }
}

impl NodeRead for Catalog {
    fn frag(&self, frag: u32) -> &Document {
        self.frags[frag as usize].document().unwrap_or_else(|| {
            panic!(
                "fragment {frag} is lazy and not yet materialized \
                 (executors must materialize every fragment a plan can touch before evaluating)"
            )
        })
    }

    fn resolve_name(&self, id: NameId) -> &str {
        self.pool.resolve(id)
    }
}

/// Mutable staging area for building a [`Catalog`]. Documents are parsed
/// (or name-scanned and deferred) into the builder; nothing becomes
/// visible to readers until [`build`](Self::build) produces the
/// immutable catalog.
#[derive(Debug)]
pub struct CatalogBuilder {
    frags: Vec<FragSlot>,
    pool: NamePool,
    docs: HashMap<String, NodeId>,
    /// Desired shard count; [`build`](Self::build) turns it into
    /// contiguous near-equal fragment ranges.
    shards: usize,
}

impl Default for CatalogBuilder {
    fn default() -> Self {
        CatalogBuilder {
            frags: Vec::new(),
            pool: NamePool::default(),
            docs: HashMap::new(),
            shards: 1,
        }
    }
}

impl CatalogBuilder {
    /// Parse `xml` and register it under `url`. Re-loading an existing
    /// URL replaces the previous document *in place* (same fragment
    /// index), so node ids of other documents stay valid. On a parse
    /// error nothing is registered — the builder is unchanged except for
    /// names the aborted parse may have interned, which are harmless.
    pub fn load_str(&mut self, url: &str, xml: &str) -> Result<NodeId, ParseError> {
        let doc = crate::parse::parse_document(xml, &mut self.pool)?;
        Ok(self.insert(url, doc))
    }

    /// Register `xml` under `url` *without parsing it*: only the names
    /// are interned (one cheap scan, so the built catalog's pool is
    /// complete and frozen) and the tree is encoded on first touch —
    /// see [`Catalog::materialize_frags`]. Malformed XML is accepted
    /// here and reported when materialization first parses it. Same
    /// replace-in-place semantics as [`load_str`](Self::load_str).
    pub fn load_str_lazy(&mut self, url: &str, xml: &str) -> NodeId {
        scan_names(xml, &mut self.pool);
        self.insert_slot(
            url,
            FragSlot::Lazy {
                xml: Arc::from(xml),
                cell: OnceLock::new(),
            },
        )
    }

    /// Register an already-encoded document under `url` (same replace
    /// semantics as [`load_str`](Self::load_str)).
    pub fn insert(&mut self, url: &str, doc: Document) -> NodeId {
        self.insert_slot(url, FragSlot::Loaded(Arc::new(doc)))
    }

    fn insert_slot(&mut self, url: &str, slot: FragSlot) -> NodeId {
        let node = match self.docs.get(url) {
            Some(old) => {
                self.frags[old.frag as usize] = slot;
                *old
            }
            None => {
                let frag = self.frags.len() as u32;
                self.frags.push(slot);
                NodeId::new(frag, 0)
            }
        };
        self.docs.insert(url.to_string(), node);
        node
    }

    /// Mutable access to the pool (e.g. for interning names before
    /// encoding documents by hand).
    pub fn pool_mut(&mut self) -> &mut NamePool {
        &mut self.pool
    }

    /// Set the shard count the built catalog partitions its fragments
    /// into (clamped to ≥ 1). More shards than documents is legal — the
    /// surplus shards are empty.
    pub fn set_shards(&mut self, n: usize) -> &mut Self {
        self.shards = n.max(1);
        self
    }

    /// Freeze into an immutable, shareable catalog. Shard boundaries are
    /// computed here: `k` contiguous ranges balanced by *node weight*
    /// (exact node counts for parsed fragments, byte-scan estimates for
    /// lazy ones), so one fat document no longer lands a whole corpus's
    /// work on shard 0 the way the old fragment-count split did.
    pub fn build(self) -> Catalog {
        let weights: Vec<u64> = self
            .frags
            .iter()
            .map(|slot| match slot.document() {
                Some(d) => (d.len() as u64).max(1),
                None => match slot {
                    FragSlot::Lazy { xml, .. } => stats::estimate_node_weight(xml),
                    FragSlot::Loaded(_) => unreachable!("loaded slots have documents"),
                },
            })
            .collect();
        let shards = balanced_bounds(&weights, self.shards);
        Catalog {
            frags: self.frags,
            pool: Arc::new(self.pool),
            docs: self.docs,
            shards,
            stats: OnceLock::new(),
        }
    }
}

/// Shard boundaries balancing cumulative node weight: boundary `i` lands
/// on the fragment index whose cumulative weight is nearest `i·W/k`,
/// ties toward the lower index — which reproduces the historical
/// `⌊i·n/k⌋` fragment-count split on uniform corpora (all the fixed test
/// layouts), while skewed corpora get genuinely balanced shards.
fn balanced_bounds(weights: &[u64], k: usize) -> Vec<u32> {
    let n = weights.len();
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut cum: Vec<u128> = Vec::with_capacity(n + 1);
    cum.push(0);
    for &w in weights {
        cum.push(cum.last().unwrap() + w as u128);
    }
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0u32);
    let mut prev = 0usize;
    for i in 1..k {
        // Compare k·cum[j] against i·W to stay in integer arithmetic.
        let target = i as u128 * total;
        let mut best = prev;
        let mut best_d = u128::MAX;
        for (j, &c) in cum.iter().enumerate().skip(prev) {
            let d = (c * k as u128).abs_diff(target);
            if d < best_d {
                best_d = d;
                best = j;
            }
        }
        prev = best;
        bounds.push(best as u32);
    }
    bounds.push(n as u32);
    bounds
}

/// The per-execution overlay: owns every fragment and name one query
/// evaluation constructs, on top of a shared [`Catalog`].
///
/// Fragment ids `0..catalog.frag_count()` resolve to the catalog; higher
/// ids to the overlay, in creation order — so overlay nodes sort after
/// all base nodes in document order, exactly as freshly constructed
/// trees must. Dropping the arena releases everything the execution
/// built; the catalog is never touched.
#[derive(Debug)]
pub struct FragArena {
    catalog: Arc<Catalog>,
    base_frags: u32,
    frags: Vec<Document>,
    /// Immutable name snapshot (the catalog pool, or a prepared plan's
    /// extension of it); ids below `names_base.len()` resolve here.
    names_base: Arc<NamePool>,
    /// Names interned during this execution, ids `names_base.len()..`.
    names_added: Vec<String>,
    names_index: HashMap<String, NameId>,
}

impl FragArena {
    /// Fresh overlay over `catalog`, resolving names against the
    /// catalog's own pool.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let names = catalog.pool_arc();
        Self::with_names(catalog, names)
    }

    /// Fresh overlay resolving names against `names` — a snapshot that
    /// must extend the catalog's pool (same ids for the shared prefix),
    /// e.g. the name snapshot a compiled plan carries.
    pub fn with_names(catalog: Arc<Catalog>, names: Arc<NamePool>) -> Self {
        debug_assert!(names.len() >= catalog.pool().len());
        FragArena {
            base_frags: catalog.frag_count() as u32,
            catalog,
            frags: Vec::new(),
            names_base: names,
            names_added: Vec::new(),
            names_index: HashMap::new(),
        }
    }

    /// The shared base layer.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Append a constructed fragment, returning its global fragment id.
    pub fn add(&mut self, doc: Document) -> u32 {
        let id = self.base_frags + self.frags.len() as u32;
        self.frags.push(doc);
        id
    }

    /// Number of fragments constructed in this overlay.
    pub fn overlay_frags(&self) -> usize {
        self.frags.len()
    }

    /// Nodes constructed in this overlay (the budget ceiling applies to
    /// this, not to the catalog's base documents).
    pub fn constructed_nodes(&self) -> usize {
        self.frags.iter().map(|d| d.len()).sum()
    }

    /// Total node count, base documents plus overlay.
    pub fn total_nodes(&self) -> usize {
        self.catalog.total_nodes() + self.constructed_nodes()
    }

    /// Intern `name`: resolves against the snapshot first, then the
    /// overlay's own additions, growing the overlay when unseen.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.names_base.lookup(name) {
            return id;
        }
        if let Some(&id) = self.names_index.get(name) {
            return id;
        }
        let id = NameId((self.names_base.len() + self.names_added.len()) as u32);
        self.names_added.push(name.to_owned());
        self.names_index.insert(name.to_owned(), id);
        id
    }

    /// Look up a name without interning it.
    pub fn lookup_name(&self, name: &str) -> Option<NameId> {
        self.names_base
            .lookup(name)
            .or_else(|| self.names_index.get(name).copied())
    }
}

impl NodeRead for FragArena {
    fn frag(&self, frag: u32) -> &Document {
        if frag < self.base_frags {
            self.catalog.frag(frag)
        } else {
            &self.frags[(frag - self.base_frags) as usize]
        }
    }

    fn resolve_name(&self, id: NameId) -> &str {
        let i = id.0 as usize;
        if i < self.names_base.len() {
            self.names_base.resolve(id)
        } else {
            &self.names_added[i - self.names_base.len()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_order_across_fragments() {
        // Fragment order is creation order: a node of fragment 0 precedes
        // every node of fragment 1.
        let a = NodeId::new(0, 99);
        let b = NodeId::new(1, 0);
        assert!(a < b);
        let c = NodeId::new(0, 3);
        assert!(c < a);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = Catalog::builder();
        let root = b.load_str("a.xml", "<a><b/><c/></a>").unwrap();
        let cat = b.build();
        assert_eq!(root, NodeId::new(0, 0));
        assert_eq!(cat.frag_count(), 1);
        assert_eq!(cat.doc_of(root).len(), 4); // doc node + 3 elements
        assert_eq!(cat.total_nodes(), 4);
        assert_eq!(cat.doc_root("a.xml"), Some(root));
        assert_eq!(cat.doc_root("b.xml"), None);
    }

    #[test]
    fn reload_replaces_in_place() {
        let mut b = Catalog::builder();
        b.load_str("a.xml", "<a/>").unwrap();
        let other = b.load_str("b.xml", "<b><x/></b>").unwrap();
        let replaced = b.load_str("a.xml", "<a><y/><z/></a>").unwrap();
        let cat = b.build();
        // Same fragment index, other documents untouched.
        assert_eq!(replaced.frag, 0);
        assert_eq!(cat.frag_count(), 2);
        assert_eq!(cat.doc_root("b.xml"), Some(other));
        assert_eq!(cat.doc_of(replaced).len(), 4);
    }

    #[test]
    fn failed_reload_leaves_builder_consistent() {
        let mut b = Catalog::builder();
        b.load_str("a.xml", "<a><x/></a>").unwrap();
        assert!(b.load_str("a.xml", "<broken").is_err());
        let cat = b.build();
        assert_eq!(cat.frag_count(), 1);
        assert_eq!(cat.doc_of(cat.doc_root("a.xml").unwrap()).len(), 3);
    }

    #[test]
    fn arena_overlays_catalog() {
        let mut b = Catalog::builder();
        b.load_str("a.xml", "<a><b/></a>").unwrap();
        let cat = Arc::new(b.build());
        let mut arena = FragArena::new(Arc::clone(&cat));
        let mut doc = Document::new();
        let name = arena.intern("made");
        doc.push_orphan_attribute(name, "v");
        let frag = arena.add(doc);
        assert_eq!(frag, 1); // overlay ids start after catalog fragments
        assert_eq!(arena.frag(0).len(), 3);
        assert_eq!(arena.frag(1).len(), 1);
        assert_eq!(arena.constructed_nodes(), 1);
        assert_eq!(arena.total_nodes(), 4);
        // The catalog itself is untouched by overlay growth.
        drop(arena);
        assert_eq!(cat.total_nodes(), 3);
    }

    #[test]
    fn arena_names_extend_the_snapshot() {
        let mut b = Catalog::builder();
        b.load_str("a.xml", "<a><b/></a>").unwrap();
        let cat = Arc::new(b.build());
        let base_len = cat.pool().len();
        let mut arena = FragArena::new(Arc::clone(&cat));
        // Existing names resolve to their catalog ids.
        assert_eq!(arena.intern("a"), cat.pool().lookup("a").unwrap());
        // New names get fresh ids past the snapshot and resolve back.
        let fresh = arena.intern("zzz");
        assert_eq!(fresh.0 as usize, base_len);
        assert_eq!(arena.intern("zzz"), fresh);
        assert_eq!(arena.resolve_name(fresh), "zzz");
        assert_eq!(arena.lookup_name("zzz"), Some(fresh));
        assert_eq!(arena.lookup_name("nope"), None);
        // Catalog pool is frozen — unchanged by arena interning.
        assert_eq!(cat.pool().len(), base_len);
    }

    #[test]
    fn catalog_and_arena_are_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Catalog>();
        assert_send_sync::<Arc<Catalog>>();
        assert_send_sync::<FragArena>();
    }

    #[test]
    fn lazy_load_defers_parse_until_materialized() {
        let mut b = Catalog::builder();
        let root = b.load_str_lazy("a.xml", "<a><b/><c/></a>");
        let cat = b.build();
        assert_eq!(root, NodeId::new(0, 0));
        assert!(!cat.is_materialized(0));
        assert_eq!(cat.total_nodes(), 0);
        // Names were interned eagerly by the scan.
        assert!(cat.pool().lookup("b").is_some());
        assert_eq!(cat.pending_frags(0, 1), vec![0]);
        let stats = cat.materialize_frags(&[0], None).unwrap();
        assert_eq!((stats.frags, stats.nodes), (1, 4));
        assert!(cat.is_materialized(0));
        assert_eq!(cat.total_nodes(), 4);
        assert_eq!(cat.frag(0).len(), 4);
        // Re-materializing is free.
        let again = cat.materialize_frags(&[0], None).unwrap();
        assert_eq!(again.frags, 0);
    }

    #[test]
    fn lazy_parse_error_surfaces_at_materialization() {
        let mut b = Catalog::builder();
        b.load_str_lazy("good.xml", "<g/>");
        b.load_str_lazy("bad.xml", "<broken");
        let cat = b.build();
        let err = cat.materialize_frags(&[0, 1], None).unwrap_err();
        assert!(matches!(err, MaterializeError::Parse(_)), "{err}");
        assert!(err.to_string().contains("bad.xml"), "{err}");
        // Atomic: the good document did not commit either.
        assert!(!cat.is_materialized(0));
    }

    #[test]
    fn node_budget_trips_without_partial_commit() {
        let mut b = Catalog::builder();
        b.load_str_lazy("a.xml", "<a><b/><c/></a>"); // 4 nodes
        b.load_str_lazy("b.xml", "<a><b/><c/></a>"); // 4 nodes
        let cat = b.build();
        let err = cat.materialize_frags(&[0, 1], Some(5)).unwrap_err();
        assert!(matches!(err, MaterializeError::NodeBudget { .. }), "{err}");
        assert!(!cat.is_materialized(0) && !cat.is_materialized(1));
        assert_eq!(cat.total_nodes(), 0);
    }

    #[test]
    fn shard_layout_partitions_fragments() {
        let mut b = Catalog::builder();
        for i in 0..5 {
            b.load_str(&format!("d{i}.xml"), "<d/>").unwrap();
        }
        b.set_shards(2);
        let cat = b.build();
        assert_eq!(cat.shard_count(), 2);
        assert_eq!(cat.shard_bounds(), &[0, 2, 5]);
        assert_eq!(cat.shard_range(0), (0, 2));
        assert_eq!(cat.shard_range(1), (2, 5));
        assert_eq!(cat.shard_of(0), 0);
        assert_eq!(cat.shard_of(1), 0);
        assert_eq!(cat.shard_of(2), 1);
        assert_eq!(cat.shard_of(4), 1);
    }

    #[test]
    fn shard_bounds_balance_by_node_weight() {
        // One fat document followed by five tiny ones: the historical
        // fragment-count split would be [0, 3, 6], leaving ~96% of the
        // nodes in shard 0. Node-weight balancing isolates the fat
        // document instead.
        let big = format!("<r>{}</r>", "<x/>".repeat(100));
        let mut b = Catalog::builder();
        b.load_str("big.xml", &big).unwrap();
        for i in 0..5 {
            b.load_str(&format!("s{i}.xml"), "<d/>").unwrap();
        }
        b.set_shards(2);
        let cat = b.build();
        assert_eq!(cat.shard_bounds(), &[0, 1, 6]);

        // Lazy loads balance on byte-scan estimates the same way — no
        // parse happens at build time.
        let mut b = Catalog::builder();
        b.load_str_lazy("big.xml", &big);
        for i in 0..5 {
            b.load_str_lazy(&format!("s{i}.xml"), "<d/>");
        }
        b.set_shards(2);
        let cat = b.build();
        assert_eq!(cat.total_nodes(), 0, "balancing must not parse");
        assert_eq!(cat.shard_bounds(), &[0, 1, 6]);
    }

    #[test]
    fn stats_freeze_per_catalog_snapshot() {
        let mut b = Catalog::builder();
        b.load_str_lazy("a.xml", r#"<r><x k="3"/><x k="8"/></r>"#);
        let cat = b.build();
        let s1 = cat.stats();
        assert_eq!(s1.estimated_frags, 1);
        assert_eq!(s1.frags, 1);
        let x = cat.pool().lookup("x").unwrap();
        let k = cat.pool().lookup("k").unwrap();
        assert_eq!(s1.elem_count(x), 2);
        assert_eq!(s1.attr_count(k), 2);
        assert_eq!(s1.int_ranges[&k], (3, 8));
        // Materializing after the freeze does not mutate the snapshot…
        cat.materialize_frags(&[0], None).unwrap();
        assert!(Arc::ptr_eq(&s1, &cat.stats()));
        // …but the next snapshot (catalog swap) recomputes exactly.
        let cat2 = cat.to_builder().build();
        let s2 = cat2.stats();
        assert_eq!(s2.estimated_frags, 0);
        assert_eq!(s2.total_nodes, cat2.total_nodes() as u64);
        assert_eq!(s2.per_shard_nodes.len(), cat2.shard_count());
    }

    #[test]
    fn oversharded_layouts_have_empty_shards() {
        let mut b = Catalog::builder();
        for i in 0..3 {
            b.load_str(&format!("d{i}.xml"), "<d/>").unwrap();
        }
        b.set_shards(8);
        let cat = b.build();
        assert_eq!(cat.shard_count(), 8);
        let total: u32 = (0..8)
            .map(|i| {
                let (lo, hi) = cat.shard_range(i);
                assert!(lo <= hi);
                hi - lo
            })
            .sum();
        assert_eq!(total, 3);
        // Every fragment is owned by the shard whose range contains it.
        for f in 0..3u32 {
            let s = cat.shard_of(f);
            let (lo, hi) = cat.shard_range(s);
            assert!(lo <= f && f < hi);
        }
    }

    #[test]
    fn layout_signature_distinguishes_shard_counts() {
        let mut b = Catalog::builder();
        for i in 0..6 {
            b.load_str(&format!("d{i}.xml"), "<d/>").unwrap();
        }
        b.set_shards(2);
        let two = b.build();
        let mut b8 = two.to_builder();
        b8.set_shards(8);
        let eight = b8.build();
        assert_ne!(two.layout_signature(), eight.layout_signature());
        // Round-tripping through a builder preserves the layout.
        let same = two.to_builder().build();
        assert_eq!(two.layout_signature(), same.layout_signature());
    }

    #[test]
    fn frag_url_reverse_lookup() {
        let mut b = Catalog::builder();
        b.load_str("x.xml", "<x/>").unwrap();
        b.load_str("y.xml", "<y/>").unwrap();
        let cat = b.build();
        assert_eq!(cat.frag_url(0), Some("x.xml"));
        assert_eq!(cat.frag_url(1), Some("y.xml"));
        assert_eq!(cat.frag_url(2), None);
    }
}
