//! Shared immutable catalogs and per-execution fragment overlays.
//!
//! XQuery evaluation reads documents and *creates* new XML fragments
//! (element/text constructors). The two concerns have opposite lifecycles
//! — documents outlive queries, constructed fragments die with one — so
//! they live in two layers:
//!
//! * [`Catalog`] — the immutable base: parsed documents, the frozen
//!   [`NamePool`] they were interned against, and the `fn:doc()` URL map.
//!   A catalog is `Send + Sync` and meant to be shared as
//!   `Arc<Catalog>` by any number of concurrent query executions.
//! * [`FragArena`] — the per-execution overlay: it owns every fragment
//!   (and every name) a single evaluation constructs. Node resolution
//!   consults the overlay for fragment ids beyond the catalog's range, so
//!   constructed nodes and base nodes coexist in one id space. When the
//!   execution ends the arena is simply dropped — there is no rollback
//!   (`truncate_frags`) and structurally no way for one query's fragments
//!   to leak into the catalog or into another query.
//!
//! A [`NodeId`] — `(fragment, preorder rank)` — is the document-order-
//! preserving node identifier that flows through the relational plans
//! (the `item` column of the paper's `iter|pos|item` tables).

use crate::name::{NameId, NamePool};
use crate::parse::ParseError;
use crate::tree::Document;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Global node identifier. Lexicographic order on `(frag, pre)` is the
/// document order the relational plans rely on (the paper's "order-
/// preserving node identifiers", §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Fragment index: catalog fragments first, overlay fragments after.
    pub frag: u32,
    /// Preorder rank within the fragment.
    pub pre: u32,
}

impl NodeId {
    /// Construct a node id.
    pub fn new(frag: u32, pre: u32) -> Self {
        Self { frag, pre }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.frag, self.pre)
    }
}

/// Read access to encoded nodes and interned names, implemented by both
/// layers ([`Catalog`], [`FragArena`]). Serialization, atomization and
/// the runtime functions are generic over this, so they work against a
/// bare catalog and against an overlay alike.
pub trait NodeRead {
    /// Access fragment `frag`.
    fn frag(&self, frag: u32) -> &Document;

    /// Resolve an interned name.
    fn resolve_name(&self, id: NameId) -> &str;

    /// Access the fragment containing `node`.
    fn doc_of(&self, node: NodeId) -> &Document {
        self.frag(node.frag)
    }
}

/// The immutable document layer: parsed documents, a frozen name pool,
/// and the `fn:doc()` URL map. Cheap to clone (fragments and pool are
/// behind `Arc`s) and shareable across threads.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    frags: Vec<Arc<Document>>,
    pool: Arc<NamePool>,
    docs: HashMap<String, NodeId>,
}

impl Catalog {
    /// An empty catalog (no documents, no names).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start building a catalog from scratch.
    pub fn builder() -> CatalogBuilder {
        CatalogBuilder::default()
    }

    /// A builder seeded with this catalog's contents — the staging area
    /// for (re)loading documents: mutate the builder freely, then swap the
    /// built catalog in. A failed load leaves the original untouched.
    pub fn to_builder(&self) -> CatalogBuilder {
        CatalogBuilder {
            frags: self.frags.clone(),
            pool: (*self.pool).clone(),
            docs: self.docs.clone(),
        }
    }

    /// Number of base fragments.
    pub fn frag_count(&self) -> usize {
        self.frags.len()
    }

    /// Whether the catalog holds no documents.
    pub fn is_empty(&self) -> bool {
        self.frags.is_empty()
    }

    /// Total node count over all base documents.
    pub fn total_nodes(&self) -> usize {
        self.frags.iter().map(|d| d.len()).sum()
    }

    /// The frozen name pool documents were interned against.
    pub fn pool(&self) -> &NamePool {
        &self.pool
    }

    /// Shared handle to the frozen pool (the compiler's starting
    /// snapshot).
    pub fn pool_arc(&self) -> Arc<NamePool> {
        Arc::clone(&self.pool)
    }

    /// Root node registered under `url`, if any.
    pub fn doc_root(&self, url: &str) -> Option<NodeId> {
        self.docs.get(url).copied()
    }

    /// Registered `fn:doc()` URLs.
    pub fn doc_urls(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(String::as_str)
    }
}

impl NodeRead for Catalog {
    fn frag(&self, frag: u32) -> &Document {
        &self.frags[frag as usize]
    }

    fn resolve_name(&self, id: NameId) -> &str {
        self.pool.resolve(id)
    }
}

/// Mutable staging area for building a [`Catalog`]. Documents are parsed
/// into the builder; nothing becomes visible to readers until
/// [`build`](Self::build) produces the immutable catalog.
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    frags: Vec<Arc<Document>>,
    pool: NamePool,
    docs: HashMap<String, NodeId>,
}

impl CatalogBuilder {
    /// Parse `xml` and register it under `url`. Re-loading an existing
    /// URL replaces the previous document *in place* (same fragment
    /// index), so node ids of other documents stay valid. On a parse
    /// error nothing is registered — the builder is unchanged except for
    /// names the aborted parse may have interned, which are harmless.
    pub fn load_str(&mut self, url: &str, xml: &str) -> Result<NodeId, ParseError> {
        let doc = crate::parse::parse_document(xml, &mut self.pool)?;
        Ok(self.insert(url, doc))
    }

    /// Register an already-encoded document under `url` (same replace
    /// semantics as [`load_str`](Self::load_str)).
    pub fn insert(&mut self, url: &str, doc: Document) -> NodeId {
        let node = match self.docs.get(url) {
            Some(old) => {
                self.frags[old.frag as usize] = Arc::new(doc);
                *old
            }
            None => {
                let frag = self.frags.len() as u32;
                self.frags.push(Arc::new(doc));
                NodeId::new(frag, 0)
            }
        };
        self.docs.insert(url.to_string(), node);
        node
    }

    /// Mutable access to the pool (e.g. for interning names before
    /// encoding documents by hand).
    pub fn pool_mut(&mut self) -> &mut NamePool {
        &mut self.pool
    }

    /// Freeze into an immutable, shareable catalog.
    pub fn build(self) -> Catalog {
        Catalog {
            frags: self.frags,
            pool: Arc::new(self.pool),
            docs: self.docs,
        }
    }
}

/// The per-execution overlay: owns every fragment and name one query
/// evaluation constructs, on top of a shared [`Catalog`].
///
/// Fragment ids `0..catalog.frag_count()` resolve to the catalog; higher
/// ids to the overlay, in creation order — so overlay nodes sort after
/// all base nodes in document order, exactly as freshly constructed
/// trees must. Dropping the arena releases everything the execution
/// built; the catalog is never touched.
#[derive(Debug)]
pub struct FragArena {
    catalog: Arc<Catalog>,
    base_frags: u32,
    frags: Vec<Document>,
    /// Immutable name snapshot (the catalog pool, or a prepared plan's
    /// extension of it); ids below `names_base.len()` resolve here.
    names_base: Arc<NamePool>,
    /// Names interned during this execution, ids `names_base.len()..`.
    names_added: Vec<String>,
    names_index: HashMap<String, NameId>,
}

impl FragArena {
    /// Fresh overlay over `catalog`, resolving names against the
    /// catalog's own pool.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let names = catalog.pool_arc();
        Self::with_names(catalog, names)
    }

    /// Fresh overlay resolving names against `names` — a snapshot that
    /// must extend the catalog's pool (same ids for the shared prefix),
    /// e.g. the name snapshot a compiled plan carries.
    pub fn with_names(catalog: Arc<Catalog>, names: Arc<NamePool>) -> Self {
        debug_assert!(names.len() >= catalog.pool().len());
        FragArena {
            base_frags: catalog.frag_count() as u32,
            catalog,
            frags: Vec::new(),
            names_base: names,
            names_added: Vec::new(),
            names_index: HashMap::new(),
        }
    }

    /// The shared base layer.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Append a constructed fragment, returning its global fragment id.
    pub fn add(&mut self, doc: Document) -> u32 {
        let id = self.base_frags + self.frags.len() as u32;
        self.frags.push(doc);
        id
    }

    /// Number of fragments constructed in this overlay.
    pub fn overlay_frags(&self) -> usize {
        self.frags.len()
    }

    /// Nodes constructed in this overlay (the budget ceiling applies to
    /// this, not to the catalog's base documents).
    pub fn constructed_nodes(&self) -> usize {
        self.frags.iter().map(|d| d.len()).sum()
    }

    /// Total node count, base documents plus overlay.
    pub fn total_nodes(&self) -> usize {
        self.catalog.total_nodes() + self.constructed_nodes()
    }

    /// Intern `name`: resolves against the snapshot first, then the
    /// overlay's own additions, growing the overlay when unseen.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.names_base.lookup(name) {
            return id;
        }
        if let Some(&id) = self.names_index.get(name) {
            return id;
        }
        let id = NameId((self.names_base.len() + self.names_added.len()) as u32);
        self.names_added.push(name.to_owned());
        self.names_index.insert(name.to_owned(), id);
        id
    }

    /// Look up a name without interning it.
    pub fn lookup_name(&self, name: &str) -> Option<NameId> {
        self.names_base
            .lookup(name)
            .or_else(|| self.names_index.get(name).copied())
    }
}

impl NodeRead for FragArena {
    fn frag(&self, frag: u32) -> &Document {
        if frag < self.base_frags {
            self.catalog.frag(frag)
        } else {
            &self.frags[(frag - self.base_frags) as usize]
        }
    }

    fn resolve_name(&self, id: NameId) -> &str {
        let i = id.0 as usize;
        if i < self.names_base.len() {
            self.names_base.resolve(id)
        } else {
            &self.names_added[i - self.names_base.len()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_order_across_fragments() {
        // Fragment order is creation order: a node of fragment 0 precedes
        // every node of fragment 1.
        let a = NodeId::new(0, 99);
        let b = NodeId::new(1, 0);
        assert!(a < b);
        let c = NodeId::new(0, 3);
        assert!(c < a);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = Catalog::builder();
        let root = b.load_str("a.xml", "<a><b/><c/></a>").unwrap();
        let cat = b.build();
        assert_eq!(root, NodeId::new(0, 0));
        assert_eq!(cat.frag_count(), 1);
        assert_eq!(cat.doc_of(root).len(), 4); // doc node + 3 elements
        assert_eq!(cat.total_nodes(), 4);
        assert_eq!(cat.doc_root("a.xml"), Some(root));
        assert_eq!(cat.doc_root("b.xml"), None);
    }

    #[test]
    fn reload_replaces_in_place() {
        let mut b = Catalog::builder();
        b.load_str("a.xml", "<a/>").unwrap();
        let other = b.load_str("b.xml", "<b><x/></b>").unwrap();
        let replaced = b.load_str("a.xml", "<a><y/><z/></a>").unwrap();
        let cat = b.build();
        // Same fragment index, other documents untouched.
        assert_eq!(replaced.frag, 0);
        assert_eq!(cat.frag_count(), 2);
        assert_eq!(cat.doc_root("b.xml"), Some(other));
        assert_eq!(cat.doc_of(replaced).len(), 4);
    }

    #[test]
    fn failed_reload_leaves_builder_consistent() {
        let mut b = Catalog::builder();
        b.load_str("a.xml", "<a><x/></a>").unwrap();
        assert!(b.load_str("a.xml", "<broken").is_err());
        let cat = b.build();
        assert_eq!(cat.frag_count(), 1);
        assert_eq!(cat.doc_of(cat.doc_root("a.xml").unwrap()).len(), 3);
    }

    #[test]
    fn arena_overlays_catalog() {
        let mut b = Catalog::builder();
        b.load_str("a.xml", "<a><b/></a>").unwrap();
        let cat = Arc::new(b.build());
        let mut arena = FragArena::new(Arc::clone(&cat));
        let mut doc = Document::new();
        let name = arena.intern("made");
        doc.push_orphan_attribute(name, "v");
        let frag = arena.add(doc);
        assert_eq!(frag, 1); // overlay ids start after catalog fragments
        assert_eq!(arena.frag(0).len(), 3);
        assert_eq!(arena.frag(1).len(), 1);
        assert_eq!(arena.constructed_nodes(), 1);
        assert_eq!(arena.total_nodes(), 4);
        // The catalog itself is untouched by overlay growth.
        drop(arena);
        assert_eq!(cat.total_nodes(), 3);
    }

    #[test]
    fn arena_names_extend_the_snapshot() {
        let mut b = Catalog::builder();
        b.load_str("a.xml", "<a><b/></a>").unwrap();
        let cat = Arc::new(b.build());
        let base_len = cat.pool().len();
        let mut arena = FragArena::new(Arc::clone(&cat));
        // Existing names resolve to their catalog ids.
        assert_eq!(arena.intern("a"), cat.pool().lookup("a").unwrap());
        // New names get fresh ids past the snapshot and resolve back.
        let fresh = arena.intern("zzz");
        assert_eq!(fresh.0 as usize, base_len);
        assert_eq!(arena.intern("zzz"), fresh);
        assert_eq!(arena.resolve_name(fresh), "zzz");
        assert_eq!(arena.lookup_name("zzz"), Some(fresh));
        assert_eq!(arena.lookup_name("nope"), None);
        // Catalog pool is frozen — unchanged by arena interning.
        assert_eq!(cat.pool().len(), base_len);
    }

    #[test]
    fn catalog_and_arena_are_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Catalog>();
        assert_send_sync::<Arc<Catalog>>();
        assert_send_sync::<FragArena>();
    }
}
