//! Serialization of encoded fragments back to XML text.
//!
//! Used to emit query results (the final `pos|item` table is serialized in
//! sequence order) and by tests to compare fragments structurally.

use crate::catalog::{NodeId, NodeRead};
use crate::name::{NameId, NamePool};
use crate::tree::{Document, NodeKind};
use std::fmt::Write;

/// Copy `s` into `out`, replacing the bytes `special` selects via
/// `repl`. Clean spans between special characters are appended in bulk,
/// so unescaped text (the common case) is a single `push_str`.
fn escape_spans(s: &str, out: &mut String, repl: impl Fn(u8) -> Option<&'static str>) {
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if let Some(r) = repl(b) {
            out.push_str(&s[start..i]);
            out.push_str(r);
            start = i + 1;
        }
    }
    out.push_str(&s[start..]);
}

/// Escape character data content (`<`, `&`, `>` after `]]`).
pub fn escape_text(s: &str, out: &mut String) {
    escape_spans(s, out, |b| match b {
        b'<' => Some("&lt;"),
        b'>' => Some("&gt;"),
        b'&' => Some("&amp;"),
        _ => None,
    });
}

/// Escape an attribute value (double-quote delimited).
pub fn escape_attr(s: &str, out: &mut String) {
    escape_spans(s, out, |b| match b {
        b'<' => Some("&lt;"),
        b'&' => Some("&amp;"),
        b'"' => Some("&quot;"),
        _ => None,
    });
}

/// Serialize the subtree rooted at `pre` of `doc` into `out`, resolving
/// names against `pool`.
pub fn serialize_subtree(doc: &Document, pre: u32, pool: &NamePool, out: &mut String) {
    serialize_resolved(doc, pre, &|id| pool.resolve(id), out);
}

/// Core serializer; `resolve` supplies name strings (a plain pool, or a
/// layered catalog + overlay view).
fn serialize_resolved<'n>(
    doc: &Document,
    pre: u32,
    resolve: &impl Fn(NameId) -> &'n str,
    out: &mut String,
) {
    match doc.kind(pre) {
        NodeKind::Document => {
            for c in doc.children(pre) {
                serialize_resolved(doc, c, resolve, out);
            }
        }
        NodeKind::Element => {
            let name = resolve(doc.name(pre));
            out.push('<');
            out.push_str(name);
            for a in doc.attributes(pre) {
                out.push(' ');
                out.push_str(resolve(doc.name(a)));
                out.push_str("=\"");
                escape_attr(doc.text(a).unwrap_or(""), out);
                out.push('"');
            }
            let mut any_child = false;
            for c in doc.children(pre) {
                if !any_child {
                    out.push('>');
                    any_child = true;
                }
                serialize_resolved(doc, c, resolve, out);
            }
            if any_child {
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            } else {
                out.push_str("/>");
            }
        }
        NodeKind::Attribute => {
            // A top-level attribute serializes as name="value" (strictly a
            // serialization error in XQuery; we keep it debuggable).
            out.push_str(resolve(doc.name(pre)));
            out.push_str("=\"");
            escape_attr(doc.text(pre).unwrap_or(""), out);
            out.push('"');
        }
        NodeKind::Text => escape_text(doc.text(pre).unwrap_or(""), out),
        NodeKind::Comment => {
            let _ = write!(out, "<!--{}-->", doc.text(pre).unwrap_or(""));
        }
        NodeKind::ProcessingInstruction => {
            let _ = write!(
                out,
                "<?{} {}?>",
                resolve(doc.name(pre)),
                doc.text(pre).unwrap_or("")
            );
        }
    }
}

/// Serialize one node resolved through any layer (catalog or overlay).
pub fn serialize_node<R: NodeRead + ?Sized>(nodes: &R, node: NodeId, out: &mut String) {
    serialize_resolved(
        nodes.doc_of(node),
        node.pre,
        &|id| nodes.resolve_name(id),
        out,
    );
}

/// Convenience: serialize a node to a fresh string.
pub fn node_to_string<R: NodeRead + ?Sized>(nodes: &R, node: NodeId) -> String {
    let mut out = String::new();
    // Rough markup-per-node estimate; avoids the realloc ladder while a
    // large subtree streams in.
    let nodes_in_subtree = nodes.doc_of(node).size(node.pre) as usize + 1;
    out.reserve(nodes_in_subtree * 16);
    serialize_node(nodes, node, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn roundtrip(s: &str) -> String {
        let mut pool = NamePool::new();
        let doc = parse_document(s, &mut pool).unwrap();
        let mut out = String::new();
        serialize_subtree(&doc, 0, &pool, &mut out);
        out
    }

    #[test]
    fn roundtrips_simple_document() {
        assert_eq!(
            roundtrip("<a><b><c/><d/></b><c/></a>"),
            "<a><b><c/><d/></b><c/></a>"
        );
    }

    #[test]
    fn roundtrips_attributes_and_text() {
        let s = r#"<e pos="1">hello <b>world</b></e>"#;
        assert_eq!(roundtrip(s), s);
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(
            roundtrip("<a x=\"&quot;&lt;\">&amp;&lt;</a>"),
            "<a x=\"&quot;&lt;\">&amp;&lt;</a>"
        );
    }

    #[test]
    fn serializes_comments_and_pis() {
        let s = "<a><!--note--><?go now?></a>";
        assert_eq!(roundtrip(s), s);
    }
}
