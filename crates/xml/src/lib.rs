//! XML data model substrate for the eXrQuy reproduction.
//!
//! This crate implements the XML infoset subset that the paper's compiler
//! (Pathfinder) operates on:
//!
//! * ordered, unranked trees of XML nodes stored in a *pre/size/level*
//!   encoding (the paper's Figure 5 identifies nodes with their preorder
//!   rank; we additionally keep subtree sizes and depths, the encoding used
//!   by staircase join \[Grust et al., VLDB 2003\]),
//! * a small, dependency-free XML parser and serializer,
//! * a [`builder::TreeBuilder`] shared by the parser, the XMark document
//!   generator, and the runtime node constructors, and
//! * XPath axis evaluation over the encoding ([`axis`]), with both a
//!   *staircase join* implementation (what MonetDB/XQuery plugs into the
//!   step operator) and a naive reference implementation used for
//!   differential testing.
//!
//! Node identifiers ([`NodeId`]) are pairs of a fragment id and a preorder
//! rank; comparing them lexicographically yields document order, with newly
//! constructed fragments ordered after all earlier ones (XQuery leaves the
//! relative order of distinct trees implementation-defined, but it must be
//! *stable*, which this is).

pub mod atomize;
pub mod axis;
pub mod builder;
pub mod catalog;
pub mod name;
pub mod parse;
pub mod rng;
pub mod serialize;
pub mod stats;
pub mod tree;

pub use axis::{Axis, NodeTest};
pub use builder::TreeBuilder;
pub use catalog::{
    Catalog, CatalogBuilder, FragArena, MaterializeError, MaterializeStats, NodeId, NodeRead,
};
pub use name::{NameId, NamePool};
pub use parse::{parse_document, parse_document_with, scan_names, ParseError, DEFAULT_MAX_DEPTH};
pub use stats::{CatalogStats, FragStats};
pub use tree::{Document, NodeKind};
