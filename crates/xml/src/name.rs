//! Interned XML names.
//!
//! Element and attribute names are interned once per [`NamePool`] so that
//! node tests in the step operator compare a single `u32` instead of string
//! contents. A pool is shared by all documents of a
//! [`Catalog`](crate::catalog::Catalog), which makes names comparable
//! across the base documents and — via the overlay interning of
//! [`FragArena`](crate::catalog::FragArena) — runtime-constructed
//! fragments.

use std::collections::HashMap;
use std::fmt;

/// An interned name. `NameId::NONE` marks unnamed nodes (text, comments,
/// document roots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// Sentinel for nodes that carry no name.
    pub const NONE: NameId = NameId(u32::MAX);

    /// Whether this id denotes an actual name.
    pub fn is_some(self) -> bool {
        self != Self::NONE
    }
}

impl fmt::Display for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "n{}", self.0)
        } else {
            write!(f, "n⊥")
        }
    }
}

/// Bidirectional string ↔ [`NameId`] mapping.
#[derive(Debug, Default, Clone)]
pub struct NamePool {
    names: Vec<String>,
    index: HashMap<String, NameId>,
}

impl NamePool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up a name without interning it. Returns `None` for names never
    /// seen by this pool (useful for node tests against unknown tags: such a
    /// test can never match).
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.index.get(name).copied()
    }

    /// Resolve an id back to its string. Panics on `NameId::NONE` or ids
    /// from a different pool.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// All interned names, indexable by `NameId`.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Resolve an id, returning `None` for `NameId::NONE` or ids beyond
    /// this pool (e.g. overlay-interned names of a later execution).
    pub fn get(&self, id: NameId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = NamePool::new();
        let a = pool.intern("item");
        let b = pool.intern("person");
        let a2 = pool.intern("item");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(pool.resolve(a), "item");
        assert_eq!(pool.resolve(b), "person");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut pool = NamePool::new();
        assert_eq!(pool.lookup("ghost"), None);
        assert!(pool.is_empty());
        let id = pool.intern("ghost");
        assert_eq!(pool.lookup("ghost"), Some(id));
    }

    #[test]
    fn none_sentinel() {
        assert!(!NameId::NONE.is_some());
        assert!(NameId(0).is_some());
    }
}
