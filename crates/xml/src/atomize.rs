//! Node atomization: the typed/string value of a node (`fn:data`,
//! `fn:string` on nodes).
//!
//! The paper's Q11 profile (Table 2) lists "atomization" as a measurable
//! plan phase; this module is the substrate behind it. Without a schema,
//! atomizing a node yields its *string value*: for elements and documents
//! the concatenation of all descendant text nodes in document order, for
//! the other kinds their own content.

use crate::catalog::{NodeId, NodeRead};
use crate::tree::{Document, NodeKind};

/// String value of node `pre` in `doc`.
pub fn string_value(doc: &Document, pre: u32) -> String {
    match doc.kind(pre) {
        NodeKind::Element | NodeKind::Document => {
            let mut out = String::new();
            let end = pre + doc.size(pre);
            for p in pre + 1..=end {
                if doc.kind(p) == NodeKind::Text {
                    out.push_str(doc.text(p).unwrap_or(""));
                }
            }
            out
        }
        _ => doc.text(pre).unwrap_or("").to_owned(),
    }
}

/// String value of a node resolved through any layer (catalog or
/// overlay).
pub fn node_string_value<R: NodeRead + ?Sized>(nodes: &R, node: NodeId) -> String {
    string_value(nodes.doc_of(node), node.pre)
}

/// Parse an XQuery-style numeric literal from a string value (leading and
/// trailing whitespace allowed). Returns `None` when the value is not a
/// number (which XQuery maps to `NaN` for `fn:number` and to a dynamic
/// error for arithmetic on untyped values — callers pick their poison).
pub fn parse_number(s: &str) -> Option<f64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    // XML Schema doubles allow `1e3`, `+.5`, `-2.`, INF/-INF/NaN.
    match t {
        "INF" | "+INF" => return Some(f64::INFINITY),
        "-INF" => return Some(f64::NEG_INFINITY),
        "NaN" => return Some(f64::NAN),
        _ => {}
    }
    t.parse::<f64>()
        .ok()
        .filter(|f| f.is_finite() || t.contains("INF"))
}

/// Parse an integer string value (`xs:integer` lexical space).
pub fn parse_integer(s: &str) -> Option<i64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    t.parse::<i64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NamePool;
    use crate::parse::parse_document;

    #[test]
    fn element_string_value_concatenates_descendant_text() {
        let mut pool = NamePool::new();
        let doc = parse_document(r#"<a>x<b y="skip">y</b><c/>z</a>"#, &mut pool).unwrap();
        // Attribute values are NOT part of the string value.
        assert_eq!(string_value(&doc, 1), "xyz");
        assert_eq!(string_value(&doc, 0), "xyz"); // document node
    }

    #[test]
    fn leaf_string_values() {
        let mut pool = NamePool::new();
        let doc = parse_document(r#"<a k="v">t<!--c--></a>"#, &mut pool).unwrap();
        assert_eq!(string_value(&doc, 2), "v"); // attribute
        assert_eq!(string_value(&doc, 3), "t"); // text
        assert_eq!(string_value(&doc, 4), "c"); // comment
    }

    #[test]
    fn numeric_parsing() {
        assert_eq!(parse_number(" 42 "), Some(42.0));
        assert_eq!(parse_number("-3.5e2"), Some(-350.0));
        assert_eq!(parse_number("INF"), Some(f64::INFINITY));
        assert!(parse_number("NaN").unwrap().is_nan());
        assert_eq!(parse_number("abc"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_integer("007"), Some(7));
        assert_eq!(parse_integer("1.5"), None);
    }
}
