//! The node store: base documents plus runtime-constructed fragments.
//!
//! XQuery evaluation creates new XML fragments (element/text constructors);
//! a [`Store`] owns every fragment alive during a query together with the
//! shared [`NamePool`]. A [`NodeId`] — `(fragment, preorder rank)` — is the
//! document-order-preserving node identifier that flows through the
//! relational plans (the `item` column of the paper's `iter|pos|item`
//! tables).

use crate::name::NamePool;
use crate::tree::Document;
use exrquy_diag::{ErrorCode, Failpoints};
use std::fmt;

/// Global node identifier. Lexicographic order on `(frag, pre)` is the
/// document order the relational plans rely on (the paper's "order-
/// preserving node identifiers", §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Fragment index within the store.
    pub frag: u32,
    /// Preorder rank within the fragment.
    pub pre: u32,
}

impl NodeId {
    /// Construct a node id.
    pub fn new(frag: u32, pre: u32) -> Self {
        Self { frag, pre }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.frag, self.pre)
    }
}

/// Owns all XML fragments and the shared name pool of one query context.
#[derive(Debug, Default)]
pub struct Store {
    frags: Vec<Document>,
    /// Shared element/attribute name interning.
    pub pool: NamePool,
    /// Armed failpoints for the document resolver (`doc-parse`).
    failpoints: Failpoints,
    /// Documents loaded through [`add_parsed`](Self::add_parsed) over the
    /// store's lifetime (not reduced by `truncate_frags`) — the
    /// deterministic counter behind the `doc-parse` failpoint.
    loads: usize,
}

impl Store {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fragment, returning its index. Fragments added later sort
    /// after earlier ones in document order.
    pub fn add(&mut self, doc: Document) -> u32 {
        let id = self.frags.len() as u32;
        self.frags.push(doc);
        id
    }

    /// Access fragment `frag`.
    pub fn frag(&self, frag: u32) -> &Document {
        &self.frags[frag as usize]
    }

    /// Access the fragment containing `node`.
    pub fn doc_of(&self, node: NodeId) -> &Document {
        self.frag(node.frag)
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.frags.len()
    }

    /// Whether the store holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.frags.is_empty()
    }

    /// Total node count over all fragments.
    pub fn total_nodes(&self) -> usize {
        self.frags.iter().map(|d| d.len()).sum()
    }

    /// Drop fragments added after the first `len` (used to release the
    /// fragments a query execution constructed). Node ids referring to the
    /// dropped fragments become invalid.
    pub fn truncate_frags(&mut self, len: usize) {
        self.frags.truncate(len);
    }

    /// Arm failpoints for this store's document resolver (the `doc-parse`
    /// fault hook).
    pub fn set_failpoints(&mut self, failpoints: Failpoints) {
        self.failpoints = failpoints;
    }

    /// Parse `text` and register the resulting document, returning the id
    /// of its document root node. Nothing is registered on a parse error —
    /// a malformed document never leaves a partially-built fragment behind.
    pub fn add_parsed(&mut self, text: &str) -> Result<NodeId, crate::parse::ParseError> {
        self.loads += 1;
        if self.failpoints.doc_parse_fails(self.loads) {
            return Err(crate::parse::ParseError {
                offset: 0,
                message: format!(
                    "document content is not well-formed (injected at load {})",
                    self.loads
                ),
                code: ErrorCode::FODC0006,
                source: None,
            });
        }
        let doc = crate::parse::parse_document(text, &mut self.pool)?;
        let frag = self.add(doc);
        Ok(NodeId::new(frag, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_order_across_fragments() {
        // Fragment order is creation order: a node of fragment 0 precedes
        // every node of fragment 1.
        let a = NodeId::new(0, 99);
        let b = NodeId::new(1, 0);
        assert!(a < b);
        let c = NodeId::new(0, 3);
        assert!(c < a);
    }

    #[test]
    fn add_parsed_roundtrip() {
        let mut store = Store::new();
        let root = store.add_parsed("<a><b/><c/></a>").unwrap();
        assert_eq!(root, NodeId::new(0, 0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.doc_of(root).len(), 4); // doc node + 3 elements
        assert_eq!(store.total_nodes(), 4);
    }
}
