//! Small deterministic PRNG used for data generation and property
//! tests. API-compatible with the subset of `rand::rngs::SmallRng`
//! that the workspace uses (`seed_from_u64`, `gen_bool`, `gen_range`),
//! so generators and tests need no external crates. Not
//! cryptographically secure; statistical quality (SplitMix64) is
//! plenty for synthetic documents and randomized tests.

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit PRNG (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value drawn from `range`. Panics if the range is empty,
    /// matching `rand`'s contract.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Modulo bias is negligible for the tiny spans used in
                // data generation, and determinism is what matters here.
                let off = rng.next_u64() % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = rng.next_u64() % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u32, u64, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let i = rng.gen_range(1..=12);
            assert!((1..=12).contains(&i));
            let f = rng.gen_range(0.5_f64..250.0);
            assert!((0.5..250.0).contains(&f));
            let neg = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
