//! Incremental construction of encoded fragments.
//!
//! [`TreeBuilder`] is the single write path into the pre/size/level
//! encoding; the XML parser, the XMark generator, and the runtime node
//! constructors (element/attribute/text constructors in compiled plans) all
//! funnel through it. It maintains the open-element stack and back-patches
//! the `size` column when elements close, so a fragment is produced in one
//! left-to-right pass.

use crate::name::NameId;
use crate::tree::{Document, NodeKind, NO_PARENT, NO_TEXT};

/// Streaming builder for one [`Document`] fragment.
#[derive(Debug, Default)]
pub struct TreeBuilder {
    doc: Document,
    /// Stack of open nodes (pre ranks).
    open: Vec<u32>,
    /// Set once a non-attribute child has been appended to the top element;
    /// attributes may only appear before any other content.
    content_started: Vec<bool>,
}

impl TreeBuilder {
    /// Start building an empty fragment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a fragment with a document root node (what `fn:doc()` returns).
    pub fn new_document() -> Self {
        let mut b = Self::new();
        b.push(NodeKind::Document, NameId::NONE, NO_TEXT);
        b.open.push(0);
        b.content_started.push(false);
        b
    }

    fn level(&self) -> u16 {
        self.open.len() as u16
    }

    fn parent(&self) -> u32 {
        self.open.last().copied().unwrap_or(NO_PARENT)
    }

    fn push(&mut self, kind: NodeKind, name: NameId, text: u32) -> u32 {
        let level = self.level();
        let parent = self.parent();
        self.doc.push_node(kind, name, level, parent, text)
    }

    /// Pre-allocate room for `additional` more nodes (see
    /// [`Document::reserve`]).
    pub fn reserve(&mut self, additional: usize) {
        self.doc.reserve(additional);
    }

    /// Open an element node; subsequent nodes become its attributes /
    /// children until [`close`](Self::close).
    pub fn open_element(&mut self, name: NameId) -> u32 {
        let pre = self.push(NodeKind::Element, name, NO_TEXT);
        self.mark_content();
        self.open.push(pre);
        self.content_started.push(false);
        pre
    }

    /// Close the most recently opened element (or document root),
    /// back-patching its subtree size.
    pub fn close(&mut self) -> u32 {
        let pre = self.open.pop().expect("close() without open element");
        self.content_started.pop();
        let last = self.doc.len() as u32 - 1;
        self.doc.sizes[pre as usize] = last - pre;
        pre
    }

    /// Append an attribute to the currently open element. Panics if element
    /// content has already started (attributes precede children in the
    /// encoding).
    pub fn attribute(&mut self, name: NameId, value: &str) -> u32 {
        assert!(!self.open.is_empty(), "attribute() outside an open element");
        assert!(
            !*self.content_started.last().unwrap(),
            "attribute() after element content started"
        );
        let text = self.doc.push_text_data(value.into());
        self.push(NodeKind::Attribute, name, text)
    }

    /// Append a text node. Empty strings produce no node (the XQuery data
    /// model has no empty text nodes).
    pub fn text(&mut self, content: &str) -> Option<u32> {
        if content.is_empty() {
            return None;
        }
        let text = self.doc.push_text_data(content.into());
        let pre = self.push(NodeKind::Text, NameId::NONE, text);
        self.mark_content();
        Some(pre)
    }

    /// Append a comment node.
    pub fn comment(&mut self, content: &str) -> u32 {
        let text = self.doc.push_text_data(content.into());
        let pre = self.push(NodeKind::Comment, NameId::NONE, text);
        self.mark_content();
        pre
    }

    /// Append a processing-instruction node.
    pub fn processing_instruction(&mut self, target: NameId, content: &str) -> u32 {
        let text = self.doc.push_text_data(content.into());
        let pre = self.push(NodeKind::ProcessingInstruction, target, text);
        self.mark_content();
        pre
    }

    /// Copy the subtree rooted at `src_pre` of `src` into the current
    /// position (deep node copy, as required by XQuery constructor
    /// semantics: content nodes are *copied* into the new fragment —
    /// the paper's Expression (3) depends on this).
    pub fn copy_subtree(&mut self, src: &Document, src_pre: u32) {
        // Copying a document node copies its children (a document node is
        // transparent for constructor content).
        if src.kind(src_pre) == NodeKind::Document {
            for c in src.children(src_pre) {
                self.copy_subtree(src, c);
            }
            return;
        }
        // Element subtrees splice columnar: the pre-order window
        // [src_pre, src_pre + size] lands verbatim except for three
        // rebased columns (levels shift by the destination depth,
        // parents by the destination pre offset, text indices into the
        // destination's text pool). Subtree sizes are pre-relative and
        // copy unchanged. This replaces the per-node replay — one array
        // extend per column instead of an open/close call per node.
        if src.kind(src_pre) == NodeKind::Element {
            let a = src_pre as usize;
            let b = a + src.size(src_pre) as usize + 1;
            let dst_base = self.doc.len() as u32;
            let level_off = self.level() as i32 - src.level(src_pre) as i32;
            let parent = self.parent();
            self.mark_content();
            let d = &mut self.doc;
            d.kinds.extend_from_slice(&src.kinds[a..b]);
            d.names.extend_from_slice(&src.names[a..b]);
            d.sizes.extend_from_slice(&src.sizes[a..b]);
            d.levels.extend(
                src.levels[a..b]
                    .iter()
                    .map(|&l| (l as i32 + level_off) as u16),
            );
            d.parents
                .extend(src.parents[a..b].iter().enumerate().map(|(i, &p)| {
                    if i == 0 {
                        parent
                    } else {
                        p - src_pre + dst_base
                    }
                }));
            d.texts.reserve(b - a);
            for &t in &src.texts[a..b] {
                if t == NO_TEXT {
                    d.texts.push(NO_TEXT);
                } else {
                    d.texts.push(d.text_data.len() as u32);
                    d.text_data.push(src.text_data[t as usize].clone());
                }
            }
            return;
        }
        let end = src_pre + src.size(src_pre);
        // Replay the preorder sequence, closing copied elements whose
        // pre/size window has been exhausted.
        let mut open_ends: Vec<u32> = Vec::new();
        let mut pre = src_pre;
        while pre <= end {
            while let Some(&e) = open_ends.last() {
                if pre > e {
                    self.close();
                    open_ends.pop();
                } else {
                    break;
                }
            }
            match src.kind(pre) {
                NodeKind::Element => {
                    self.open_element(src.name(pre));
                    open_ends.push(pre + src.size(pre));
                }
                NodeKind::Document => unreachable!("document nodes are never nested"),
                NodeKind::Attribute => {
                    self.attribute(src.name(pre), src.text(pre).unwrap_or(""));
                }
                NodeKind::Text => {
                    self.text(src.text(pre).unwrap_or(""));
                }
                NodeKind::Comment => {
                    self.comment(src.text(pre).unwrap_or(""));
                }
                NodeKind::ProcessingInstruction => {
                    self.processing_instruction(src.name(pre), src.text(pre).unwrap_or(""));
                }
            }
            pre += 1;
        }
        while open_ends.pop().is_some() {
            self.close();
        }
    }

    fn mark_content(&mut self) {
        if let Some(flag) = self.content_started.last_mut() {
            *flag = true;
        }
    }

    /// Finish building. Panics if elements remain open (other than an
    /// implicit document root, which is closed automatically).
    pub fn finish(mut self) -> Document {
        if self.open.len() == 1 && self.doc.kind(self.open[0]) == NodeKind::Document {
            self.close();
        }
        assert!(self.open.is_empty(), "finish() with unclosed elements");
        debug_assert!(self.doc.check_invariants().is_ok());
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NamePool;

    #[test]
    fn builds_nested_fragment_with_attributes() {
        let mut pool = NamePool::new();
        let mut b = TreeBuilder::new();
        let e = pool.intern("e");
        let pos = pool.intern("pos");
        b.open_element(e);
        b.attribute(pos, "1");
        b.text("a");
        b.close();
        let doc = b.finish();
        doc.check_invariants().unwrap();
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.kind(0), NodeKind::Element);
        assert_eq!(doc.kind(1), NodeKind::Attribute);
        assert_eq!(doc.text(1), Some("1"));
        assert_eq!(doc.kind(2), NodeKind::Text);
        assert_eq!(doc.text(2), Some("a"));
        assert_eq!(doc.size(0), 2);
        // Attributes are not children.
        let kids: Vec<u32> = doc.children(0).collect();
        assert_eq!(kids, vec![2]);
        let attrs: Vec<u32> = doc.attributes(0).collect();
        assert_eq!(attrs, vec![1]);
    }

    #[test]
    fn document_root_closes_implicitly() {
        let mut pool = NamePool::new();
        let mut b = TreeBuilder::new_document();
        b.open_element(pool.intern("r"));
        b.close();
        let doc = b.finish();
        assert_eq!(doc.kind(0), NodeKind::Document);
        assert_eq!(doc.size(0), 1);
        assert_eq!(doc.parent(1), Some(0));
    }

    #[test]
    fn empty_text_is_dropped() {
        let mut pool = NamePool::new();
        let mut b = TreeBuilder::new();
        b.open_element(pool.intern("r"));
        assert!(b.text("").is_none());
        b.close();
        assert_eq!(b.finish().len(), 1);
    }

    #[test]
    fn copy_subtree_is_deep() {
        let mut pool = NamePool::new();
        let (a, bn, c) = (pool.intern("a"), pool.intern("b"), pool.intern("c"));
        let mut b1 = TreeBuilder::new();
        b1.open_element(a);
        b1.open_element(bn);
        b1.text("x");
        b1.close();
        b1.open_element(c);
        b1.close();
        b1.close();
        let src = b1.finish();

        let mut b2 = TreeBuilder::new();
        b2.open_element(pool.intern("e"));
        b2.copy_subtree(&src, 1); // copy <b>x</b>
        b2.copy_subtree(&src, 0); // copy whole <a> tree
        b2.close();
        let dst = b2.finish();
        dst.check_invariants().unwrap();
        // e, b, x, a, b, x, c
        assert_eq!(dst.len(), 7);
        assert_eq!(dst.name(1), bn);
        assert_eq!(dst.text(2), Some("x"));
        assert_eq!(dst.name(3), a);
        assert_eq!(dst.size(3), 3);
    }

    #[test]
    #[should_panic(expected = "attribute() after element content")]
    fn attribute_after_content_panics() {
        let mut pool = NamePool::new();
        let mut b = TreeBuilder::new();
        b.open_element(pool.intern("r"));
        b.text("hi");
        b.attribute(pool.intern("x"), "1");
    }
}
