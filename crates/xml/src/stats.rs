//! Catalog statistics for cost-based planning.
//!
//! The optimizer's cardinality model (see `exrquy-opt`) needs cheap,
//! deterministic answers to "how big is this document", "how many `<item>`
//! elements exist", and "what values does `@id` take". Those answers live
//! here, collected per fragment and aggregated per catalog:
//!
//! * **materialized fragments** are walked exactly — node counts, element
//!   and attribute name histograms, child fanout, and min/max sketches for
//!   integer-valued attributes and element text;
//! * **lazy fragments** (raw XML, not yet parsed) are *estimated* by a
//!   single linear scan over the bytes — the same flavor of scan
//!   `scan_names` already performs at load time, so estimation never
//!   parses a tree the query might not touch.
//!
//! Statistics are frozen per catalog snapshot: [`crate::Catalog::stats`]
//! computes them once behind a `OnceLock` and every later call returns the
//! same `Arc`. Because a document load or re-sharding builds a *new*
//! catalog (and swaps the executor, invalidating the plan cache), stats
//! invalidation rides the exact same lifecycle as cached plans — there is
//! no separate invalidation protocol to get wrong. Estimates for lazy
//! fragments may differ from the exact numbers a later snapshot computes
//! after materialization; that can change which plan the cost model
//! prefers, never what any plan returns.

use crate::name::{NameId, NamePool};
use crate::tree::{Document, NodeKind};
use std::collections::HashMap;

/// Node-count and value statistics for one fragment.
#[derive(Debug, Clone, Default)]
pub struct FragStats {
    /// Total encoded nodes (estimated for unmaterialized fragments).
    pub nodes: u64,
    /// Element count per element name.
    pub elem_counts: HashMap<NameId, u64>,
    /// Attribute count per attribute name.
    pub attr_counts: HashMap<NameId, u64>,
    /// Min/max sketch of integer-parsing values, keyed by the attribute
    /// name (for attribute values) or the enclosing element name (for
    /// element text).
    pub int_ranges: HashMap<NameId, (i64, i64)>,
    /// Total elements (denominator of the fanout average).
    pub elements: u64,
    /// Total element-children-of-elements (numerator of the fanout
    /// average).
    pub element_children: u64,
    /// Whether these numbers came from a byte-scan estimate rather than a
    /// walk of the parsed tree.
    pub estimated: bool,
}

impl FragStats {
    fn touch_range(&mut self, name: NameId, v: i64) {
        self.int_ranges
            .entry(name)
            .and_modify(|(lo, hi)| {
                *lo = (*lo).min(v);
                *hi = (*hi).max(v);
            })
            .or_insert((v, v));
    }
}

/// Aggregated, frozen statistics for one catalog snapshot.
#[derive(Debug, Clone, Default)]
pub struct CatalogStats {
    /// Per-fragment node weights (exact or estimated), index = fragment.
    pub per_frag_nodes: Vec<u64>,
    /// Per-shard node weights under the snapshot's shard layout.
    pub per_shard_nodes: Vec<u64>,
    /// Sum of `per_frag_nodes`.
    pub total_nodes: u64,
    /// Fragment (≈ document root) count.
    pub frags: u64,
    /// Catalog-wide element count per element name.
    pub elem_counts: HashMap<NameId, u64>,
    /// Catalog-wide attribute count per attribute name.
    pub attr_counts: HashMap<NameId, u64>,
    /// Catalog-wide min/max integer-value sketches (see [`FragStats`]).
    pub int_ranges: HashMap<NameId, (i64, i64)>,
    /// Catalog-wide element count.
    pub elements: u64,
    /// Average element children per element (child-step fanout).
    pub avg_fanout: f64,
    /// How many fragments contributed estimates instead of exact walks.
    pub estimated_frags: u64,
}

impl CatalogStats {
    /// Elements named `name` across the catalog.
    pub fn elem_count(&self, name: NameId) -> u64 {
        self.elem_counts.get(&name).copied().unwrap_or(0)
    }

    /// Attributes named `name` across the catalog.
    pub fn attr_count(&self, name: NameId) -> u64 {
        self.attr_counts.get(&name).copied().unwrap_or(0)
    }

    /// Width of the integer value range recorded under `name` (a crude
    /// distinct-value proxy for equi-join selectivity), if any values
    /// parsed as integers.
    pub fn int_range_width(&self, name: NameId) -> Option<u64> {
        self.int_ranges
            .get(&name)
            .map(|&(lo, hi)| hi.abs_diff(lo).saturating_add(1))
    }
}

/// Exact statistics from a parsed fragment.
pub fn stats_of_document(doc: &Document) -> FragStats {
    let mut s = FragStats {
        nodes: doc.len() as u64,
        ..FragStats::default()
    };
    for pre in 0..doc.len() as u32 {
        match doc.kind(pre) {
            NodeKind::Element => {
                s.elements += 1;
                *s.elem_counts.entry(doc.name(pre)).or_default() += 1;
                if let Some(p) = doc.parent(pre) {
                    if doc.kind(p) == NodeKind::Element {
                        s.element_children += 1;
                    }
                }
            }
            NodeKind::Attribute => {
                let name = doc.name(pre);
                *s.attr_counts.entry(name).or_default() += 1;
                if let Some(v) = doc.text(pre).and_then(|t| t.trim().parse::<i64>().ok()) {
                    s.touch_range(name, v);
                }
            }
            NodeKind::Text => {
                // Key element text under the enclosing element's name.
                if let Some(p) = doc.parent(pre) {
                    if doc.kind(p) == NodeKind::Element {
                        if let Some(v) = doc.text(pre).and_then(|t| t.trim().parse::<i64>().ok()) {
                            s.touch_range(doc.name(p), v);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    s
}

/// Estimated statistics from raw (unparsed) XML: one linear byte scan, no
/// tree construction, no allocation proportional to document size. Names
/// resolve against the frozen `pool` (the load-time name scan interned
/// them); unknown names are skipped rather than interned.
pub fn estimate_from_xml(xml: &str, pool: &NamePool) -> FragStats {
    let mut s = FragStats {
        nodes: 1, // the virtual document root
        estimated: true,
        ..FragStats::default()
    };
    let b = xml.as_bytes();
    let mut i = 0;
    let mut last_elem: Option<NameId> = None;
    let mut depth: u64 = 0;
    while i < b.len() {
        if b[i] != b'<' {
            // Text run until the next tag; count it as one text node if it
            // holds any non-whitespace, and sketch integer content.
            let start = i;
            while i < b.len() && b[i] != b'<' {
                i += 1;
            }
            let text = xml[start..i].trim();
            if !text.is_empty() {
                s.nodes += 1;
                if let (Some(name), Ok(v)) = (last_elem, text.parse::<i64>()) {
                    s.touch_range(name, v);
                }
            }
            continue;
        }
        i += 1;
        match b.get(i) {
            Some(b'/') => {
                // Closing tag.
                while i < b.len() && b[i] != b'>' {
                    i += 1;
                }
                depth = depth.saturating_sub(1);
                last_elem = None;
            }
            Some(b'!') | Some(b'?') => {
                while i < b.len() && b[i] != b'>' {
                    i += 1;
                }
            }
            Some(c) if c.is_ascii_alphabetic() || *c == b'_' => {
                let start = i;
                while i < b.len() && !b" \t\r\n/>".contains(&b[i]) {
                    i += 1;
                }
                let name = pool.lookup(&xml[start..i]);
                s.nodes += 1;
                s.elements += 1;
                if depth > 0 {
                    s.element_children += 1;
                }
                if let Some(id) = name {
                    *s.elem_counts.entry(id).or_default() += 1;
                }
                last_elem = name;
                // Attributes until the tag closes.
                let mut self_closing = false;
                while i < b.len() && b[i] != b'>' {
                    if b[i] == b'/' {
                        self_closing = true;
                        i += 1;
                    } else if b[i].is_ascii_alphabetic() || b[i] == b'_' {
                        let astart = i;
                        while i < b.len() && !b"= \t\r\n/>".contains(&b[i]) {
                            i += 1;
                        }
                        let aname = pool.lookup(&xml[astart..i]);
                        while i < b.len() && (b[i] == b' ' || b[i] == b'=') {
                            i += 1;
                        }
                        if i < b.len() && (b[i] == b'"' || b[i] == b'\'') {
                            let quote = b[i];
                            i += 1;
                            let vstart = i;
                            while i < b.len() && b[i] != quote {
                                i += 1;
                            }
                            s.nodes += 1;
                            if let Some(id) = aname {
                                *s.attr_counts.entry(id).or_default() += 1;
                                if let Ok(v) = xml[vstart..i].trim().parse::<i64>() {
                                    s.touch_range(id, v);
                                }
                            }
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
                if !self_closing {
                    depth += 1;
                } else {
                    last_elem = None;
                }
            }
            _ => {}
        }
        while i < b.len() && b[i] != b'>' {
            i += 1;
        }
        i += 1;
    }
    s
}

/// Cheap node-weight estimate for shard balancing of an unparsed
/// fragment: every `<` opens *something* (element, closing tag, comment),
/// so half the `<` count plus attribute openers approximates encoded
/// nodes well enough to balance shards. Always ≥ 1 (the document root).
pub fn estimate_node_weight(xml: &str) -> u64 {
    let opens = xml.bytes().filter(|&b| b == b'<').count() as u64;
    let attrs = xml.bytes().filter(|&b| b == b'=').count() as u64;
    // An element contributes an opening and (usually) a closing tag.
    (opens / 2 + attrs + 1).max(1)
}

/// Fold per-fragment statistics into catalog-wide aggregates.
pub fn aggregate(per_frag: Vec<FragStats>, shard_bounds: &[u32]) -> CatalogStats {
    let mut out = CatalogStats {
        frags: per_frag.len() as u64,
        ..CatalogStats::default()
    };
    for f in &per_frag {
        out.total_nodes += f.nodes;
        out.per_frag_nodes.push(f.nodes);
        out.elements += f.elements;
        out.estimated_frags += f.estimated as u64;
        for (&n, &c) in &f.elem_counts {
            *out.elem_counts.entry(n).or_default() += c;
        }
        for (&n, &c) in &f.attr_counts {
            *out.attr_counts.entry(n).or_default() += c;
        }
        for (&n, &(lo, hi)) in &f.int_ranges {
            out.int_ranges
                .entry(n)
                .and_modify(|(l, h)| {
                    *l = (*l).min(lo);
                    *h = (*h).max(hi);
                })
                .or_insert((lo, hi));
        }
    }
    let children: u64 = per_frag.iter().map(|f| f.element_children).sum();
    out.avg_fanout = if out.elements > 0 {
        children as f64 / out.elements as f64
    } else {
        0.0
    };
    for w in shard_bounds.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        out.per_shard_nodes
            .push(out.per_frag_nodes[lo..hi].iter().sum());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    #[test]
    fn exact_walk_counts_elements_attributes_and_ranges() {
        let mut pool = NamePool::new();
        let doc =
            parse_document(r#"<r><a id="3">7</a><a id="9"/><b>x</b></r>"#, &mut pool).unwrap();
        let s = stats_of_document(&doc);
        assert_eq!(s.nodes, doc.len() as u64);
        assert!(!s.estimated);
        let a = pool.lookup("a").unwrap();
        let id = pool.lookup("id").unwrap();
        assert_eq!(s.elem_counts[&a], 2);
        assert_eq!(s.attr_counts[&id], 2);
        assert_eq!(s.int_ranges[&id], (3, 9));
        assert_eq!(s.int_ranges[&a], (7, 7)); // element text sketch
        assert_eq!(s.elements, 4);
    }

    #[test]
    fn estimate_tracks_the_exact_walk_closely() {
        let xml = r#"<r><a id="3">7</a><a id="9"/><b>x</b></r>"#;
        let mut pool = NamePool::new();
        let doc = parse_document(xml, &mut pool).unwrap();
        let exact = stats_of_document(&doc);
        let est = estimate_from_xml(xml, &pool);
        assert!(est.estimated);
        assert_eq!(est.nodes, exact.nodes, "node estimate exact on clean XML");
        let a = pool.lookup("a").unwrap();
        let id = pool.lookup("id").unwrap();
        assert_eq!(est.elem_counts[&a], exact.elem_counts[&a]);
        assert_eq!(est.attr_counts[&id], exact.attr_counts[&id]);
        assert_eq!(est.int_ranges[&id], (3, 9));
    }

    #[test]
    fn node_weight_estimate_is_positive_and_monotonic() {
        assert!(estimate_node_weight("") >= 1);
        let small = estimate_node_weight("<a/>");
        let big = estimate_node_weight(&"<a><b/><c/></a>".repeat(50));
        assert!(big > small);
    }

    #[test]
    fn aggregate_sums_shards() {
        let mut pool = NamePool::new();
        let d1 = parse_document("<r><x/></r>", &mut pool).unwrap();
        let d2 = parse_document("<r><x/><x/></r>", &mut pool).unwrap();
        let frags = vec![stats_of_document(&d1), stats_of_document(&d2)];
        let (n1, n2) = (frags[0].nodes, frags[1].nodes);
        let agg = aggregate(frags, &[0, 1, 2]);
        assert_eq!(agg.per_shard_nodes, vec![n1, n2]);
        assert_eq!(agg.total_nodes, n1 + n2);
        let x = pool.lookup("x").unwrap();
        assert_eq!(agg.elem_count(x), 3);
        assert_eq!(agg.attr_count(x), 0);
        assert!(agg.avg_fanout > 0.0);
    }
}
