//! XPath axis evaluation over the pre/size/level encoding.
//!
//! This module implements the step algorithm plugged into the paper's step
//! operator `⬡ax::nt` (§3): given a duplicate-free, document-ordered set of
//! context nodes, produce the duplicate-free, document-ordered set of result
//! nodes for an axis/node-test pair.
//!
//! The production implementation is *staircase join* \[Grust, van Keulen,
//! Teubner, VLDB 2003\]: it exploits that the pre/size windows of a sorted
//! context form a "staircase", so overlapping regions are pruned and each
//! document region is scanned at most once. [`naive`] is an obviously
//! correct quadratic reference used for differential (and property) testing.
//!
//! Both implementations work on a single [`Document`]; the engine layer
//! partitions multi-fragment contexts by fragment.

use crate::name::NameId;
use crate::tree::{Document, NodeKind};

/// XPath axes supported by the step operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    SelfAxis,
    Attribute,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
}

impl Axis {
    /// Whether the principal node kind of this axis is `attribute`.
    pub fn principal_is_attribute(self) -> bool {
        matches!(self, Axis::Attribute)
    }

    /// Whether this axis yields nodes in reverse document order in XPath
    /// semantics. (Irrelevant for the result *set*, which we always return
    /// in document order — XQuery path results are in document order.)
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::PrecedingSibling
                | Axis::Preceding
        )
    }

    /// XPath surface syntax of the axis.
    pub fn as_str(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
        }
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Node tests supported by the step operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// `node()` — any node of the axis.
    AnyKind,
    /// `*` — any node of the axis' principal kind.
    Wildcard,
    /// `name` — named node of the axis' principal kind.
    Name(NameId),
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` / `processing-instruction(target)`
    Pi(Option<NameId>),
    /// `document-node()`
    DocumentNode,
    /// `element()` — any element, regardless of the axis' principal kind.
    Element,
}

impl NodeTest {
    /// Does node `pre` of `doc` satisfy this test on an axis whose
    /// principal node kind is attribute (`principal_attr`) or element?
    pub fn matches(self, doc: &Document, pre: u32, principal_attr: bool) -> bool {
        let kind = doc.kind(pre);
        match self {
            NodeTest::AnyKind => true,
            NodeTest::Wildcard => {
                if principal_attr {
                    kind == NodeKind::Attribute
                } else {
                    kind == NodeKind::Element
                }
            }
            NodeTest::Name(n) => {
                let want = if principal_attr {
                    NodeKind::Attribute
                } else {
                    NodeKind::Element
                };
                kind == want && doc.name(pre) == n
            }
            NodeTest::Text => kind == NodeKind::Text,
            NodeTest::Comment => kind == NodeKind::Comment,
            NodeTest::Pi(target) => {
                kind == NodeKind::ProcessingInstruction && target.is_none_or(|t| doc.name(pre) == t)
            }
            NodeTest::DocumentNode => kind == NodeKind::Document,
            NodeTest::Element => kind == NodeKind::Element,
        }
    }
}

/// Evaluate one location step with staircase-join-style pruning.
///
/// `ctx` must be sorted ascending and duplicate-free; the result is sorted
/// ascending and duplicate-free.
pub fn step(doc: &Document, ctx: &[u32], axis: Axis, test: NodeTest) -> Vec<u32> {
    debug_assert!(
        ctx.windows(2).all(|w| w[0] < w[1]),
        "context must be sorted, dup-free"
    );
    let attr = axis.principal_is_attribute();
    let out = match axis {
        Axis::Descendant => staircase_descendant(doc, ctx, false, test),
        Axis::DescendantOrSelf => staircase_descendant(doc, ctx, true, test),
        Axis::Child => {
            let mut v = Vec::new();
            for &c in ctx {
                if doc.kind(c).can_have_children() {
                    v.extend(doc.children(c).filter(|&p| test.matches(doc, p, attr)));
                }
            }
            v.sort_unstable();
            v
        }
        Axis::Attribute => {
            let mut v = Vec::new();
            for &c in ctx {
                if doc.kind(c) == NodeKind::Element {
                    v.extend(doc.attributes(c).filter(|&p| test.matches(doc, p, attr)));
                }
            }
            v.sort_unstable();
            v
        }
        Axis::SelfAxis => ctx
            .iter()
            .copied()
            .filter(|&p| test.matches(doc, p, attr))
            .collect(),
        Axis::Parent => {
            let mut v: Vec<u32> = ctx
                .iter()
                .filter_map(|&c| doc.parent(c))
                .filter(|&p| test.matches(doc, p, attr))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            let mut v = Vec::new();
            for &c in ctx {
                if axis == Axis::AncestorOrSelf && test.matches(doc, c, attr) {
                    v.push(c);
                }
                let mut cur = c;
                while let Some(p) = doc.parent(cur) {
                    if test.matches(doc, p, attr) {
                        v.push(p);
                    }
                    cur = p;
                }
            }
            v.sort_unstable();
            v.dedup();
            v
        }
        Axis::FollowingSibling | Axis::PrecedingSibling => {
            let mut v = Vec::new();
            for &c in ctx {
                if doc.kind(c) == NodeKind::Attribute {
                    continue; // attributes have no siblings
                }
                let Some(p) = doc.parent(c) else { continue };
                for s in doc.children(p) {
                    let keep = if axis == Axis::FollowingSibling {
                        s > c
                    } else {
                        s < c
                    };
                    if keep && test.matches(doc, s, attr) {
                        v.push(s);
                    }
                }
            }
            v.sort_unstable();
            v.dedup();
            v
        }
        Axis::Following => {
            // following(v) = { p : p > v + size(v) } minus attributes; for a
            // context set the union is governed by the smallest window end.
            let Some(bound) = ctx.iter().map(|&v| v + doc.size(v)).min() else {
                return Vec::new();
            };
            (bound + 1..doc.len() as u32)
                .filter(|&p| doc.kind(p) != NodeKind::Attribute && test.matches(doc, p, attr))
                .collect()
        }
        Axis::Preceding => {
            // preceding(v) = { p : p + size(p) < v } minus attributes; for a
            // context set the union is governed by the largest context node.
            let Some(&maxv) = ctx.last() else {
                return Vec::new();
            };
            (0..maxv)
                .filter(|&p| {
                    p + doc.size(p) < maxv
                        && doc.kind(p) != NodeKind::Attribute
                        && test.matches(doc, p, attr)
                })
                .collect()
        }
    };
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
    out
}

/// Staircase join for the descendant(-or-self) axis: a single pass over the
/// union of the context windows, skipping pruned (nested) windows.
fn staircase_descendant(doc: &Document, ctx: &[u32], or_self: bool, test: NodeTest) -> Vec<u32> {
    let mut out = Vec::new();
    // Attribute context nodes have empty windows but contribute themselves
    // under `-or-self`; collected separately and merged at the end because
    // they may lie inside (and be skipped by) an earlier element's window.
    let mut attr_selves = Vec::new();
    // `scanned_to` is exclusive: everything < scanned_to has been scanned.
    let mut scanned_to: u32 = 0;
    for &v in ctx {
        if doc.kind(v) == NodeKind::Attribute {
            if or_self && test.matches(doc, v, false) {
                attr_selves.push(v);
            }
            continue;
        }
        let lo = if or_self { v } else { v + 1 };
        let hi = v + doc.size(v) + 1; // exclusive
        let lo = lo.max(scanned_to);
        for p in lo..hi {
            // Attributes are not descendants, although they live inside the
            // pre/size window.
            if doc.kind(p) != NodeKind::Attribute && test.matches(doc, p, false) {
                out.push(p);
            }
        }
        scanned_to = scanned_to.max(hi);
    }
    if attr_selves.is_empty() {
        return out;
    }
    // Merge the two sorted, disjoint streams.
    let mut merged = Vec::with_capacity(out.len() + attr_selves.len());
    let (mut i, mut j) = (0, 0);
    while i < out.len() && j < attr_selves.len() {
        if out[i] < attr_selves[j] {
            merged.push(out[i]);
            i += 1;
        } else {
            merged.push(attr_selves[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&out[i..]);
    merged.extend_from_slice(&attr_selves[j..]);
    merged
}

/// Evaluate one location step using per-name node streams (TwigStack-style
/// "element streams", paper §1) where applicable — named element tests on
/// the child/descendant(-or-self) axes and named attribute tests — and
/// fall back to [`step`] otherwise.
///
/// For selective names this skips the window scans entirely: each context
/// window binary-searches the (ascending) stream of the requested name.
pub fn step_name_stream(doc: &Document, ctx: &[u32], axis: Axis, test: NodeTest) -> Vec<u32> {
    debug_assert!(ctx.windows(2).all(|w| w[0] < w[1]));
    match (axis, test) {
        (Axis::Descendant | Axis::DescendantOrSelf, NodeTest::Name(n)) => {
            let Some(stream) = doc.name_streams().elements.get(&n) else {
                return Vec::new();
            };
            let or_self = axis == Axis::DescendantOrSelf;
            let mut out = Vec::new();
            let mut scanned_to: u32 = 0;
            for &v in ctx {
                let lo = if or_self { v } else { v + 1 }.max(scanned_to);
                let hi = v + doc.size(v) + 1; // exclusive
                if lo < hi {
                    let from = stream.partition_point(|&p| p < lo);
                    let to = stream.partition_point(|&p| p < hi);
                    out.extend_from_slice(&stream[from..to]);
                }
                scanned_to = scanned_to.max(hi);
            }
            out
        }
        (Axis::Child, NodeTest::Name(n)) => {
            let Some(stream) = doc.name_streams().elements.get(&n) else {
                return Vec::new();
            };
            let mut out = Vec::new();
            for &v in ctx {
                if !doc.kind(v).can_have_children() {
                    continue;
                }
                let (lo, hi) = (v + 1, v + doc.size(v) + 1);
                let from = stream.partition_point(|&p| p < lo);
                let to = from + stream[from..].partition_point(|&p| p < hi);
                // Adaptive: a small same-name window filters by parent
                // (skipping the subtree scan entirely); a large one —
                // the name is frequent below `v`, e.g. recursive
                // markup — walks the real children instead, bounding
                // the cost by the fanout rather than the subtree's
                // name frequency.
                if to - from <= 16 {
                    out.extend(
                        stream[from..to]
                            .iter()
                            .copied()
                            .filter(|&p| doc.parent(p) == Some(v)),
                    );
                } else {
                    out.extend(doc.children(v).filter(|&p| test.matches(doc, p, false)));
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        (Axis::Attribute, NodeTest::Name(n)) => {
            let Some(stream) = doc.name_streams().attributes.get(&n) else {
                return Vec::new();
            };
            let mut out = Vec::new();
            for &v in ctx {
                let (lo, hi) = (v + 1, v + doc.size(v) + 1);
                let from = stream.partition_point(|&p| p < lo);
                let to = stream.partition_point(|&p| p < hi);
                out.extend(
                    stream[from..to]
                        .iter()
                        .copied()
                        .filter(|&p| doc.parent(p) == Some(v)),
                );
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        _ => step(doc, ctx, axis, test),
    }
}

/// Naive quadratic reference implementation of [`step`]; used for
/// differential testing only.
pub fn naive(doc: &Document, ctx: &[u32], axis: Axis, test: NodeTest) -> Vec<u32> {
    let attr = axis.principal_is_attribute();
    let mut out = Vec::new();
    for p in 0..doc.len() as u32 {
        let in_axis = ctx.iter().any(|&v| node_in_axis(doc, v, p, axis));
        if in_axis && test.matches(doc, p, attr) {
            out.push(p);
        }
    }
    out
}

/// Is `p` reachable from context node `v` along `axis`?
fn node_in_axis(doc: &Document, v: u32, p: u32, axis: Axis) -> bool {
    let is_attr = doc.kind(p) == NodeKind::Attribute;
    match axis {
        Axis::SelfAxis => p == v,
        Axis::Child => doc.parent(p) == Some(v) && !is_attr,
        Axis::Attribute => doc.parent(p) == Some(v) && is_attr,
        Axis::Descendant => doc.is_ancestor(v, p) && !is_attr,
        Axis::DescendantOrSelf => p == v || (doc.is_ancestor(v, p) && !is_attr),
        Axis::Parent => doc.parent(v) == Some(p),
        Axis::Ancestor => doc.is_ancestor(p, v),
        Axis::AncestorOrSelf => p == v || doc.is_ancestor(p, v),
        Axis::FollowingSibling => {
            doc.kind(v) != NodeKind::Attribute
                && doc.parent(p) == doc.parent(v)
                && p > v
                && !is_attr
        }
        Axis::PrecedingSibling => {
            doc.kind(v) != NodeKind::Attribute
                && doc.parent(p) == doc.parent(v)
                && p < v
                && !is_attr
        }
        Axis::Following => p > v + doc.size(v) && !is_attr,
        Axis::Preceding => p + doc.size(p) < v && !is_attr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NamePool;
    use crate::parse::parse_document;

    fn doc(s: &str) -> (Document, NamePool) {
        let mut pool = NamePool::new();
        let d = parse_document(s, &mut pool).unwrap();
        (d, pool)
    }

    #[test]
    fn figure1_descendant_union_example() {
        // §1: $t//(c|d) over <a><b><c/><d/></b><c/></a>.
        let (d, mut pool) = doc("<a><b><c/><d/></b><c/></a>");
        let c = pool.intern("c");
        let dn = pool.intern("d");
        let a = pool.intern("a");
        let root = step(&d, &[0], Axis::Child, NodeTest::Name(a));
        assert_eq!(root, vec![1]);
        let dos = step(&d, &root, Axis::DescendantOrSelf, NodeTest::AnyKind);
        assert_eq!(dos, vec![1, 2, 3, 4, 5]);
        let cs = step(&d, &dos, Axis::Child, NodeTest::Name(c));
        let ds = step(&d, &dos, Axis::Child, NodeTest::Name(dn));
        // (c1, c2) and (d) in document order, as in the paper.
        assert_eq!(cs, vec![3, 5]);
        assert_eq!(ds, vec![4]);
    }

    #[test]
    fn staircase_prunes_nested_contexts() {
        let (d, mut pool) = doc("<a><b><c/><d/></b><c/></a>");
        let c = pool.intern("c");
        // Context {a, b} — b's window nests inside a's; result must still be
        // duplicate-free and sorted.
        let r = step(&d, &[1, 2], Axis::Descendant, NodeTest::Name(c));
        assert_eq!(r, vec![3, 5]);
    }

    #[test]
    fn attribute_axis_and_attribute_exclusion() {
        let (d, mut pool) = doc(r#"<a x="1"><b y="2"/>t</a>"#);
        let x = pool.intern("x");
        let y = pool.intern("y");
        // Descendants never contain attributes.
        let desc = step(&d, &[1], Axis::Descendant, NodeTest::AnyKind);
        assert!(desc.iter().all(|&p| d.kind(p) != NodeKind::Attribute));
        // Attribute axis.
        assert_eq!(step(&d, &[1], Axis::Attribute, NodeTest::Name(x)).len(), 1);
        assert_eq!(step(&d, &[1], Axis::Attribute, NodeTest::Name(y)).len(), 0);
        let all_attrs = step(&d, &[1, 3], Axis::Attribute, NodeTest::Wildcard);
        assert_eq!(all_attrs.len(), 2);
    }

    #[test]
    fn parent_ancestor_siblings() {
        let (d, mut pool) = doc("<a><b><c/><d/></b><c/></a>");
        let _ = pool.intern("a");
        assert_eq!(step(&d, &[3, 4], Axis::Parent, NodeTest::AnyKind), vec![2]);
        assert_eq!(
            step(&d, &[3], Axis::Ancestor, NodeTest::AnyKind),
            vec![0, 1, 2]
        );
        assert_eq!(
            step(&d, &[3], Axis::AncestorOrSelf, NodeTest::Element),
            vec![1, 2, 3]
        );
        assert_eq!(
            step(&d, &[3], Axis::FollowingSibling, NodeTest::AnyKind),
            vec![4]
        );
        assert_eq!(
            step(&d, &[4], Axis::PrecedingSibling, NodeTest::AnyKind),
            vec![3]
        );
    }

    #[test]
    fn following_and_preceding() {
        let (d, _) = doc("<a><b><c/><d/></b><c/></a>");
        // following(c1=3) = {d=4, c2=5}
        assert_eq!(
            step(&d, &[3], Axis::Following, NodeTest::AnyKind),
            vec![4, 5]
        );
        // preceding(c2=5) = {b=2? no: b contains nothing after... } b(2) has
        // size 2, 2+2=4 < 5 → included; c1(3): 3<5 → included; d(4): 4<5 → included.
        assert_eq!(
            step(&d, &[5], Axis::Preceding, NodeTest::AnyKind),
            vec![2, 3, 4]
        );
        // an ancestor is in neither axis
        assert!(!step(&d, &[3], Axis::Preceding, NodeTest::AnyKind).contains(&1));
    }

    #[test]
    fn matches_naive_on_all_axes() {
        let (d, mut pool) = doc(
            r#"<site><regions><africa><item id="1"><name>x</name></item></africa>
               <asia><item id="2"/></asia></regions><people/></site>"#,
        );
        let item = pool.intern("item");
        let ctxs: Vec<Vec<u32>> = vec![
            vec![0],
            vec![1],
            vec![1, 2, 3],
            (0..d.len() as u32).collect(),
        ];
        let axes = [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::SelfAxis,
            Axis::Attribute,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Following,
            Axis::Preceding,
        ];
        let tests = [
            NodeTest::AnyKind,
            NodeTest::Wildcard,
            NodeTest::Name(item),
            NodeTest::Text,
            NodeTest::Element,
        ];
        for ctx in &ctxs {
            // Context sets must not contain attributes for sibling axes etc.;
            // keep them anyway — both impls must agree regardless.
            for &ax in &axes {
                for &t in &tests {
                    assert_eq!(
                        step(&d, ctx, ax, t),
                        naive(&d, ctx, ax, t),
                        "axis {ax:?} test {t:?} ctx {ctx:?}"
                    );
                }
            }
        }
    }
}
