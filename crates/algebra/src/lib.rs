//! The relational algebra dialect of the paper's Table 1, represented as a
//! shared (hash-consed) DAG of operators.
//!
//! Pathfinder compiles XQuery into a deliberately restricted relational
//! algebra whose operators mirror what SQL-centric kernels can execute
//! (§3). The two stars of the paper are the *row numbering* primitives:
//!
//! * [`Op::RowNum`] — the paper's `%a:⟨b⟩‖c`, a `ROW_NUMBER() OVER
//!   (PARTITION BY c ORDER BY b)`: it materializes order and typically
//!   requires a blocking sort;
//! * [`Op::RowId`] — the paper's `#a`, which attaches *arbitrary* unique
//!   numbers and "comes at negligible cost or may even be for free".
//!
//! Order indifference is exactly the freedom to replace the former with the
//! latter. The optimizer crate (`exrquy-opt`) performs the paper's column
//! dependency analysis over this DAG; the engine crate evaluates it.
//!
//! Operators are interned: structurally identical subplans share one node,
//! which reproduces the "significant sharing opportunities" of
//! Pathfinder-emitted code (§3) and makes plan-size statistics meaningful.

pub mod col;
pub mod dag;
pub mod diff;
pub mod dot;
pub mod op;
pub mod phys;
pub mod stats;
pub mod value;

pub use col::Col;
pub use dag::{Dag, OpId, SchemaError};
pub use diff::{plan_diff, PlanDiff};
pub use op::{AggrKind, FunKind, Op, SortKey};
pub use phys::{lower, FuseStep, PhysOp, PhysPlan};
pub use stats::PlanStats;
pub use value::AValue;
