//! Plan statistics: operator counts by kind.
//!
//! The paper reports plan sizes as evidence of the optimization's effect —
//! Q6 under `ordered` has 19 operators of which 5 are `%` (Fig. 6a); under
//! `unordered` all but one `%` become `#` (Fig. 6b); Q11's DAG shrinks from
//! 235 to 141 operators after column dependency analysis (§4.1). This
//! module computes our counterparts of those numbers.

use crate::dag::{Dag, OpId};
use crate::op::Op;
use std::collections::BTreeMap;
use std::fmt;

/// Operator census of one plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Total reachable operators.
    pub total: usize,
    /// Count per operator-kind name (e.g. `"%"`, `"#"`, `"⬡"`).
    pub by_kind: BTreeMap<&'static str, usize>,
}

impl PlanStats {
    /// Census of the plan rooted at `root`.
    pub fn of(dag: &Dag, root: OpId) -> Self {
        let mut stats = PlanStats::default();
        for id in dag.reachable(root) {
            stats.total += 1;
            *stats.by_kind.entry(dag.op(id).kind_name()).or_insert(0) += 1;
        }
        stats
    }

    /// Number of order-materializing `%` (RowNum) operators.
    pub fn rownums(&self) -> usize {
        self.by_kind.get("%").copied().unwrap_or(0)
    }

    /// Number of free `#` (RowId) operators.
    pub fn rowids(&self) -> usize {
        self.by_kind.get("#").copied().unwrap_or(0)
    }

    /// Number of `⬡` step operators.
    pub fn steps(&self) -> usize {
        self.by_kind.get("⬡").copied().unwrap_or(0)
    }

    /// Count of operators of an arbitrary kind name.
    pub fn count(&self, kind: &str) -> usize {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

impl fmt::Display for PlanStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ops (", self.total)?;
        let mut first = true;
        for (k, n) in &self.by_kind {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}:{n}")?;
            first = false;
        }
        write!(f, ")")
    }
}

/// Count how many `%` operators in the plan carry a non-trivial order
/// specification (a `%` with an empty order list is "for free", §7).
pub fn costly_rownums(dag: &Dag, root: OpId) -> usize {
    dag.reachable(root)
        .into_iter()
        .filter(|&id| matches!(dag.op(id), Op::RowNum { order, .. } if !order.is_empty()))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::col::Col;
    use crate::op::SortKey;
    use crate::value::AValue;

    #[test]
    fn counts_by_kind() {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        let a = dag.add(Op::Attach {
            input: l,
            col: Col::ITEM,
            value: AValue::Int(7),
        });
        let r = dag.add(Op::RowNum {
            input: a,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let i = dag.add(Op::RowId {
            input: r,
            new: Col::POS1,
        });
        let s = PlanStats::of(&dag, i);
        assert_eq!(s.total, 4);
        assert_eq!(s.rownums(), 1);
        assert_eq!(s.rowids(), 1);
        assert_eq!(s.count("lit"), 1);
        assert_eq!(costly_rownums(&dag, i), 1);
    }

    #[test]
    fn free_rownum_not_costly() {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        let r = dag.add(Op::RowNum {
            input: l,
            new: Col::POS,
            order: vec![],
            part: None,
        });
        assert_eq!(costly_rownums(&dag, r), 0);
        assert_eq!(PlanStats::of(&dag, r).rownums(), 1);
    }
}
