//! Atomic values appearing inside plans (literal tables, attached
//! constants, function arguments).
//!
//! Plan nodes must be hashable for hash-consing, so doubles are stored via
//! their bit pattern ([`AValue::Dbl`] wraps an ordered representation).

use std::fmt;
use std::sync::Arc;

/// An atomic value in a plan literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AValue {
    Int(i64),
    /// Double, stored as bits so the enum is `Eq + Hash`. NaNs with
    /// different payloads compare unequal, which is fine for interning.
    Dbl(u64),
    Str(Arc<str>),
    Bool(bool),
}

impl AValue {
    /// Build a double value.
    pub fn dbl(f: f64) -> Self {
        AValue::Dbl(f.to_bits())
    }

    /// Build a string value.
    pub fn str(s: &str) -> Self {
        AValue::Str(Arc::from(s))
    }

    /// Extract the double (if this is one).
    pub fn as_dbl(&self) -> Option<f64> {
        match self {
            AValue::Dbl(b) => Some(f64::from_bits(*b)),
            _ => None,
        }
    }
}

impl fmt::Display for AValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AValue::Int(i) => write!(f, "{i}"),
            AValue::Dbl(b) => write!(f, "{}", f64::from_bits(*b)),
            AValue::Str(s) => write!(f, "{s:?}"),
            AValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn doubles_intern_by_bits() {
        let mut set = HashSet::new();
        set.insert(AValue::dbl(1.5));
        assert!(set.contains(&AValue::dbl(1.5)));
        assert!(!set.contains(&AValue::dbl(2.5)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AValue::Int(42).to_string(), "42");
        assert_eq!(AValue::dbl(0.5).to_string(), "0.5");
        assert_eq!(AValue::str("x").to_string(), "\"x\"");
        assert_eq!(AValue::Bool(true).to_string(), "true");
    }
}
