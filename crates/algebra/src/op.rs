//! Plan operators (the paper's Table 1, plus the node-construction and
//! auxiliary operators any complete Pathfinder plan needs).
//!
//! Naming follows the paper where it has a symbol:
//!
//! | paper              | here                 |
//! |--------------------|----------------------|
//! | `π a,b:c`          | [`Op::Project`]      |
//! | `σ a`              | [`Op::Select`]       |
//! | `% a:⟨b⟩‖c`        | [`Op::RowNum`]       |
//! | `# a`              | [`Op::RowId`]        |
//! | `⋈ a=b`            | [`Op::EquiJoin`]     |
//! | `×`                | [`Op::Cross`]        |
//! | `◦ a:(b,c)`        | [`Op::Fun`]          |
//! | `∪̇`                | [`Op::Union`]        |
//! | `count a‖b`        | [`Op::Aggr`]         |
//! | `⬡ ax::nt`         | [`Op::Step`]         |
//! | literal table      | [`Op::Lit`]          |
//! | `doc`              | [`Op::Doc`]          |
//!
//! Additional members (all present in the full Pathfinder algebra, cf.
//! \[10, 11\]): `Attach` (× with a single-row literal — the `pos|1` tables
//! in the paper's figures), `Distinct` (δ), `Difference` (\\, used for
//! empty-group completion and else-branch loops), `ThetaJoin` (the product
//! of the join recognition of \[9\]), and the node constructors
//! `Element`/`Attr`/`TextNode` (the paper's "elem cons." order
//! interaction 2© runs through these).

use crate::col::Col;
use crate::dag::OpId;
use crate::value::AValue;
use exrquy_xml::{Axis, NodeTest};
use std::sync::Arc;

/// Sort criterion of a [`Op::RowNum`] (or an `order by`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortKey {
    pub col: Col,
    pub desc: bool,
}

impl SortKey {
    /// Ascending sort on `col`.
    pub fn asc(col: Col) -> Self {
        SortKey { col, desc: false }
    }
}

/// Row-level functions computed by [`Op::Fun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunKind {
    // arithmetic (numeric promotion; untyped operands are cast to double)
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
    UnaryMinus,
    // comparisons (XQuery value-comparison rules on dynamic types)
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    // boolean connectives
    And,
    Or,
    Not,
    // strings & conversions
    Concat,
    Contains,
    StartsWith,
    StringLength,
    Substring2,
    Substring3,
    UpperCase,
    LowerCase,
    Translate,
    /// `fn:normalize-space`.
    NormalizeSpace,
    /// `fn:substring-before`.
    SubstringBefore,
    /// `fn:substring-after`.
    SubstringAfter,
    /// `fn:string-join` with an explicit separator (2nd arg).
    StringJoinSep,
    /// `fn:ends-with`.
    EndsWith,
    /// `fn:abs`.
    Abs,
    /// String value / atomization of an item (node → string value,
    /// atomic → itself).
    Atomize,
    /// Cast to double (`fn:number`-ish; non-numeric → NaN).
    ToNum,
    /// Cast to string.
    ToStr,
    /// Node name (`fn:local-name` / `fn:name`).
    NameOf,
    /// `fn:true()`-style identity on booleans — effective boolean value of
    /// a *single* item.
    ItemEbv,
    /// Document-order comparison `<<`.
    NodeBefore,
    /// Document-order comparison `>>`.
    NodeAfter,
    /// Node identity `is`.
    NodeIs,
    /// `fn:round`.
    Round,
    /// `fn:floor`.
    Floor,
    /// `fn:ceiling`.
    Ceiling,
}

impl FunKind {
    /// Is this one of the six value comparisons?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            FunKind::Eq | FunKind::Ne | FunKind::Lt | FunKind::Le | FunKind::Gt | FunKind::Ge
        )
    }

    /// Mirror a comparison (for swapping theta-join sides): `a < b` ⇔
    /// `b > a`.
    pub fn mirror(self) -> Self {
        match self {
            FunKind::Lt => FunKind::Gt,
            FunKind::Le => FunKind::Ge,
            FunKind::Gt => FunKind::Lt,
            FunKind::Ge => FunKind::Le,
            other => other,
        }
    }
}

/// Grouped aggregation kinds of [`Op::Aggr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggrKind {
    /// `count` — the one aggregate shown in Table 1; needs no argument.
    Count,
    Sum,
    Max,
    Min,
    Avg,
    /// Effective boolean value of the group's item sequence (nodes → true,
    /// single boolean/numeric/string → its EBV; used for `fn:boolean`,
    /// `where`, `if`).
    Ebv,
    /// `true` iff any item in the group is `true` (quantifier `some`).
    Any,
    /// `true` iff all items in the group are `true` (quantifier `every`).
    All,
    /// Space-separated concatenation of the group's string values in `pos`
    /// order (attribute value templates, `fn:string` on sequences). The
    /// group's internal order is taken from the paper's `pos` column when
    /// present in the input; the engine sorts by it.
    StrJoin,
}

/// A plan operator. Children are [`OpId`]s into the owning
/// [`Dag`](crate::dag::Dag).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Literal table (includes the paper's `pos|1`-style constants and the
    /// unit `loop` relation).
    Lit {
        cols: Vec<Col>,
        rows: Vec<Vec<AValue>>,
    },
    /// Access to an encoded XML document: one row, `item` = document root
    /// node of `url`.
    Doc { url: Arc<str> },
    /// Projection with rename; does *not* remove duplicates (§3). `cols`
    /// pairs are `(output name, input name)`.
    Project { input: OpId, cols: Vec<(Col, Col)> },
    /// Keep rows whose (boolean) column `col` is true.
    Select { input: OpId, col: Col },
    /// `% new:⟨order⟩‖part` — dense rank (1,2,…) per group in sort order.
    /// The blocking, order-materializing primitive.
    RowNum {
        input: OpId,
        new: Col,
        order: Vec<SortKey>,
        part: Option<Col>,
    },
    /// `# new` — arbitrary unique numbers; "negligible cost or even free".
    RowId { input: OpId, new: Col },
    /// Attach a constant column (the `× pos|1` idiom in the paper's plans).
    Attach {
        input: OpId,
        col: Col,
        value: AValue,
    },
    /// Row-level function `new := kind(args…)`.
    Fun {
        input: OpId,
        new: Col,
        kind: FunKind,
        args: Vec<Col>,
    },
    /// Grouped aggregation (`count item‖iter` and friends). Groups with no
    /// rows produce no output row — the compiler completes empty groups
    /// explicitly (fn:count() on () must yield 0).
    Aggr {
        input: OpId,
        kind: AggrKind,
        new: Col,
        /// Aggregated column (None only for Count).
        arg: Option<Col>,
        part: Option<Col>,
    },
    /// δ — duplicate row elimination.
    Distinct { input: OpId },
    /// `⬡ ax::nt` — XPath location step: consumes `iter|item` context
    /// (items must be nodes), emits duplicate-free `iter|item` result
    /// nodes, in an order chosen by the step algorithm (§3).
    Step {
        input: OpId,
        axis: Axis,
        test: NodeTest,
    },
    /// Cartesian product (schemas must be disjoint).
    Cross { l: OpId, r: OpId },
    /// Equi-join `l.lcol = r.rcol`.
    EquiJoin {
        l: OpId,
        r: OpId,
        lcol: Col,
        rcol: Col,
    },
    /// Theta-join on a conjunction of value predicates `l.col ◦ r.col` —
    /// the operator produced by join recognition \[9\].
    ThetaJoin {
        l: OpId,
        r: OpId,
        pred: Vec<(Col, FunKind, Col)>,
    },
    /// `∪̇` — disjoint union (append). Column *sets* must coincide; the
    /// engine aligns by name. This is "the algebraic equivalent of item
    /// sequence concatenation `,`" (§4.2).
    Union { l: OpId, r: OpId },
    /// `\` — rows of `l` whose key (the tuple of `on.0` columns) does not
    /// occur among `r`'s `on.1` tuples (anti-semijoin; used for
    /// empty-group completion, else-branch loop derivation, and `except`).
    Difference {
        l: OpId,
        r: OpId,
        on: Vec<(Col, Col)>,
    },
    /// Element construction: one new element node per row of `names`
    /// (`iter|item` with string items); `content` (`iter|pos|item`)
    /// provides the content sequence per iteration — order interaction
    /// 2© (seq → doc) happens here. Emits `iter|item` (new nodes).
    Element { names: OpId, content: OpId },
    /// Attribute construction (per-iteration name and string value).
    Attr { names: OpId, values: OpId },
    /// Text node construction from `iter|item` string values.
    TextNode { content: OpId },
    /// Integer range expansion (`lo to hi`): for each input row, emit one
    /// row per integer in `[lo, hi]` (none when `lo > hi`), as new column
    /// `new`. Input columns are replicated.
    Range {
        input: OpId,
        lo: Col,
        hi: Col,
        new: Col,
    },
    /// Serialization root: marks the result that must be emitted in `pos`
    /// order with `item` values. Identity on its input; the seed of the
    /// column dependency analysis (required columns {pos, item}, §4.1).
    Serialize { input: OpId },
    /// Access to one shard of the catalog's document collection: one row
    /// per document whose fragment index lies in `[lo, hi)`, with `pos` =
    /// the document's 1-based rank in the whole collection (its fragment
    /// index + 1) and `item` = its root node. The compiler emits one
    /// `Fanout` per shard of the catalog's layout for `fn:collection()`;
    /// carrying the fragment range in the operator keeps evaluation
    /// independent of the catalog the plan later runs against (the plan
    /// cache keys on the layout, so ranges never go stale).
    Fanout { shard: u32, lo: u32, hi: u32 },
    /// Stable ascending lexicographic sort by `keys` (integer rank
    /// columns). Schema-preserving. Emitted only by the cost-based join
    /// enumerator: after reordering a join cluster, sorting by the
    /// per-leaf `#` rank columns restores the canonical tree's emission
    /// order exactly, which is what keeps reordered plans byte-identical
    /// to the rule-only reference plan.
    Sort { input: OpId, keys: Vec<Col> },
    /// `∪̂` — n-ary disjoint bag union over per-shard subplans. Column
    /// *sets* of all parts must coincide. Parts are kept in ascending
    /// shard order and — by construction and by every shard-push rewrite —
    /// produce node rows from disjoint, ascending fragment ranges, so a
    /// plain shard-major concatenation *is* collection order. Row numbering
    /// below a `∪̂` is shard-local, which the paper's order indifference
    /// makes free (§5: `#` keys need no global order).
    ShardUnion { parts: Vec<OpId> },
}

impl Op {
    /// Children of this operator, in a fixed order.
    pub fn children(&self) -> Vec<OpId> {
        match self {
            Op::Lit { .. } | Op::Doc { .. } | Op::Fanout { .. } => vec![],
            Op::ShardUnion { parts } => parts.clone(),
            Op::Project { input, .. }
            | Op::Select { input, .. }
            | Op::RowNum { input, .. }
            | Op::RowId { input, .. }
            | Op::Attach { input, .. }
            | Op::Fun { input, .. }
            | Op::Aggr { input, .. }
            | Op::Distinct { input }
            | Op::Step { input, .. }
            | Op::TextNode { content: input }
            | Op::Range { input, .. }
            | Op::Sort { input, .. }
            | Op::Serialize { input } => vec![*input],
            Op::Cross { l, r }
            | Op::EquiJoin { l, r, .. }
            | Op::ThetaJoin { l, r, .. }
            | Op::Union { l, r }
            | Op::Difference { l, r, .. }
            | Op::Element {
                names: l,
                content: r,
            }
            | Op::Attr {
                names: l,
                values: r,
            } => vec![*l, *r],
        }
    }

    /// Rebuild this operator with children replaced (same arity/order as
    /// [`children`](Self::children)). Used by the optimizer's rewriting
    /// passes.
    pub fn with_children(&self, ch: &[OpId]) -> Op {
        let mut op = self.clone();
        match &mut op {
            Op::Lit { .. } | Op::Doc { .. } | Op::Fanout { .. } => {}
            Op::ShardUnion { parts } => *parts = ch.to_vec(),
            Op::Project { input, .. }
            | Op::Select { input, .. }
            | Op::RowNum { input, .. }
            | Op::RowId { input, .. }
            | Op::Attach { input, .. }
            | Op::Fun { input, .. }
            | Op::Aggr { input, .. }
            | Op::Distinct { input }
            | Op::Step { input, .. }
            | Op::TextNode { content: input }
            | Op::Range { input, .. }
            | Op::Sort { input, .. }
            | Op::Serialize { input } => *input = ch[0],
            Op::Cross { l, r }
            | Op::EquiJoin { l, r, .. }
            | Op::ThetaJoin { l, r, .. }
            | Op::Union { l, r }
            | Op::Difference { l, r, .. }
            | Op::Element {
                names: l,
                content: r,
            }
            | Op::Attr {
                names: l,
                values: r,
            } => {
                *l = ch[0];
                *r = ch[1];
            }
        }
        op
    }

    /// Every kind name [`Op::kind_name`] can return, in declaration
    /// order. Coverage tooling checks itself against this list.
    pub const KIND_NAMES: &'static [&'static str] = &[
        "lit",
        "doc",
        "π",
        "σ",
        "%",
        "#",
        "attach",
        "fun",
        "aggr",
        "δ",
        "⬡",
        "×",
        "⋈",
        "⋈θ",
        "∪̇",
        "\\",
        "elem",
        "attr",
        "text",
        "range",
        "serialize",
        "sort",
        "fanout",
        "∪̂",
    ];

    /// Short operator-kind name for statistics and rendering.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::Lit { .. } => "lit",
            Op::Doc { .. } => "doc",
            Op::Project { .. } => "π",
            Op::Select { .. } => "σ",
            Op::RowNum { .. } => "%",
            Op::RowId { .. } => "#",
            Op::Attach { .. } => "attach",
            Op::Fun { .. } => "fun",
            Op::Aggr { .. } => "aggr",
            Op::Distinct { .. } => "δ",
            Op::Step { .. } => "⬡",
            Op::Cross { .. } => "×",
            Op::EquiJoin { .. } => "⋈",
            Op::ThetaJoin { .. } => "⋈θ",
            Op::Union { .. } => "∪̇",
            Op::Difference { .. } => "\\",
            Op::Element { .. } => "elem",
            Op::Attr { .. } => "attr",
            Op::TextNode { .. } => "text",
            Op::Range { .. } => "range",
            Op::Serialize { .. } => "serialize",
            Op::Sort { .. } => "sort",
            Op::Fanout { .. } => "fanout",
            Op::ShardUnion { .. } => "∪̂",
        }
    }
}
