//! Column identifiers.
//!
//! The compiler works with a small set of well-known columns — `iter`,
//! `pos`, `item` are the backbone of the paper's relational sequence
//! encoding (§3) — plus arbitrarily many fresh columns allocated during
//! compilation. A [`Col`] is a plain `u32`; ids below [`Col::FIRST_FRESH`]
//! are reserved for the well-known names.

use std::fmt;

/// A column name, interned as a small integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Col(pub u32);

impl Col {
    /// Iteration order (the paper's `iter` column).
    pub const ITER: Col = Col(0);
    /// Sequence order (the paper's `pos` column).
    pub const POS: Col = Col(1);
    /// Item value (node id or atomic value).
    pub const ITEM: Col = Col(2);
    /// Common auxiliary columns appearing in the paper's plans.
    pub const POS1: Col = Col(3);
    pub const ITER1: Col = Col(4);
    pub const BIND: Col = Col(5);
    pub const ORD: Col = Col(6);
    pub const ITEM1: Col = Col(7);
    pub const ITEM2: Col = Col(8);
    pub const RES: Col = Col(9);
    pub const OUTER: Col = Col(10);
    pub const INNER: Col = Col(11);

    /// First id handed out by [`crate::dag::Dag::fresh_col`].
    pub const FIRST_FRESH: u32 = 32;

    /// `order by` key value column for key index `i` (0 ≤ i < 8).
    pub fn sort_key(i: usize) -> Col {
        assert!(i < 8, "at most 8 order-by keys supported");
        Col(16 + i as u32)
    }

    /// Join-helper column for `order by` key `i`.
    pub fn sort_key_join(i: usize) -> Col {
        assert!(i < 8, "at most 8 order-by keys supported");
        Col(24 + i as u32)
    }

    /// Human-readable name (well-known columns get their paper names).
    pub fn name(self) -> String {
        match self {
            Col::ITER => "iter".into(),
            Col::POS => "pos".into(),
            Col::ITEM => "item".into(),
            Col::POS1 => "pos1".into(),
            Col::ITER1 => "iter1".into(),
            Col::BIND => "bind".into(),
            Col::ORD => "ord".into(),
            Col::ITEM1 => "item1".into(),
            Col::ITEM2 => "item2".into(),
            Col::RES => "res".into(),
            Col::OUTER => "outer".into(),
            Col::INNER => "inner".into(),
            Col(n) => format!("c{n}"),
        }
    }
}

impl fmt::Display for Col {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_names() {
        assert_eq!(Col::ITER.name(), "iter");
        assert_eq!(Col::POS.name(), "pos");
        assert_eq!(Col::ITEM.name(), "item");
        assert_eq!(Col(99).name(), "c99");
    }

    #[test]
    fn well_known_ids_below_fresh_range() {
        for c in [
            Col::ITER,
            Col::POS,
            Col::ITEM,
            Col::POS1,
            Col::ITER1,
            Col::BIND,
            Col::ORD,
            Col::ITEM1,
            Col::ITEM2,
            Col::RES,
            Col::OUTER,
            Col::INNER,
        ] {
            assert!(c.0 < Col::FIRST_FRESH);
        }
    }
}
