//! Flattened physical plans: the DAG lowered into a dense `Vec<PhysOp>`
//! in topological order, with integer *slot* operands.
//!
//! The evaluator's old shape — per-evaluation `topo_order` walks plus an
//! `OpId → Arc<Table>` hash memo — pays a hash lookup per operand access
//! and re-derives the schedule on every execution. Lowering once at
//! prepare time turns both into array indexing: `PhysOp::args` are
//! indices into a result-slot vector that is allocated per execution.
//!
//! Lowering also performs **chain fusion**: maximal linear runs of the
//! unary row-shape-preserving operators (`fun`, `σ`, `attach`, `π`) whose
//! intermediates have exactly one consumer collapse into a single
//! [`PhysOp::Fused`] slot. The engine executes a fused chain as one pass
//! over the input batch — selections become selection vectors, function
//! results live in per-row registers, and none of the intermediate tables
//! are ever materialized. The paper's order-indifference result is what
//! makes this legal: once `#`-numbering is deferred, no operator in such
//! a chain observes physical row order, so batching and short-circuiting
//! per row cannot change the (bag) semantics — steps still run in chain
//! order per row, so error semantics are untouched.

use crate::col::Col;
use crate::dag::{Dag, OpId};
use crate::op::{FunKind, Op};
use crate::value::AValue;
use std::collections::HashMap;

/// One step of a fused operator chain, in chain (execution) order.
#[derive(Debug, Clone, PartialEq)]
pub enum FuseStep {
    /// `new := kind(args…)` per row.
    Fun {
        new: Col,
        kind: FunKind,
        args: Vec<Col>,
    },
    /// Drop rows whose `col` is not `true`.
    Select { col: Col },
    /// Bind `col` to a per-row constant.
    Attach { col: Col, value: AValue },
    /// Rename/narrow the visible columns to `(output, input)` pairs.
    Project { cols: Vec<(Col, Col)> },
}

impl FuseStep {
    /// Short rendering for `--explain`.
    pub fn describe(&self) -> String {
        match self {
            FuseStep::Fun { new, kind, args } => {
                let a: Vec<String> = args.iter().map(|c| c.name()).collect();
                format!("fun {new}:{kind:?}({})", a.join(","))
            }
            FuseStep::Select { col } => format!("σ {col}"),
            FuseStep::Attach { col, .. } => format!("attach {col}"),
            FuseStep::Project { cols } => {
                let c: Vec<String> = cols
                    .iter()
                    .map(|(n, s)| if n == s { n.name() } else { format!("{n}:{s}") })
                    .collect();
                format!("π {}", c.join(","))
            }
        }
    }
}

/// One slot of a flattened plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// A single logical operator; `args` are result slots of its children
    /// in [`Op::children`] order.
    Op { id: OpId, args: Vec<u32> },
    /// A fused linear chain over the table in slot `input`.
    Fused {
        input: u32,
        steps: Vec<FuseStep>,
        /// DAG ids folded into this slot, chain order; the last member is
        /// the operator whose table this slot publishes.
        members: Vec<OpId>,
    },
}

impl PhysOp {
    /// DAG id of the operator whose result this slot holds.
    pub fn out_id(&self) -> OpId {
        match self {
            PhysOp::Op { id, .. } => *id,
            PhysOp::Fused { members, .. } => *members.last().expect("fused chain is non-empty"),
        }
    }
}

/// A flattened physical plan: slots in topological order (every slot's
/// operands precede it), root last.
#[derive(Debug, Clone)]
pub struct PhysPlan {
    /// Slots; `ops[i]`'s operands are all `< i`.
    pub ops: Vec<PhysOp>,
    /// Slot holding the root's result (always `ops.len() - 1`).
    pub root: u32,
    /// Number of fused chains.
    pub fused_chains: usize,
    /// Number of logical operators folded into fused chains.
    pub fused_ops: usize,
}

impl PhysPlan {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for a plan with no slots (never produced by [`lower`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Slot index of each logical operator that owns a slot (the tail of
    /// a fused chain owns the chain's slot; interior members own none).
    pub fn slot_of(&self) -> HashMap<OpId, u32> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (op.out_id(), i as u32))
            .collect()
    }

    /// Render the flattened program for `--explain`: one line per slot,
    /// fused chains spelled out step by step.
    pub fn render(&self, dag: &Dag) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                PhysOp::Op { id, args } => {
                    let a: Vec<String> = args.iter().map(|s| format!("s{s}")).collect();
                    let _ = writeln!(
                        out,
                        "s{i}: {} {}{}",
                        dag.op(*id).kind_name(),
                        id,
                        if a.is_empty() {
                            String::new()
                        } else {
                            format!(" ({})", a.join(", "))
                        }
                    );
                }
                PhysOp::Fused {
                    input,
                    steps,
                    members,
                } => {
                    let body: Vec<String> = steps.iter().map(FuseStep::describe).collect();
                    let _ = writeln!(
                        out,
                        "s{i}: fused[{} ops] {{ {} }} (s{input})",
                        members.len(),
                        body.join(" → ")
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "{} slots, {} fused chains covering {} operators",
            self.ops.len(),
            self.fused_chains,
            self.fused_ops
        );
        out
    }
}

/// Is `op` eligible as a fused-chain member? Exactly the unary operators
/// a single batch pass can execute with per-row registers: they preserve
/// or filter the input's rows and add/rename columns, nothing else.
fn fusable(op: &Op) -> bool {
    matches!(
        op,
        Op::Fun { .. } | Op::Select { .. } | Op::Attach { .. } | Op::Project { .. }
    )
}

fn fuse_step(op: &Op) -> FuseStep {
    match op {
        Op::Fun {
            new, kind, args, ..
        } => FuseStep::Fun {
            new: *new,
            kind: *kind,
            args: args.clone(),
        },
        Op::Select { col, .. } => FuseStep::Select { col: *col },
        Op::Attach { col, value, .. } => FuseStep::Attach {
            col: *col,
            value: value.clone(),
        },
        Op::Project { cols, .. } => FuseStep::Project { cols: cols.clone() },
        other => unreachable!("`{}` is not fusable", other.kind_name()),
    }
}

/// Lower the plan rooted at `root` into a flattened slot program. With
/// `fuse` set, single-consumer runs of fusable operators collapse into
/// [`PhysOp::Fused`] chains; without it every operator gets its own slot
/// (the scalar reference shape, used by the vectorization differential).
pub fn lower(dag: &Dag, root: OpId, fuse: bool) -> PhysPlan {
    let order = dag.topo_order(root);
    // Consumer counts with multiplicity over the live plan (an operator
    // using one child twice consumes it twice — such a child cannot be a
    // chain interior, its table is observed two ways).
    let mut consumers: HashMap<OpId, usize> = HashMap::new();
    for &id in &order {
        for c in dag.op(id).children() {
            *consumers.entry(c).or_insert(0) += 1;
        }
    }
    // Chain links: `next[x] = p` when x is fusable, feeds only p, and p
    // is fusable with x as its single input. The root never links out.
    let mut parent_of: HashMap<OpId, Vec<OpId>> = HashMap::new();
    for &id in &order {
        for c in dag.op(id).children() {
            parent_of.entry(c).or_default().push(id);
        }
    }
    let mut next: HashMap<OpId, OpId> = HashMap::new();
    let mut prev: HashMap<OpId, OpId> = HashMap::new();
    if fuse {
        for &id in &order {
            if id == root || !fusable(dag.op(id)) || consumers.get(&id) != Some(&1) {
                continue;
            }
            let p = parent_of[&id][0];
            if fusable(dag.op(p)) {
                next.insert(id, p);
                prev.insert(p, id);
            }
        }
    }
    let mut ops: Vec<PhysOp> = Vec::with_capacity(order.len());
    let mut slot: HashMap<OpId, u32> = HashMap::new();
    let mut fused_chains = 0;
    let mut fused_ops = 0;
    for &id in &order {
        if next.contains_key(&id) {
            // Chain interior: emitted as part of its tail's slot.
            continue;
        }
        if let Some(&tail_prev) = prev.get(&id) {
            // `id` is the tail of a chain of length ≥ 2: walk back to the
            // head, then emit the whole run as one fused slot.
            let mut members = vec![id, tail_prev];
            while let Some(&earlier) = prev.get(members.last().expect("non-empty")) {
                members.push(earlier);
            }
            members.reverse();
            let head = members[0];
            let input = dag.op(head).children()[0];
            let steps: Vec<FuseStep> = members.iter().map(|&m| fuse_step(dag.op(m))).collect();
            fused_chains += 1;
            fused_ops += members.len();
            let s = ops.len() as u32;
            ops.push(PhysOp::Fused {
                input: slot[&input],
                steps,
                members,
            });
            slot.insert(id, s);
        } else {
            let args: Vec<u32> = dag.op(id).children().iter().map(|c| slot[c]).collect();
            let s = ops.len() as u32;
            ops.push(PhysOp::Op { id, args });
            slot.insert(id, s);
        }
    }
    let root_slot = slot[&root];
    debug_assert_eq!(root_slot as usize, ops.len() - 1);
    PhysPlan {
        ops,
        root: root_slot,
        fused_chains,
        fused_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(dag: &mut Dag, cols: Vec<Col>) -> OpId {
        dag.add(Op::Lit { cols, rows: vec![] })
    }

    #[test]
    fn lowers_in_topological_order_with_slot_args() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITER]);
        let r = lit(&mut dag, vec![Col::ITER1]);
        let j = dag.add(Op::EquiJoin {
            l,
            r,
            lcol: Col::ITER,
            rcol: Col::ITER1,
        });
        let plan = lower(&dag, j, true);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.root as usize, plan.len() - 1);
        for (i, op) in plan.ops.iter().enumerate() {
            let args = match op {
                PhysOp::Op { args, .. } => args.clone(),
                PhysOp::Fused { input, .. } => vec![*input],
            };
            assert!(args.iter().all(|&a| (a as usize) < i), "slot {i} args");
        }
    }

    #[test]
    fn fuses_single_consumer_chains() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITEM1, Col::ITEM2]);
        let f = dag.add(Op::Fun {
            input: l,
            new: Col::RES,
            kind: FunKind::Lt,
            args: vec![Col::ITEM1, Col::ITEM2],
        });
        let s = dag.add(Op::Select {
            input: f,
            col: Col::RES,
        });
        let p = dag.add(Op::Project {
            input: s,
            cols: vec![(Col::ITEM, Col::ITEM1)],
        });
        let plan = lower(&dag, p, true);
        // lit + one fused chain of three.
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fused_chains, 1);
        assert_eq!(plan.fused_ops, 3);
        let PhysOp::Fused { steps, members, .. } = &plan.ops[1] else {
            panic!("expected fused chain, got {:?}", plan.ops[1]);
        };
        assert_eq!(members, &[f, s, p]);
        assert!(matches!(steps[0], FuseStep::Fun { .. }));
        assert!(matches!(steps[1], FuseStep::Select { .. }));
        assert!(matches!(steps[2], FuseStep::Project { .. }));
        // The unfused lowering keeps every operator in its own slot.
        let flat = lower(&dag, p, false);
        assert_eq!(flat.len(), 4);
        assert_eq!(flat.fused_chains, 0);
    }

    #[test]
    fn shared_intermediates_break_chains() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITEM1, Col::ITEM2]);
        let f = dag.add(Op::Fun {
            input: l,
            new: Col::RES,
            kind: FunKind::Lt,
            args: vec![Col::ITEM1, Col::ITEM2],
        });
        let s = dag.add(Op::Select {
            input: f,
            col: Col::RES,
        });
        // `f` feeds both the select and a difference: two consumers, so
        // the f→s link must not fuse.
        let d = dag.add(Op::Difference {
            l: s,
            r: f,
            on: vec![(Col::RES, Col::RES)],
        });
        let plan = lower(&dag, d, true);
        assert_eq!(plan.fused_chains, 0);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn root_is_never_a_chain_interior() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITEM1, Col::ITEM2]);
        let f = dag.add(Op::Fun {
            input: l,
            new: Col::RES,
            kind: FunKind::Lt,
            args: vec![Col::ITEM1, Col::ITEM2],
        });
        // Evaluating `f` itself as the root must publish f's table.
        let plan = lower(&dag, f, true);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.ops[1].out_id(), f);
        // As a root, a single fusable op stays a plain slot.
        assert!(matches!(plan.ops[1], PhysOp::Op { .. }));
    }

    #[test]
    fn render_shows_fused_chains() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITEM1, Col::ITEM2]);
        let f = dag.add(Op::Fun {
            input: l,
            new: Col::RES,
            kind: FunKind::Lt,
            args: vec![Col::ITEM1, Col::ITEM2],
        });
        let s = dag.add(Op::Select {
            input: f,
            col: Col::RES,
        });
        let root = dag.add(Op::Distinct { input: s });
        let plan = lower(&dag, root, true);
        let text = plan.render(&dag);
        assert!(text.contains("fused[2 ops]"), "{text}");
        assert!(
            text.contains("1 fused chains covering 2 operators"),
            "{text}"
        );
    }
}
