//! Graphviz DOT rendering of plan DAGs — for eyeballing the counterparts
//! of the paper's Figures 6, 9 and 10.

use crate::col::Col;
use crate::dag::{Dag, OpId};
use crate::op::Op;
use std::fmt::Write;

/// Resolve a [`NodeTest`](exrquy_xml::NodeTest) to surface syntax using a
/// name-resolution function (e.g. backed by the session's
/// [`NamePool`](exrquy_xml::NamePool)).
pub fn test_to_string(
    test: &exrquy_xml::NodeTest,
    resolve: &dyn Fn(exrquy_xml::NameId) -> String,
) -> String {
    use exrquy_xml::NodeTest as T;
    match test {
        T::AnyKind => "node()".into(),
        T::Wildcard => "*".into(),
        T::Name(n) => resolve(*n),
        T::Text => "text()".into(),
        T::Comment => "comment()".into(),
        T::Pi(None) => "processing-instruction()".into(),
        T::Pi(Some(t)) => format!("processing-instruction({})", resolve(*t)),
        T::DocumentNode => "document-node()".into(),
        T::Element => "element()".into(),
    }
}

/// Like [`op_label`] but resolving node-test names through `resolve`.
pub fn op_label_named(op: &Op, resolve: &dyn Fn(exrquy_xml::NameId) -> String) -> String {
    match op {
        Op::Step { axis, test, .. } => {
            format!("⬡ {axis}::{}", test_to_string(test, resolve))
        }
        other => op_label(other),
    }
}

/// Like [`to_text`] but resolving node-test names through `resolve`.
pub fn to_text_named(
    dag: &Dag,
    root: OpId,
    resolve: &dyn Fn(exrquy_xml::NameId) -> String,
) -> String {
    let mut out = String::new();
    let mut seen = std::collections::HashSet::new();
    fn rec(
        dag: &Dag,
        id: OpId,
        depth: usize,
        seen: &mut std::collections::HashSet<OpId>,
        resolve: &dyn Fn(exrquy_xml::NameId) -> String,
        out: &mut String,
    ) {
        let _ = write!(
            out,
            "{}{} {}",
            "  ".repeat(depth),
            id,
            op_label_named(dag.op(id), resolve)
        );
        if !seen.insert(id) {
            out.push_str(" (shared)\n");
            return;
        }
        out.push('\n');
        for c in dag.op(id).children() {
            rec(dag, c, depth + 1, seen, resolve, out);
        }
    }
    rec(dag, root, 0, &mut seen, resolve, &mut out);
    out
}

/// Render the plan rooted at `root` as a DOT digraph.
pub fn to_dot(dag: &Dag, root: OpId, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph plan {{");
    let _ = writeln!(
        out,
        "  label={:?}; rankdir=BT; node [shape=box, fontsize=10];",
        title
    );
    for id in dag.topo_order(root) {
        let op = dag.op(id);
        let label = op_label(op);
        let color = match op {
            Op::RowNum { .. } => ", style=filled, fillcolor=\"#f4cccc\"",
            Op::RowId { .. } => ", style=filled, fillcolor=\"#d9ead3\"",
            Op::Step { .. } => ", style=filled, fillcolor=\"#cfe2f3\"",
            _ => "",
        };
        let _ = writeln!(out, "  n{} [label=\"{}\"{}];", id.0, label, color);
        for c in op.children() {
            let _ = writeln!(out, "  n{} -> n{};", c.0, id.0);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Compact one-line rendering of an operator (paper notation).
pub fn op_label(op: &Op) -> String {
    let cols = |cs: &[Col]| cs.iter().map(|c| c.name()).collect::<Vec<_>>().join(",");
    match op {
        Op::Lit { cols: cs, rows } => format!("{} ({} rows)", cols(cs), rows.len()),
        Op::Doc { url } => format!("doc {url}"),
        Op::Project { cols: cs, .. } => {
            let body = cs
                .iter()
                .map(|(n, s)| {
                    if n == s {
                        n.name()
                    } else {
                        format!("{}:{}", n.name(), s.name())
                    }
                })
                .collect::<Vec<_>>()
                .join(",");
            format!("π {body}")
        }
        Op::Select { col, .. } => format!("σ {col}"),
        Op::RowNum {
            new, order, part, ..
        } => {
            let ord = order
                .iter()
                .map(|k| {
                    if k.desc {
                        format!("{}↓", k.col)
                    } else {
                        k.col.name()
                    }
                })
                .collect::<Vec<_>>()
                .join(",");
            match part {
                Some(p) => format!("% {new}:⟨{ord}⟩‖{p}"),
                None => format!("% {new}:⟨{ord}⟩"),
            }
        }
        Op::RowId { new, .. } => format!("# {new}"),
        Op::Attach { col, value, .. } => format!("× {col}|{value}"),
        Op::Fun {
            new, kind, args, ..
        } => format!("{new}:{kind:?}({})", cols(args)),
        Op::Aggr {
            kind, new, part, ..
        } => match part {
            Some(p) => format!("{kind:?} {new}‖{p}"),
            None => format!("{kind:?} {new}"),
        },
        Op::Distinct { .. } => "δ".into(),
        Op::Step { axis, test, .. } => format!("⬡ {axis}::{test:?}"),
        Op::Cross { .. } => "×".into(),
        Op::EquiJoin { lcol, rcol, .. } => format!("⋈ {lcol}={rcol}"),
        Op::ThetaJoin { pred, .. } => {
            let body = pred
                .iter()
                .map(|(l, k, r)| format!("{l}{k:?}{r}"))
                .collect::<Vec<_>>()
                .join("∧");
            format!("⋈θ {body}")
        }
        Op::Union { .. } => "∪̇".into(),
        Op::Difference { on, .. } => {
            let body = on
                .iter()
                .map(|(l, r)| format!("{l}={r}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("\\\\ {body}")
        }
        Op::Element { .. } => "elem".into(),
        Op::Attr { .. } => "attr".into(),
        Op::TextNode { .. } => "text".into(),
        Op::Range { lo, hi, new, .. } => format!("{new}:range({lo},{hi})"),
        Op::Serialize { .. } => "serialize".into(),
        Op::Sort { keys, .. } => format!("sort ⟨{}⟩", cols(keys)),
        Op::Fanout { shard, lo, hi } => format!("fanout s{shard} [{lo},{hi})"),
        Op::ShardUnion { parts } => format!("∪̂ ({})", parts.len()),
    }
}

/// Pretty-print a plan as an indented tree (shared nodes marked).
pub fn to_text(dag: &Dag, root: OpId) -> String {
    let mut out = String::new();
    let mut seen = std::collections::HashSet::new();
    fn rec(
        dag: &Dag,
        id: OpId,
        depth: usize,
        seen: &mut std::collections::HashSet<OpId>,
        out: &mut String,
    ) {
        let _ = write!(out, "{}{} {}", "  ".repeat(depth), id, op_label(dag.op(id)));
        if !seen.insert(id) {
            out.push_str(" (shared)\n");
            return;
        }
        out.push('\n');
        for c in dag.op(id).children() {
            rec(dag, c, depth + 1, seen, out);
        }
    }
    rec(dag, root, 0, &mut seen, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AValue;

    #[test]
    fn dot_contains_all_reachable_nodes() {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        let a = dag.add(Op::Attach {
            input: l,
            col: Col::ITEM,
            value: AValue::str("x"),
        });
        let dot = to_dot(&dag, a, "test");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0"));
        assert!(dot.contains("n1"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn text_marks_shared_nodes() {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        let a = dag.add(Op::Attach {
            input: l,
            col: Col::ITEM,
            value: AValue::Int(1),
        });
        let c = dag.add(Op::Difference {
            l: a,
            r: a,
            on: vec![(Col::ITER, Col::ITER)],
        });
        let txt = to_text(&dag, c);
        // `a` appears twice, second time marked shared.
        assert_eq!(txt.matches("(shared)").count(), 1);
    }
}
