//! Minimized structural diffing of two plans, used by the differential
//! oracle to explain *where* an optimized plan departs from its reference
//! when their results diverge.
//!
//! The diff is deliberately shallow: a lockstep depth-first walk of both
//! plans that records the path to the first mismatch on each branch and
//! then stops descending. A full tree diff of two 200-operator plans is
//! unreadable; the first structural departure per branch is what a human
//! needs to start debugging a rewrite.

use crate::dag::{Dag, OpId};
use crate::stats::PlanStats;
use std::collections::HashSet;
use std::fmt;

/// Cap on recorded divergences — beyond this the plans are simply
/// "very different" and more entries add noise, not signal.
const MAX_DIVERGENCES: usize = 8;

/// Result of diffing two plans.
#[derive(Debug, Clone, Default)]
pub struct PlanDiff {
    /// Census of the left plan.
    pub left: PlanStats,
    /// Census of the right plan.
    pub right: PlanStats,
    /// Human-readable divergence records (path → what differs), minimized:
    /// one entry per branch where the plans first depart, capped at
    /// [`MAX_DIVERGENCES`].
    pub divergences: Vec<String>,
}

impl PlanDiff {
    /// True when the walk found no structural difference.
    pub fn is_structurally_equal(&self) -> bool {
        self.divergences.is_empty()
    }
}

impl fmt::Display for PlanDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "left:  {}", self.left)?;
        writeln!(f, "right: {}", self.right)?;
        if self.divergences.is_empty() {
            write!(f, "plans are structurally identical")
        } else {
            write!(f, "first structural divergences:")?;
            for d in &self.divergences {
                write!(f, "\n  {d}")?;
            }
            Ok(())
        }
    }
}

/// Diff the plan rooted at `ra` in `a` against the plan rooted at `rb` in
/// `b`. The two roots may live in different DAGs (the oracle compiles each
/// arm separately).
pub fn plan_diff(a: &Dag, ra: OpId, b: &Dag, rb: OpId) -> PlanDiff {
    let mut diff = PlanDiff {
        left: PlanStats::of(a, ra),
        right: PlanStats::of(b, rb),
        divergences: Vec::new(),
    };
    // Lockstep pairs already visited — shared subplans would otherwise be
    // re-reported once per parent.
    let mut seen: HashSet<(OpId, OpId)> = HashSet::new();
    let mut stack: Vec<(OpId, OpId, String)> = vec![(ra, rb, "root".to_string())];
    while let Some((la, lb, path)) = stack.pop() {
        if diff.divergences.len() >= MAX_DIVERGENCES {
            diff.divergences
                .push("… (further divergences elided)".to_string());
            break;
        }
        if !seen.insert((la, lb)) {
            continue;
        }
        let (oa, ob) = (a.op(la), b.op(lb));
        let (ka, kb) = (oa.kind_name(), ob.kind_name());
        if ka != kb {
            diff.divergences
                .push(format!("{path}: `{ka}` ({la}) vs `{kb}` ({lb})"));
            continue; // minimized: do not descend past a kind mismatch
        }
        let (ca, cb) = (oa.children(), ob.children());
        if ca.len() != cb.len() {
            diff.divergences.push(format!(
                "{path}: `{ka}` arity {} ({la}) vs {} ({lb})",
                ca.len(),
                cb.len()
            ));
            continue;
        }
        for (i, (xa, xb)) in ca.iter().zip(cb.iter()).enumerate() {
            stack.push((*xa, *xb, format!("{path}/{ka}.{i}")));
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::col::Col;
    use crate::op::{Op, SortKey};
    use crate::value::AValue;

    fn base(dag: &mut Dag) -> OpId {
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        dag.add(Op::Attach {
            input: l,
            col: Col::ITEM,
            value: AValue::Int(7),
        })
    }

    #[test]
    fn identical_plans_have_no_divergence() {
        let mut a = Dag::new();
        let ra = base(&mut a);
        let mut b = Dag::new();
        let rb = base(&mut b);
        let d = plan_diff(&a, ra, &b, rb);
        assert!(d.is_structurally_equal());
        assert_eq!(d.left, d.right);
        assert!(d.to_string().contains("structurally identical"));
    }

    #[test]
    fn kind_mismatch_is_reported_once_and_walk_stops() {
        // Left numbers with a sorting %, right with an arbitrary #: the
        // paper's central rewrite, and exactly what the oracle needs the
        // diff to point at.
        let mut a = Dag::new();
        let ia = base(&mut a);
        let ra = a.add(Op::RowNum {
            input: ia,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: None,
        });
        let mut b = Dag::new();
        let ib = base(&mut b);
        let rb = b.add(Op::RowId {
            input: ib,
            new: Col::POS,
        });
        let d = plan_diff(&a, ra, &b, rb);
        assert_eq!(d.divergences.len(), 1);
        assert!(d.divergences[0].contains('%'));
        assert!(d.divergences[0].contains('#'));
        assert_eq!(d.left.rownums(), 1);
        assert_eq!(d.right.rowids(), 1);
    }

    #[test]
    fn divergence_path_names_the_branch() {
        let mut a = Dag::new();
        let ia = base(&mut a);
        let ra = a.add(Op::Select {
            input: ia,
            col: Col::ITEM,
        });
        let mut b = Dag::new();
        let lb = b.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        let ab = b.add(Op::Attach {
            input: lb,
            col: Col::ITEM,
            value: AValue::Int(9),
        });
        let rb = b.add(Op::Select {
            input: ab,
            col: Col::ITEM,
        });
        // Roots agree (σ over attach over lit) but the attach payload
        // differs; kind/arity walk alone cannot see payload differences,
        // so this diff is empty — the oracle relies on result comparison
        // for value-level divergence and on the diff only for structure.
        let d = plan_diff(&a, ra, &b, rb);
        assert!(d.is_structurally_equal());
    }
}
