//! The plan DAG: an interning arena of [`Op`]s with schema inference and
//! structural validation.
//!
//! Interning (hash-consing) means structurally identical subplans are
//! represented once; Pathfinder-emitted code "contains significant sharing
//! opportunities" (§3) and the plan-size numbers the paper reports (19
//! operators for Q6, 235→141 for Q11) count DAG nodes, not tree nodes.

use crate::col::Col;
use crate::op::Op;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Handle to an interned operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Error raised when an operator's inputs do not provide the columns it
/// needs (a compiler bug; surfaced eagerly at plan construction).
#[derive(Debug, Clone)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

/// Interning arena for plan operators.
#[derive(Debug, Default, Clone)]
pub struct Dag {
    ops: Vec<Op>,
    schemas: Vec<Vec<Col>>,
    intern: HashMap<Op, OpId>,
    next_col: u32,
}

impl Dag {
    /// Create an empty DAG.
    pub fn new() -> Self {
        Dag {
            ops: Vec::new(),
            schemas: Vec::new(),
            intern: HashMap::new(),
            next_col: Col::FIRST_FRESH,
        }
    }

    /// Allocate a fresh column name, distinct from every other column in
    /// this DAG.
    pub fn fresh_col(&mut self) -> Col {
        let c = Col(self.next_col);
        self.next_col += 1;
        c
    }

    /// Intern `op`, validating its schema. Panics on schema errors — these
    /// are compiler bugs, not user errors (see [`try_add`](Self::try_add)).
    pub fn add(&mut self, op: Op) -> OpId {
        self.try_add(op).expect("malformed plan operator")
    }

    /// Intern `op`, validating that its inputs provide the columns it
    /// consumes and that its output columns are unambiguous.
    pub fn try_add(&mut self, op: Op) -> Result<OpId, SchemaError> {
        if let Some(&id) = self.intern.get(&op) {
            return Ok(id);
        }
        let schema = self.infer_schema(&op)?;
        let id = OpId(self.ops.len() as u32);
        self.ops.push(op.clone());
        self.schemas.push(schema);
        self.intern.insert(op, id);
        Ok(id)
    }

    /// The operator behind `id`.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.0 as usize]
    }

    /// Output columns of `id`.
    pub fn schema(&self, id: OpId) -> &[Col] {
        &self.schemas[id.0 as usize]
    }

    /// Number of interned operators (over the DAG's lifetime — includes
    /// nodes no longer reachable from any root).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operator was interned yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All operators reachable from `root`.
    pub fn reachable(&self, root: OpId) -> HashSet<OpId> {
        let mut seen = HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend(self.op(id).children());
            }
        }
        seen
    }

    /// Reachable operators from `root` in topological order (children
    /// before parents).
    pub fn topo_order(&self, root: OpId) -> Vec<OpId> {
        let mut order = Vec::new();
        let mut state: HashMap<OpId, bool> = HashMap::new(); // false=open, true=done
        let mut stack = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                if state.get(&id) != Some(&true) {
                    state.insert(id, true);
                    order.push(id);
                }
                continue;
            }
            if state.contains_key(&id) {
                continue;
            }
            state.insert(id, false);
            stack.push((id, true));
            for c in self.op(id).children() {
                if state.get(&c) != Some(&true) {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Structurally validate the whole plan rooted at `root`: every
    /// reachable operator must reference only already-interned children
    /// and its stored schema must match what [`try_add`](Self::try_add)
    /// would infer for it today. `add`/`try_add` guarantee this at
    /// construction time; this re-check exists so the optimizer can
    /// verify after every rewrite round that no rule corrupted an
    /// operator it did not build itself.
    pub fn validate_plan(&self, root: OpId) -> Result<(), SchemaError> {
        if root.0 as usize >= self.ops.len() {
            return Err(SchemaError(format!(
                "root {root} out of bounds (dag has {} ops)",
                self.ops.len()
            )));
        }
        for id in self.topo_order(root) {
            let op = self.op(id);
            for c in op.children() {
                // Interning appends, so a well-formed operator's children
                // always have strictly smaller ids (the DAG is acyclic by
                // construction).
                if c >= id {
                    return Err(SchemaError(format!(
                        "{id} ({}): child {c} does not precede its parent",
                        op.kind_name()
                    )));
                }
            }
            let inferred = self
                .infer_schema(op)
                .map_err(|e| SchemaError(format!("{id} ({}): {}", op.kind_name(), e.0)))?;
            if inferred != self.schemas[id.0 as usize] {
                return Err(SchemaError(format!(
                    "{id} ({}): stored schema diverges from inferred schema",
                    op.kind_name()
                )));
            }
        }
        Ok(())
    }

    fn has(&self, id: OpId, col: Col) -> bool {
        self.schema(id).contains(&col)
    }

    fn require(&self, id: OpId, col: Col, ctx: &str) -> Result<(), SchemaError> {
        if self.has(id, col) {
            Ok(())
        } else {
            Err(SchemaError(format!(
                "{ctx}: input {id} lacks column `{col}` (schema: {})",
                self.schema(id)
                    .iter()
                    .map(|c| c.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
    }

    fn infer_schema(&self, op: &Op) -> Result<Vec<Col>, SchemaError> {
        let dup_check = |cols: &[Col], ctx: &str| -> Result<(), SchemaError> {
            let mut seen = HashSet::new();
            for c in cols {
                if !seen.insert(*c) {
                    return Err(SchemaError(format!("{ctx}: duplicate output column `{c}`")));
                }
            }
            Ok(())
        };
        let extend = |input: OpId, new: Col, ctx: &str| -> Result<Vec<Col>, SchemaError> {
            let mut s = self.schema(input).to_vec();
            if s.contains(&new) {
                return Err(SchemaError(format!(
                    "{ctx}: new column `{new}` already present in input"
                )));
            }
            s.push(new);
            Ok(s)
        };
        match op {
            Op::Lit { cols, rows } => {
                dup_check(cols, "lit")?;
                for r in rows {
                    if r.len() != cols.len() {
                        return Err(SchemaError("lit: row arity mismatch".into()));
                    }
                }
                Ok(cols.clone())
            }
            Op::Doc { .. } => Ok(vec![Col::ITEM]),
            Op::Project { input, cols } => {
                for (_, src) in cols {
                    self.require(*input, *src, "π")?;
                }
                let out: Vec<Col> = cols.iter().map(|(n, _)| *n).collect();
                dup_check(&out, "π")?;
                Ok(out)
            }
            Op::Select { input, col } => {
                self.require(*input, *col, "σ")?;
                Ok(self.schema(*input).to_vec())
            }
            Op::RowNum {
                input,
                new,
                order,
                part,
            } => {
                for k in order {
                    self.require(*input, k.col, "%")?;
                }
                if let Some(p) = part {
                    self.require(*input, *p, "%")?;
                }
                extend(*input, *new, "%")
            }
            Op::RowId { input, new } => extend(*input, *new, "#"),
            Op::Attach { input, col, .. } => extend(*input, *col, "attach"),
            Op::Fun {
                input, new, args, ..
            } => {
                for a in args {
                    self.require(*input, *a, "fun")?;
                }
                extend(*input, *new, "fun")
            }
            Op::Aggr {
                input,
                new,
                arg,
                part,
                ..
            } => {
                if let Some(a) = arg {
                    self.require(*input, *a, "aggr")?;
                }
                if let Some(p) = part {
                    self.require(*input, *p, "aggr")?;
                    if p == new {
                        return Err(SchemaError("aggr: result column shadows group".into()));
                    }
                    Ok(vec![*p, *new])
                } else {
                    Ok(vec![*new])
                }
            }
            Op::Distinct { input } => Ok(self.schema(*input).to_vec()),
            Op::Sort { input, keys } => {
                if keys.is_empty() {
                    return Err(SchemaError("sort: no key columns".into()));
                }
                for k in keys {
                    self.require(*input, *k, "sort")?;
                }
                Ok(self.schema(*input).to_vec())
            }
            Op::Step { input, .. } => {
                self.require(*input, Col::ITER, "⬡")?;
                self.require(*input, Col::ITEM, "⬡")?;
                Ok(vec![Col::ITER, Col::ITEM])
            }
            Op::Cross { l, r } => {
                let mut s = self.schema(*l).to_vec();
                for c in self.schema(*r) {
                    if s.contains(c) {
                        return Err(SchemaError(format!("×: overlapping column `{c}`")));
                    }
                    s.push(*c);
                }
                Ok(s)
            }
            Op::EquiJoin { l, r, lcol, rcol } => {
                self.require(*l, *lcol, "⋈")?;
                self.require(*r, *rcol, "⋈")?;
                let mut s = self.schema(*l).to_vec();
                for c in self.schema(*r) {
                    if s.contains(c) {
                        return Err(SchemaError(format!("⋈: overlapping column `{c}`")));
                    }
                    s.push(*c);
                }
                Ok(s)
            }
            Op::ThetaJoin { l, r, pred } => {
                for (lc, k, rc) in pred {
                    if !k.is_comparison() {
                        return Err(SchemaError("⋈θ: predicate must be a comparison".into()));
                    }
                    self.require(*l, *lc, "⋈θ")?;
                    self.require(*r, *rc, "⋈θ")?;
                }
                let mut s = self.schema(*l).to_vec();
                for c in self.schema(*r) {
                    if s.contains(c) {
                        return Err(SchemaError(format!("⋈θ: overlapping column `{c}`")));
                    }
                    s.push(*c);
                }
                Ok(s)
            }
            Op::Union { l, r } => {
                let sl = self.schema(*l);
                let sr = self.schema(*r);
                let set_l: HashSet<Col> = sl.iter().copied().collect();
                let set_r: HashSet<Col> = sr.iter().copied().collect();
                if set_l != set_r {
                    return Err(SchemaError(format!(
                        "∪̇: column sets differ ({} vs {})",
                        sl.iter().map(|c| c.name()).collect::<Vec<_>>().join(","),
                        sr.iter().map(|c| c.name()).collect::<Vec<_>>().join(",")
                    )));
                }
                Ok(sl.to_vec())
            }
            Op::Difference { l, r, on } => {
                if on.is_empty() {
                    return Err(SchemaError("\\: empty key".into()));
                }
                for (lc, rc) in on {
                    self.require(*l, *lc, "\\")?;
                    self.require(*r, *rc, "\\")?;
                }
                Ok(self.schema(*l).to_vec())
            }
            Op::Element { names, content } => {
                self.require(*names, Col::ITER, "elem")?;
                self.require(*names, Col::ITEM, "elem")?;
                self.require(*content, Col::ITER, "elem")?;
                self.require(*content, Col::POS, "elem")?;
                self.require(*content, Col::ITEM, "elem")?;
                Ok(vec![Col::ITER, Col::ITEM])
            }
            Op::Attr { names, values } => {
                self.require(*names, Col::ITER, "attr")?;
                self.require(*names, Col::ITEM, "attr")?;
                self.require(*values, Col::ITER, "attr")?;
                self.require(*values, Col::ITEM, "attr")?;
                Ok(vec![Col::ITER, Col::ITEM])
            }
            Op::TextNode { content } => {
                self.require(*content, Col::ITER, "text")?;
                self.require(*content, Col::ITEM, "text")?;
                Ok(vec![Col::ITER, Col::ITEM])
            }
            Op::Range { input, lo, hi, new } => {
                self.require(*input, *lo, "range")?;
                self.require(*input, *hi, "range")?;
                extend(*input, *new, "range")
            }
            Op::Serialize { input } => {
                self.require(*input, Col::POS, "serialize")?;
                self.require(*input, Col::ITEM, "serialize")?;
                Ok(self.schema(*input).to_vec())
            }
            Op::Fanout { lo, hi, .. } => {
                if lo > hi {
                    return Err(SchemaError("fanout: inverted fragment range".into()));
                }
                Ok(vec![Col::POS, Col::ITEM])
            }
            Op::ShardUnion { parts } => {
                let first = parts
                    .first()
                    .ok_or_else(|| SchemaError("∪̂: no parts".into()))?;
                let s0 = self.schema(*first);
                let set0: HashSet<Col> = s0.iter().copied().collect();
                for p in &parts[1..] {
                    let sp = self.schema(*p);
                    let setp: HashSet<Col> = sp.iter().copied().collect();
                    if set0 != setp {
                        return Err(SchemaError(format!(
                            "∪̂: column sets differ ({} vs {})",
                            s0.iter().map(|c| c.name()).collect::<Vec<_>>().join(","),
                            sp.iter().map(|c| c.name()).collect::<Vec<_>>().join(",")
                        )));
                    }
                }
                Ok(s0.to_vec())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::SortKey;
    use crate::value::AValue;

    fn lit1(dag: &mut Dag) -> OpId {
        dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        })
    }

    #[test]
    fn interning_shares_identical_subplans() {
        let mut dag = Dag::new();
        let a = lit1(&mut dag);
        let b = lit1(&mut dag);
        assert_eq!(a, b);
        let p1 = dag.add(Op::Attach {
            input: a,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let p2 = dag.add(Op::Attach {
            input: b,
            col: Col::POS,
            value: AValue::Int(1),
        });
        assert_eq!(p1, p2);
        assert_eq!(dag.len(), 2);
    }

    #[test]
    fn schema_inference_chains() {
        let mut dag = Dag::new();
        let l = lit1(&mut dag);
        let a = dag.add(Op::Attach {
            input: l,
            col: Col::ITEM,
            value: AValue::Int(7),
        });
        assert_eq!(dag.schema(a), &[Col::ITER, Col::ITEM]);
        let r = dag.add(Op::RowNum {
            input: a,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        assert_eq!(dag.schema(r), &[Col::ITER, Col::ITEM, Col::POS]);
        let p = dag.add(Op::Project {
            input: r,
            cols: vec![(Col::ITER, Col::ITER), (Col::POS1, Col::POS)],
        });
        assert_eq!(dag.schema(p), &[Col::ITER, Col::POS1]);
    }

    #[test]
    fn schema_errors_are_caught() {
        let mut dag = Dag::new();
        let l = lit1(&mut dag);
        // Selecting on a missing column is rejected.
        assert!(dag
            .try_add(Op::Select {
                input: l,
                col: Col::ITEM
            })
            .is_err());
        // Attaching an existing column is rejected.
        assert!(dag
            .try_add(Op::Attach {
                input: l,
                col: Col::ITER,
                value: AValue::Int(0)
            })
            .is_err());
        // Union with differing schemas is rejected.
        let other = dag.add(Op::Lit {
            cols: vec![Col::POS],
            rows: vec![],
        });
        assert!(dag.try_add(Op::Union { l, r: other }).is_err());
    }

    #[test]
    fn topo_order_visits_children_first() {
        let mut dag = Dag::new();
        let l = lit1(&mut dag);
        let a = dag.add(Op::Attach {
            input: l,
            col: Col::ITEM,
            value: AValue::Int(7),
        });
        let b = dag.add(Op::Attach {
            input: l,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let _ = b;
        let order = dag.topo_order(a);
        assert_eq!(order, vec![l, a]);
        // Joining two inputs that both carry `iter` requires a rename first
        // (the paper's plans show π iter1:iter before ⋈ iter=bind).
        assert!(dag
            .try_add(Op::EquiJoin {
                l: a,
                r: b,
                lcol: Col::ITER,
                rcol: Col::ITER,
            })
            .is_err());
    }

    #[test]
    fn validate_plan_accepts_well_formed_plans() {
        let mut dag = Dag::new();
        let l = lit1(&mut dag);
        let a = dag.add(Op::Attach {
            input: l,
            col: Col::ITEM,
            value: AValue::Int(7),
        });
        let r = dag.add(Op::RowNum {
            input: a,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        assert!(dag.validate_plan(r).is_ok());
        // An out-of-bounds root is rejected, not a panic.
        assert!(dag.validate_plan(OpId(999)).is_err());
    }

    #[test]
    fn fresh_cols_are_unique() {
        let mut dag = Dag::new();
        let c1 = dag.fresh_col();
        let c2 = dag.fresh_col();
        assert_ne!(c1, c2);
        assert!(c1.0 >= Col::FIRST_FRESH);
    }
}
