//! The plan rewriter: applies column dependency analysis, `%`-weakening
//! and step merging to a fixpoint.

use crate::order::{rownum_is_presorted, sort_orders, OrderMap};
use crate::props::{keys, properties, ColProp, KeyMap, PropMap};
use crate::required::required_columns;
use crate::rules::RuleSet;
use exrquy_algebra::{AValue, Col, Dag, Op, OpId, PlanStats};
use exrquy_xml::{Axis, NodeTest};
use std::collections::{BTreeSet, HashMap};

/// Which rewrites to run. The defaults correspond to the paper's modified
/// compiler; switching individual passes off gives the ablation
/// configurations of the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptOptions {
    /// §4.1 column dependency analysis: bypass dead `%`/`#`/attach/fun,
    /// prune projections.
    pub column_dependency: bool,
    /// §7 property-based weakening: drop constant/arbitrary sort criteria,
    /// turn criterion-free `%` into `#`.
    pub weaken_rownum: bool,
    /// §5 step merging: `⬡child::nt ∘ ⬡descendant-or-self::node()` ⇒
    /// `⬡descendant::nt`.
    pub merge_steps: bool,
    /// Physical order inference (\[15\], cf. §6): drop the sort criteria
    /// of a `%` whose input the engine provably emits presorted. Off by
    /// default — the paper's contribution is purely logical; this is the
    /// orthogonal extension, exercised by the ablation benches.
    pub physical_order: bool,
    /// Statistics-driven cost-based planning (see [`crate::cost`]): join
    /// graph isolation + cardinality-estimated join reordering, and
    /// selectivity-ordered σ chains. Runs as a separate pass after the
    /// rule rewriter (it needs catalog statistics the rewriter does not
    /// have); this flag rides the plan-cache fingerprint so costed and
    /// rule-only plans never alias in the cache.
    pub cost: bool,
    /// Individually disabled named rules (see [`crate::rules::RULE_NAMES`])
    /// — finer-grained than the pass flags above; a rule fires only when
    /// its pass is enabled *and* its name is not in this set. The
    /// differential attribution harness uses this to replay a diverging
    /// query with one suspect rewrite switched off at a time.
    pub disabled_rules: RuleSet,
    /// Fixpoint bound.
    pub max_rounds: usize,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            column_dependency: true,
            weaken_rownum: true,
            merge_steps: true,
            physical_order: false,
            cost: true,
            disabled_rules: RuleSet::empty(),
            max_rounds: 8,
        }
    }
}

impl OptOptions {
    /// Everything off — the baseline compiler.
    pub fn disabled() -> Self {
        OptOptions {
            column_dependency: false,
            weaken_rownum: false,
            merge_steps: false,
            physical_order: false,
            cost: false,
            disabled_rules: RuleSet::empty(),
            max_rounds: 1,
        }
    }

    /// This configuration with one more named rule disabled.
    pub fn without_rule(mut self, rule: &str) -> Self {
        self.disabled_rules = self.disabled_rules.with(rule);
        self
    }
}

/// One named rule application recorded in the rewrite trace: in `round`,
/// `rule` rewrote the operator `before` into `after`.
#[derive(Debug, Clone)]
pub struct RuleApplication {
    pub round: usize,
    pub rule: &'static str,
    pub before: OpId,
    pub after: OpId,
}

/// The optimizer produced an ill-formed plan (always an optimizer bug,
/// never a user error): names the rule, the operator it was rewriting,
/// that operator's kind, and the fixpoint round — enough to replay the
/// failure from the rewrite trace.
#[derive(Debug, Clone)]
pub struct OptError {
    /// The rule whose output failed validation.
    pub rule: &'static str,
    /// The (pre-rewrite) operator the rule was applied to.
    pub op: OpId,
    /// Kind name of the operator the rule tried to intern.
    pub kind: &'static str,
    /// Fixpoint round (0-based) in which the rule fired.
    pub round: usize,
    /// The underlying schema/structure violation.
    pub message: String,
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "round {}: rule `{}` on {} produced an ill-formed `{}` operator: {}",
            self.round, self.rule, self.op, self.kind, self.message
        )
    }
}

impl std::error::Error for OptError {}

/// Before/after accounting of one optimization run, plus the full rewrite
/// trace (every named rule application, in firing order).
#[derive(Debug, Clone)]
pub struct OptReport {
    pub rounds: usize,
    pub before: PlanStats,
    pub after: PlanStats,
    pub trace: Vec<RuleApplication>,
}

impl OptReport {
    /// Rule applications of a given rule name (trace query helper).
    pub fn fired(&self, rule: &str) -> usize {
        self.trace.iter().filter(|a| a.rule == rule).count()
    }
}

/// Optimize the plan rooted at `root`; returns the new root and a report.
/// New operators are interned into the same arena (old ones simply become
/// unreachable). Panics if a rewrite produces an ill-formed plan — callers
/// that want the typed error use [`try_optimize`].
pub fn optimize(dag: &mut Dag, root: OpId, opts: &OptOptions) -> (OpId, OptReport) {
    match try_optimize(dag, root, opts) {
        Ok(res) => res,
        Err(e) => panic!("optimizer produced an ill-formed plan: {e}"),
    }
}

/// Like [`optimize`], but every rule application is schema-validated the
/// moment it interns its result (via [`Dag::try_add`]) and the whole plan
/// is re-validated ([`Dag::validate_plan`]) after every fixpoint round.
/// An ill-formed rewrite surfaces as a typed [`OptError`] naming the rule
/// and operator instead of a panic deep inside the arena.
pub fn try_optimize(
    dag: &mut Dag,
    root: OpId,
    opts: &OptOptions,
) -> Result<(OpId, OptReport), OptError> {
    try_optimize_with(dag, root, opts, None)
}

/// [`try_optimize`] with an optional *rule perturbation*: when `perturb`
/// names a rule, that rule is applied in a deliberately unsound variant
/// (currently supported for `weaken-criteria`, which then drops *every*
/// sort criterion instead of only the provably irrelevant ones). This is
/// the optimizer's arm of the `rule-perturb` failpoint — a planted,
/// deterministic optimizer bug that the differential oracle must catch
/// and the attribution pass must pin on the named rule. A perturbed rule
/// still honors [`OptOptions::disabled_rules`], which is exactly what
/// lets attribution make the planted divergence vanish.
pub fn try_optimize_with(
    dag: &mut Dag,
    root: OpId,
    opts: &OptOptions,
    perturb: Option<&str>,
) -> Result<(OpId, OptReport), OptError> {
    let before = PlanStats::of(dag, root);
    let mut cur = root;
    let mut rounds = 0;
    let mut trace = Vec::new();
    for round in 0..opts.max_rounds {
        let next = one_round(dag, cur, opts, perturb, round, &mut trace)?;
        rounds += 1;
        if next == cur {
            break;
        }
        dag.validate_plan(next).map_err(|e| OptError {
            rule: "fixpoint-round",
            op: next,
            kind: dag.op(next).kind_name(),
            round,
            message: e.0,
        })?;
        cur = next;
    }
    let after = PlanStats::of(dag, cur);
    Ok((
        cur,
        OptReport {
            rounds,
            before,
            after,
            trace,
        },
    ))
}

/// Per-round analysis results + trace sink, bundled so the per-operator
/// rewriter doesn't take nine arguments.
struct Ctx<'a> {
    req: HashMap<OpId, BTreeSet<Col>>,
    props: PropMap,
    orders: OrderMap,
    key_cols: KeyMap,
    opts: OptOptions,
    perturb: Option<&'a str>,
    round: usize,
    trace: &'a mut Vec<RuleApplication>,
}

impl Ctx<'_> {
    /// Record that `rule` rewrote `before` into `after`.
    fn fire(&mut self, rule: &'static str, before: OpId, after: OpId) {
        self.trace.push(RuleApplication {
            round: self.round,
            rule,
            before,
            after,
        });
    }

    /// May the named rule fire under the current options?
    fn on(&self, rule: &str) -> bool {
        !self.opts.disabled_rules.contains(rule)
    }

    /// Is the named rule armed for unsound perturbation (and not disabled)?
    fn perturbed(&self, rule: &str) -> bool {
        self.perturb == Some(rule) && self.on(rule)
    }
}

/// Intern a rewritten operator, converting a schema violation into a typed
/// [`OptError`] that names the rule and the operator being rewritten. This
/// is the per-rewrite validation hook: every rule's output passes through
/// here before it can reach the plan.
fn intern(
    dag: &mut Dag,
    ctx: &Ctx<'_>,
    rule: &'static str,
    old_id: OpId,
    op: Op,
) -> Result<OpId, OptError> {
    let kind = op.kind_name();
    dag.try_add(op).map_err(|e| OptError {
        rule,
        op: old_id,
        kind,
        round: ctx.round,
        message: e.0,
    })
}

fn one_round(
    dag: &mut Dag,
    root: OpId,
    opts: &OptOptions,
    perturb: Option<&str>,
    round: usize,
    trace: &mut Vec<RuleApplication>,
) -> Result<OpId, OptError> {
    let mut ctx = Ctx {
        req: required_columns(
            dag,
            root,
            opts.column_dependency && !opts.disabled_rules.contains("project-prune"),
        ),
        props: properties(dag, root),
        orders: if opts.physical_order {
            sort_orders(dag, root)
        } else {
            OrderMap::new()
        },
        key_cols: if opts.weaken_rownum {
            keys(dag, root)
        } else {
            KeyMap::new()
        },
        opts: *opts,
        perturb,
        round,
        trace,
    };
    let order = dag.topo_order(root);
    let mut memo: HashMap<OpId, OpId> = HashMap::new();
    for old_id in order {
        let old_op = dag.op(old_id).clone();
        let new_children: Vec<OpId> = old_op.children().iter().map(|c| memo[c]).collect();
        let new_id = rewrite_op(dag, &mut ctx, old_id, &old_op, &new_children)?;
        memo.insert(old_id, new_id);
    }
    Ok(memo[&root])
}

fn reqs(req: &HashMap<OpId, BTreeSet<Col>>, id: OpId) -> BTreeSet<Col> {
    req.get(&id).cloned().unwrap_or_default()
}

fn prop_of(props: &PropMap, id: OpId, col: Col) -> Option<&ColProp> {
    props.get(&id).and_then(|m| m.get(&col))
}

fn is_empty_lit(dag: &Dag, id: OpId) -> bool {
    matches!(dag.op(id), Op::Lit { rows, .. } if rows.is_empty())
}

/// Distribute a row-wise operator beneath a `∪̂`: rebuild it once per
/// shard part and re-union. Sound for operators that map each input row
/// independently (σ, π, fun, attach) and — because shard parts are
/// disjoint, *ascending* fragment ranges — for `⬡` and a single-row `×`,
/// where the shard-major concatenation commutes with the operator row
/// for row. Pushing is what lets the engine run steps (staircase joins)
/// shard-parallel: each `∪̂` part becomes an independent subplan.
///
/// Returns `Ok(None)` when `union_id` is not a `∪̂` or the rule is
/// disabled; the caller falls through to its ordinary rebuild.
fn push_below_shard_union(
    dag: &mut Dag,
    ctx: &mut Ctx<'_>,
    rule: &'static str,
    old_id: OpId,
    union_id: OpId,
    mut make: impl FnMut(OpId) -> Op,
) -> Result<Option<OpId>, OptError> {
    if !ctx.on(rule) {
        return Ok(None);
    }
    let Op::ShardUnion { parts } = dag.op(union_id).clone() else {
        return Ok(None);
    };
    let mut new_parts = Vec::with_capacity(parts.len());
    for p in parts {
        new_parts.push(intern(dag, ctx, rule, old_id, make(p))?);
    }
    let id = intern(dag, ctx, rule, old_id, Op::ShardUnion { parts: new_parts })?;
    ctx.fire(rule, old_id, id);
    Ok(Some(id))
}

fn rewrite_op(
    dag: &mut Dag,
    ctx: &mut Ctx<'_>,
    old_id: OpId,
    old_op: &Op,
    ch: &[OpId],
) -> Result<OpId, OptError> {
    let my_req = reqs(&ctx.req, old_id);
    let opts = ctx.opts;
    match old_op {
        // ---- operators that only add a column: bypass when dead
        Op::RowNum {
            new, order, part, ..
        } => {
            let old_input = old_op.children()[0];
            if opts.column_dependency && ctx.on("cda-bypass-rownum") && !my_req.contains(new) {
                ctx.fire("cda-bypass-rownum", old_id, ch[0]);
                return Ok(ch[0]);
            }
            let (mut order, mut part) = (order.clone(), *part);
            let mut rule: &'static str = "rebuild";
            if opts.weaken_rownum && ctx.on("weaken-criteria") {
                let (len0, part0) = (order.len(), part);
                // Drop constant criteria (sound: ties everywhere).
                order.retain(|k| {
                    !matches!(
                        prop_of(&ctx.props, old_input, k.col),
                        Some(ColProp::Const(_))
                    )
                });
                // §7: a globally unique criterion leaves no ties — later
                // criteria are never consulted and can be truncated.
                if let Some(ks) = ctx.key_cols.get(&old_input) {
                    if let Some(i) = order.iter().position(|k| ks.contains(&k.col)) {
                        order.truncate(i + 1);
                    }
                }
                // If every remaining criterion is arbitrary, the whole
                // order spec conveys nothing: drop it (§7).
                if !order.is_empty()
                    && order.iter().all(|k| {
                        matches!(
                            prop_of(&ctx.props, old_input, k.col),
                            Some(ColProp::Arbitrary)
                        )
                    })
                {
                    order.clear();
                }
                if ctx.perturbed("weaken-criteria") && !order.is_empty() {
                    // Planted bug (`rule-perturb:weaken-criteria`): treat
                    // *every* criterion as droppable — unsound whenever a
                    // real criterion remained, which is what the oracle
                    // must catch and attribution must pin on this rule.
                    order.clear();
                    part = None;
                }
                if let Some(p) = part {
                    if matches!(prop_of(&ctx.props, old_input, p), Some(ColProp::Const(_))) {
                        part = None;
                    }
                }
                if order.len() != len0 || part != part0 {
                    rule = "weaken-criteria";
                }
            }
            if opts.weaken_rownum
                && ctx.on("weaken-rownum-to-rowid")
                && order.is_empty()
                && part.is_none()
            {
                let id = intern(
                    dag,
                    ctx,
                    "weaken-rownum-to-rowid",
                    old_id,
                    Op::RowId {
                        input: ch[0],
                        new: *new,
                    },
                )?;
                // When criteria-weakening is what emptied the order
                // spec, record it too: attribution enumerates the
                // trace, and disabling `weaken-criteria` (not the
                // conversion) is what undoes the weakening.
                if rule == "weaken-criteria" {
                    ctx.fire("weaken-criteria", old_id, id);
                }
                ctx.fire("weaken-rownum-to-rowid", old_id, id);
                return Ok(id);
            }
            // [15]-style physical order: the engine already emits the
            // input presorted — the % numbers in one pass, no sort.
            // Constant columns constrain nothing and are ignored on both
            // sides of the prefix match.
            if opts.physical_order && ctx.on("physical-order") && !order.is_empty() {
                if let Some(input_order) = ctx.orders.get(&old_input) {
                    let is_const = |c: Col| {
                        matches!(prop_of(&ctx.props, old_input, c), Some(ColProp::Const(_)))
                    };
                    let filtered_input: Vec<Col> = input_order
                        .iter()
                        .copied()
                        .filter(|&c| !is_const(c))
                        .collect();
                    let filtered_order: Vec<exrquy_algebra::SortKey> =
                        order.iter().copied().filter(|k| !is_const(k.col)).collect();
                    let filtered_part = part.filter(|&p| !is_const(p));
                    if rownum_is_presorted(&filtered_input, &filtered_order, filtered_part) {
                        order.clear();
                        rule = "physical-order";
                    }
                }
            }
            let id = intern(
                dag,
                ctx,
                rule,
                old_id,
                Op::RowNum {
                    input: ch[0],
                    new: *new,
                    order,
                    part,
                },
            )?;
            if rule != "rebuild" {
                ctx.fire(rule, old_id, id);
            }
            Ok(id)
        }
        Op::RowId { new, .. } => {
            if opts.column_dependency && ctx.on("cda-bypass-rowid") && !my_req.contains(new) {
                ctx.fire("cda-bypass-rowid", old_id, ch[0]);
                return Ok(ch[0]);
            }
            intern(
                dag,
                ctx,
                "rebuild",
                old_id,
                Op::RowId {
                    input: ch[0],
                    new: *new,
                },
            )
        }
        Op::Attach { col, value, .. } => {
            if opts.column_dependency && ctx.on("cda-bypass-attach") && !my_req.contains(col) {
                ctx.fire("cda-bypass-attach", old_id, ch[0]);
                return Ok(ch[0]);
            }
            if let Some(id) =
                push_below_shard_union(dag, ctx, "shard-push-attach", old_id, ch[0], |p| {
                    Op::Attach {
                        input: p,
                        col: *col,
                        value: value.clone(),
                    }
                })?
            {
                return Ok(id);
            }
            intern(
                dag,
                ctx,
                "rebuild",
                old_id,
                Op::Attach {
                    input: ch[0],
                    col: *col,
                    value: value.clone(),
                },
            )
        }
        Op::Fun {
            new, kind, args, ..
        } => {
            if opts.column_dependency && ctx.on("cda-bypass-fun") && !my_req.contains(new) {
                ctx.fire("cda-bypass-fun", old_id, ch[0]);
                return Ok(ch[0]);
            }
            if let Some(id) =
                push_below_shard_union(dag, ctx, "shard-push-fun", old_id, ch[0], |p| Op::Fun {
                    input: p,
                    new: *new,
                    kind: *kind,
                    args: args.clone(),
                })?
            {
                return Ok(id);
            }
            intern(
                dag,
                ctx,
                "rebuild",
                old_id,
                Op::Fun {
                    input: ch[0],
                    new: *new,
                    kind: *kind,
                    args: args.clone(),
                },
            )
        }
        // ---- projections: prune & collapse
        Op::Project { cols, .. } => {
            let mut cols: Vec<(Col, Col)> = cols.clone();
            let mut pruned_any = false;
            if opts.column_dependency && ctx.on("project-prune") {
                let pruned: Vec<(Col, Col)> = cols
                    .iter()
                    .copied()
                    .filter(|(new, _)| my_req.contains(new))
                    .collect();
                if !pruned.is_empty() {
                    pruned_any = pruned.len() != cols.len();
                    cols = pruned;
                }
            }
            if pruned_any {
                ctx.fire("project-prune", old_id, old_id);
            }
            // Collapse π over π.
            if ctx.on("project-collapse") {
                if let Op::Project {
                    input: inner_input,
                    cols: inner_cols,
                } = dag.op(ch[0]).clone()
                {
                    let composed: Option<Vec<(Col, Col)>> = cols
                        .iter()
                        .map(|(new, src)| {
                            inner_cols
                                .iter()
                                .find(|(n, _)| n == src)
                                .map(|(_, inner_src)| (*new, *inner_src))
                        })
                        .collect();
                    if let Some(composed) = composed {
                        cols = composed;
                        let identity = cols.iter().all(|(n, s)| n == s)
                            && dag.schema(inner_input)
                                == cols.iter().map(|(n, _)| *n).collect::<Vec<_>>();
                        if identity && ctx.on("project-identity") {
                            ctx.fire("project-identity", old_id, inner_input);
                            return Ok(inner_input);
                        }
                        let id = intern(
                            dag,
                            ctx,
                            "project-collapse",
                            old_id,
                            Op::Project {
                                input: inner_input,
                                cols,
                            },
                        )?;
                        ctx.fire("project-collapse", old_id, id);
                        return Ok(id);
                    }
                }
            }
            // Identity projection removal.
            let identity = cols.iter().all(|(n, s)| n == s)
                && dag.schema(ch[0]) == cols.iter().map(|(n, _)| *n).collect::<Vec<_>>();
            if identity && ctx.on("project-identity") {
                ctx.fire("project-identity", old_id, ch[0]);
                return Ok(ch[0]);
            }
            if let Some(id) =
                push_below_shard_union(dag, ctx, "shard-push-project", old_id, ch[0], |p| {
                    Op::Project {
                        input: p,
                        cols: cols.clone(),
                    }
                })?
            {
                return Ok(id);
            }
            intern(
                dag,
                ctx,
                "rebuild",
                old_id,
                Op::Project { input: ch[0], cols },
            )
        }
        // ---- selections on known predicates
        Op::Select { col, .. } => {
            let old_input = old_op.children()[0];
            match prop_of(&ctx.props, old_input, *col) {
                Some(ColProp::Const(AValue::Bool(true))) if ctx.on("select-const-true") => {
                    ctx.fire("select-const-true", old_id, ch[0]);
                    Ok(ch[0])
                }
                Some(ColProp::Const(AValue::Bool(false))) if ctx.on("select-const-false") => {
                    let id = intern(
                        dag,
                        ctx,
                        "select-const-false",
                        old_id,
                        Op::Lit {
                            cols: dag.schema(ch[0]).to_vec(),
                            rows: vec![],
                        },
                    )?;
                    ctx.fire("select-const-false", old_id, id);
                    Ok(id)
                }
                _ => {
                    if let Some(id) =
                        push_below_shard_union(dag, ctx, "shard-push-select", old_id, ch[0], |p| {
                            Op::Select {
                                input: p,
                                col: *col,
                            }
                        })?
                    {
                        return Ok(id);
                    }
                    intern(
                        dag,
                        ctx,
                        "rebuild",
                        old_id,
                        Op::Select {
                            input: ch[0],
                            col: *col,
                        },
                    )
                }
            }
        }
        // ---- step merging (§5)
        Op::Step { axis, test, .. } => {
            if opts.merge_steps && ctx.on("merge-steps") && *axis == Axis::Child {
                if let Some(inner_input) = find_dos_step(dag, ch[0]) {
                    let id = intern(
                        dag,
                        ctx,
                        "merge-steps",
                        old_id,
                        Op::Step {
                            input: inner_input,
                            axis: Axis::Descendant,
                            test: *test,
                        },
                    )?;
                    ctx.fire("merge-steps", old_id, id);
                    return Ok(id);
                }
            }
            // Pushing a step beneath `∪̂` is sound only when `iter` is a
            // known constant across the union: a step never leaves its
            // fragment, shard parts cover disjoint ascending fragment
            // ranges, and with a single iteration the per-shard results
            // concatenate back into global document order. With varying
            // `iter` the parts would interleave by iteration and the
            // concatenation would no longer match the unsharded row order.
            if matches!(
                prop_of(&ctx.props, old_op.children()[0], Col::ITER),
                Some(ColProp::Const(_))
            ) {
                if let Some(id) =
                    push_below_shard_union(dag, ctx, "shard-push-step", old_id, ch[0], |p| {
                        Op::Step {
                            input: p,
                            axis: *axis,
                            test: *test,
                        }
                    })?
                {
                    return Ok(id);
                }
            }
            intern(
                dag,
                ctx,
                "rebuild",
                old_id,
                Op::Step {
                    input: ch[0],
                    axis: *axis,
                    test: *test,
                },
            )
        }
        // ---- structural simplifications
        Op::Distinct { .. } => {
            if ctx.on("distinct-dedup") {
                if let Op::Distinct { .. } = dag.op(ch[0]) {
                    ctx.fire("distinct-dedup", old_id, ch[0]);
                    return Ok(ch[0]);
                }
            }
            // §1/§4.2: a union of two steps over the *same* context with
            // provably disjoint name tests needs no duplicate elimination
            // ("obviously, the two steps yield disjoint results") — the δ
            // over ∪̇ disappears, leaving the bare concatenation of
            // Figure 10.
            if ctx.on("distinct-disjoint-union") {
                if let Op::Union { l, r } = *dag.op(ch[0]) {
                    if steps_disjoint(dag, l, r) {
                        ctx.fire("distinct-disjoint-union", old_id, ch[0]);
                        return Ok(ch[0]);
                    }
                }
            }
            intern(dag, ctx, "rebuild", old_id, Op::Distinct { input: ch[0] })
        }
        Op::Union { .. } => {
            let (l, r) = (ch[0], ch[1]);
            if ctx.on("union-empty-side") {
                if is_empty_lit(dag, l) {
                    let id = align_schema(dag, r, &my_req);
                    ctx.fire("union-empty-side", old_id, id);
                    return Ok(id);
                }
                if is_empty_lit(dag, r) {
                    let id = align_schema(dag, l, &my_req);
                    ctx.fire("union-empty-side", old_id, id);
                    return Ok(id);
                }
            }
            // Defensive alignment: column pruning may have left the two
            // sides with different column sets — project both to the
            // required set.
            let ls: BTreeSet<Col> = dag.schema(l).iter().copied().collect();
            let rs: BTreeSet<Col> = dag.schema(r).iter().copied().collect();
            if ls != rs && ctx.on("union-align-schema") {
                let common: BTreeSet<Col> = ls.intersection(&rs).copied().collect();
                let target: BTreeSet<Col> = if my_req.is_empty() {
                    common.clone()
                } else {
                    my_req.intersection(&common).copied().collect()
                };
                let target = if target.is_empty() { common } else { target };
                let lp = project_to(dag, ctx, l, &target)?;
                let rp = project_to(dag, ctx, r, &target)?;
                let id = intern(
                    dag,
                    ctx,
                    "union-align-schema",
                    old_id,
                    Op::Union { l: lp, r: rp },
                )?;
                ctx.fire("union-align-schema", old_id, id);
                return Ok(id);
            }
            intern(dag, ctx, "rebuild", old_id, Op::Union { l, r })
        }
        // ---- sharded collection scans (∪̂ of fanouts)
        Op::Cross { .. } => {
            let (l, r) = (ch[0], ch[1]);
            // `l × (A ∪̂ B) = (l × A) ∪̂ (l × B)`. Restricted to a
            // single-row literal left input (the constant outer loop of a
            // top-level `collection()` scan): with one left row the
            // distributed form replays the right-hand concatenation row
            // for row, so even `#`-observed physical order is preserved.
            if matches!(dag.op(l), Op::Lit { rows, .. } if rows.len() == 1) {
                if let Some(id) =
                    push_below_shard_union(dag, ctx, "shard-push-cross", old_id, r, |p| {
                        Op::Cross { l, r: p }
                    })?
                {
                    return Ok(id);
                }
            }
            intern(dag, ctx, "rebuild", old_id, Op::Cross { l, r })
        }
        Op::ShardUnion { .. } => {
            // A one-shard catalog compiles to `∪̂` of a single fanout —
            // the union is the identity and disappears, so unsharded
            // plans carry no union overhead at all.
            if ctx.on("shard-union-singleton") && ch.len() == 1 {
                ctx.fire("shard-union-singleton", old_id, ch[0]);
                return Ok(ch[0]);
            }
            intern(
                dag,
                ctx,
                "rebuild",
                old_id,
                Op::ShardUnion { parts: ch.to_vec() },
            )
        }
        // ---- default: rebuild with rewritten children
        other => intern(dag, ctx, "rebuild", old_id, other.with_children(ch)),
    }
}

/// Project `id` onto exactly `cols` (no-op when already exact).
fn project_to(
    dag: &mut Dag,
    ctx: &Ctx<'_>,
    id: OpId,
    cols: &BTreeSet<Col>,
) -> Result<OpId, OptError> {
    let schema: BTreeSet<Col> = dag.schema(id).iter().copied().collect();
    if &schema == cols {
        return Ok(id);
    }
    let list: Vec<(Col, Col)> = cols.iter().map(|&c| (c, c)).collect();
    intern(
        dag,
        ctx,
        "union-align-schema",
        id,
        Op::Project {
            input: id,
            cols: list,
        },
    )
}

/// When a union side disappears, make sure the surviving side exposes at
/// least the required columns in a deterministic layout.
fn align_schema(dag: &mut Dag, id: OpId, req: &BTreeSet<Col>) -> OpId {
    let schema: BTreeSet<Col> = dag.schema(id).iter().copied().collect();
    if req.is_empty() || !req.is_subset(&schema) {
        return id;
    }
    id
}

/// Are `l` and `r` step operators over the same context whose results are
/// provably disjoint (same axis, different element/attribute name tests)?
/// Step outputs are duplicate-free per iteration, so their union is too.
fn steps_disjoint(dag: &Dag, l: OpId, r: OpId) -> bool {
    match (dag.op(l), dag.op(r)) {
        (
            Op::Step {
                input: li,
                axis: la,
                test: NodeTest::Name(ln),
            },
            Op::Step {
                input: ri,
                axis: ra,
                test: NodeTest::Name(rn),
            },
        ) => li == ri && la == ra && ln != rn,
        _ => false,
    }
}

/// Walk through row-preserving `[iter,item]`-faithful operators (π keeping
/// `iter`/`item` unrenamed, δ) until a `⬡descendant-or-self::node()` is
/// found; return that step's input.
fn find_dos_step(dag: &Dag, mut id: OpId) -> Option<OpId> {
    loop {
        match dag.op(id) {
            Op::Project { input, cols } => {
                let iter_ok = cols.iter().any(|&(n, s)| n == Col::ITER && s == Col::ITER);
                let item_ok = cols.iter().any(|&(n, s)| n == Col::ITEM && s == Col::ITEM);
                if iter_ok && item_ok {
                    id = *input;
                } else {
                    return None;
                }
            }
            Op::Distinct { input } => id = *input,
            Op::Step {
                input,
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyKind,
            } => return Some(*input),
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_algebra::SortKey;

    fn lit(dag: &mut Dag, cols: Vec<Col>) -> OpId {
        dag.add(Op::Lit { cols, rows: vec![] })
    }

    /// Build the FN:UNORDERED pattern over an ordered step result:
    /// serialize(π(#pos(π iter,item(%pos(step)))))  — CDA must delete the %.
    #[test]
    fn cda_removes_overwritten_rownum() {
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITER, Col::ITEM]);
        let rn = dag.add(Op::RowNum {
            input: src,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let proj = dag.add(Op::Project {
            input: rn,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM)],
        });
        let hash = dag.add(Op::RowId {
            input: proj,
            new: Col::POS,
        });
        let root = dag.add(Op::Serialize { input: hash });
        let before = PlanStats::of(&dag, root);
        assert_eq!(before.rownums(), 1);
        let (new_root, report) = optimize(&mut dag, root, &OptOptions::default());
        let after = PlanStats::of(&dag, new_root);
        assert_eq!(after.rownums(), 0, "{after}");
        assert!(report.after.total < report.before.total);
    }

    #[test]
    fn weakening_turns_arbitrary_criteria_rownum_into_rowid() {
        // % pos1:⟨bind⟩ with bind from # — §7's endgame.
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITEM]);
        let h = dag.add(Op::RowId {
            input: src,
            new: Col::BIND,
        });
        let rn = dag.add(Op::RowNum {
            input: h,
            new: Col::POS,
            order: vec![SortKey::asc(Col::BIND)],
            part: None,
        });
        let proj = dag.add(Op::Project {
            input: rn,
            cols: vec![(Col::POS, Col::POS), (Col::ITEM, Col::ITEM)],
        });
        let root = dag.add(Op::Serialize { input: proj });
        let (new_root, _) = optimize(&mut dag, root, &OptOptions::default());
        let after = PlanStats::of(&dag, new_root);
        assert_eq!(after.rownums(), 0, "{after}");
        // The pos numbering itself is still produced (required!), as a #.
        assert!(after.rowids() >= 1);
    }

    #[test]
    fn constant_part_and_criteria_are_dropped() {
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITEM]);
        let c = dag.add(Op::Attach {
            input: src,
            col: Col::ITER,
            value: AValue::Int(1),
        });
        let c2 = dag.add(Op::Attach {
            input: c,
            col: Col::POS1,
            value: AValue::Int(7),
        });
        let rn = dag.add(Op::RowNum {
            input: c2,
            new: Col::POS,
            order: vec![SortKey::asc(Col::POS1), SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let root = dag.add(Op::Serialize { input: rn });
        let (new_root, _) = optimize(&mut dag, root, &OptOptions::default());
        // The % survives (item is a real criterion) but lost the constant
        // part and the constant first criterion.
        let found = dag
            .reachable(new_root)
            .into_iter()
            .find_map(|id| match dag.op(id) {
                Op::RowNum { order, part, .. } => Some((order.clone(), *part)),
                _ => None,
            })
            .expect("rownum survives");
        assert_eq!(found.0.len(), 1);
        assert_eq!(found.0[0].col, Col::ITEM);
        assert_eq!(found.1, None);
    }

    #[test]
    fn step_merge_fuses_dos_child() {
        let mut dag = Dag::new();
        let ctx = lit(&mut dag, vec![Col::ITER, Col::ITEM]);
        let dos = dag.add(Op::Step {
            input: ctx,
            axis: Axis::DescendantOrSelf,
            test: NodeTest::AnyKind,
        });
        let proj = dag.add(Op::Project {
            input: dos,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM)],
        });
        let child = dag.add(Op::Step {
            input: proj,
            axis: Axis::Child,
            test: NodeTest::Element,
        });
        let h = dag.add(Op::RowId {
            input: child,
            new: Col::POS,
        });
        let root = dag.add(Op::Serialize { input: h });
        let (new_root, _) = optimize(&mut dag, root, &OptOptions::default());
        let stats = PlanStats::of(&dag, new_root);
        assert_eq!(stats.steps(), 1, "{stats}");
        let merged = dag
            .reachable(new_root)
            .into_iter()
            .find_map(|id| match dag.op(id) {
                Op::Step { axis, .. } => Some(*axis),
                _ => None,
            })
            .unwrap();
        assert_eq!(merged, Axis::Descendant);
    }

    #[test]
    fn disabled_options_change_nothing() {
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITER, Col::ITEM]);
        let rn = dag.add(Op::RowNum {
            input: src,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let proj = dag.add(Op::Project {
            input: rn,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM)],
        });
        let hash = dag.add(Op::RowId {
            input: proj,
            new: Col::POS,
        });
        let root = dag.add(Op::Serialize { input: hash });
        let (new_root, report) = optimize(&mut dag, root, &OptOptions::disabled());
        assert_eq!(report.before.total, report.after.total);
        assert_eq!(PlanStats::of(&dag, new_root).rownums(), 1);
    }

    #[test]
    fn unique_criterion_truncates_suffix() {
        // §7: % pos1:⟨bind,pos⟩‖outer where bind is globally unique (it
        // came from an unpartitioned numbering): `pos` is never consulted.
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITEM, Col::POS, Col::OUTER]);
        let numbered = dag.add(Op::RowNum {
            input: src,
            new: Col::BIND,
            order: vec![SortKey::asc(Col::ITEM)],
            part: None, // global numbering → BIND unique
        });
        let rn = dag.add(Op::RowNum {
            input: numbered,
            new: Col::POS1,
            order: vec![SortKey::asc(Col::BIND), SortKey::asc(Col::POS)],
            part: Some(Col::OUTER),
        });
        let proj = dag.add(Op::Project {
            input: rn,
            cols: vec![(Col::POS, Col::POS1), (Col::ITEM, Col::ITEM)],
        });
        let root = dag.add(Op::Serialize { input: proj });
        let (new_root, _) = optimize(&mut dag, root, &OptOptions::default());
        let truncated = dag
            .reachable(new_root)
            .into_iter()
            .filter_map(|id| match dag.op(id) {
                Op::RowNum { order, new, .. } if *new == Col::POS1 => Some(order.clone()),
                _ => None,
            })
            .next()
            .expect("outer rownum survives");
        assert_eq!(truncated.len(), 1, "{truncated:?}");
        assert_eq!(truncated[0].col, Col::BIND);
    }

    #[test]
    fn disjoint_step_union_needs_no_distinct() {
        // §4.2 / Figure 10: δ(∪̇(⬡child::c q, ⬡child::d q)) — the steps'
        // results are disjoint, the δ disappears.
        let mut dag = Dag::new();
        let ctx = lit(&mut dag, vec![Col::ITER, Col::ITEM]);
        let mut pool = exrquy_xml::NamePool::new();
        let c = pool.intern("c");
        let d = pool.intern("d");
        let sc = dag.add(Op::Step {
            input: ctx,
            axis: Axis::Child,
            test: NodeTest::Name(c),
        });
        let sd = dag.add(Op::Step {
            input: ctx,
            axis: Axis::Child,
            test: NodeTest::Name(d),
        });
        let u = dag.add(Op::Union { l: sc, r: sd });
        let dd = dag.add(Op::Distinct { input: u });
        let h = dag.add(Op::RowId {
            input: dd,
            new: Col::POS,
        });
        let root = dag.add(Op::Serialize { input: h });
        let (new_root, _) = optimize(&mut dag, root, &OptOptions::default());
        assert_eq!(PlanStats::of(&dag, new_root).count("δ"), 0);

        // Same name test on both sides → results can overlap → δ stays.
        let u2 = dag.add(Op::Union { l: sc, r: sc });
        let dd2 = dag.add(Op::Distinct { input: u2 });
        let h2 = dag.add(Op::RowId {
            input: dd2,
            new: Col::POS,
        });
        let root2 = dag.add(Op::Serialize { input: h2 });
        let (new_root2, _) = optimize(&mut dag, root2, &OptOptions::default());
        assert_eq!(PlanStats::of(&dag, new_root2).count("δ"), 1);
    }

    #[test]
    fn trace_names_fired_rules() {
        // Same plan as `cda_removes_overwritten_rownum`: the trace must
        // name the dead-% bypass, and every entry must carry a round.
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITER, Col::ITEM]);
        let rn = dag.add(Op::RowNum {
            input: src,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let proj = dag.add(Op::Project {
            input: rn,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM)],
        });
        let hash = dag.add(Op::RowId {
            input: proj,
            new: Col::POS,
        });
        let root = dag.add(Op::Serialize { input: hash });
        let (_, report) = try_optimize(&mut dag, root, &OptOptions::default()).unwrap();
        assert!(report.fired("cda-bypass-rownum") >= 1, "{:?}", report.trace);
        assert!(report
            .trace
            .iter()
            .all(|a| a.round < OptOptions::default().max_rounds));
        // The disabled configuration fires nothing.
        let mut dag2 = Dag::new();
        let src2 = lit(&mut dag2, vec![Col::ITER, Col::ITEM]);
        let root2 = dag2.add(Op::RowId {
            input: src2,
            new: Col::POS,
        });
        let (_, report2) = try_optimize(&mut dag2, root2, &OptOptions::disabled()).unwrap();
        assert!(report2.trace.is_empty(), "{:?}", report2.trace);
    }

    #[test]
    fn select_on_constant_true_is_removed() {
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::POS, Col::ITEM]);
        let flag = dag.add(Op::Attach {
            input: src,
            col: Col::RES,
            value: AValue::Bool(true),
        });
        let sel = dag.add(Op::Select {
            input: flag,
            col: Col::RES,
        });
        let proj = dag.add(Op::Project {
            input: sel,
            cols: vec![(Col::POS, Col::POS), (Col::ITEM, Col::ITEM)],
        });
        let root = dag.add(Op::Serialize { input: proj });
        let (new_root, _) = optimize(&mut dag, root, &OptOptions::default());
        let stats = PlanStats::of(&dag, new_root);
        assert_eq!(stats.count("σ"), 0, "{stats}");
    }

    /// The FN:UNORDERED pattern again, but with the dead-% bypass disabled
    /// by name: the % must survive and the trace must not record the rule.
    #[test]
    fn disabled_rule_does_not_fire() {
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITER, Col::ITEM]);
        let rn = dag.add(Op::RowNum {
            input: src,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let proj = dag.add(Op::Project {
            input: rn,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM)],
        });
        let hash = dag.add(Op::RowId {
            input: proj,
            new: Col::POS,
        });
        let root = dag.add(Op::Serialize { input: hash });
        let opts = OptOptions::default().without_rule("cda-bypass-rownum");
        let (new_root, report) = try_optimize(&mut dag, root, &opts).unwrap();
        assert_eq!(report.fired("cda-bypass-rownum"), 0, "{:?}", report.trace);
        assert_eq!(PlanStats::of(&dag, new_root).rownums(), 1);
    }

    /// A top-level `collection()//e` plan: × and ⬡ over the `∪̂` of two
    /// fanouts must migrate beneath the union so each shard runs its own
    /// staircase join, while a one-part union collapses away entirely.
    #[test]
    fn shard_pushdown_moves_steps_below_union() {
        let mut dag = Dag::new();
        let lp = dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        let f0 = dag.add(Op::Fanout {
            shard: 0,
            lo: 0,
            hi: 2,
        });
        let f1 = dag.add(Op::Fanout {
            shard: 1,
            lo: 2,
            hi: 4,
        });
        let u = dag.add(Op::ShardUnion {
            parts: vec![f0, f1],
        });
        let crossed = dag.add(Op::Cross { l: lp, r: u });
        let ii = dag.add(Op::Project {
            input: crossed,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM)],
        });
        let step = dag.add(Op::Step {
            input: ii,
            axis: Axis::Child,
            test: NodeTest::Element,
        });
        let h = dag.add(Op::RowId {
            input: step,
            new: Col::POS,
        });
        let root = dag.add(Op::Serialize { input: h });
        let (new_root, report) = try_optimize(&mut dag, root, &OptOptions::default()).unwrap();
        assert!(report.fired("shard-push-cross") >= 1, "{:?}", report.trace);
        assert!(report.fired("shard-push-step") >= 1, "{:?}", report.trace);
        // Both shards got their own step, and the ∪̂ now sits above them.
        let reachable = dag.reachable(new_root);
        let steps = reachable
            .iter()
            .filter(|id| matches!(dag.op(**id), Op::Step { .. }))
            .count();
        assert_eq!(steps, 2, "one staircase join per shard");
        let union = reachable
            .iter()
            .find(|id| matches!(dag.op(**id), Op::ShardUnion { .. }))
            .expect("∪̂ survives");
        for part in dag.op(*union).children() {
            let below = dag.reachable(part);
            assert!(
                below
                    .iter()
                    .any(|id| matches!(dag.op(*id), Op::Step { .. })),
                "each ∪̂ part contains its shard's step"
            );
        }

        // A single-part union disappears outright.
        let mut dag2 = Dag::new();
        let f = dag2.add(Op::Fanout {
            shard: 0,
            lo: 0,
            hi: 4,
        });
        let u1 = dag2.add(Op::ShardUnion { parts: vec![f] });
        let h2 = dag2.add(Op::RowId {
            input: u1,
            new: Col::ITER,
        });
        let root2 = dag2.add(Op::Serialize { input: h2 });
        let (new_root2, report2) = try_optimize(&mut dag2, root2, &OptOptions::default()).unwrap();
        assert!(report2.fired("shard-union-singleton") >= 1);
        assert!(!dag2
            .reachable(new_root2)
            .iter()
            .any(|id| matches!(dag2.op(*id), Op::ShardUnion { .. })));
    }

    /// `rule-perturb:weaken-criteria` drops a *real* criterion — the
    /// planted optimizer bug attribution tests hunt. Disabling the
    /// perturbed rule restores soundness.
    #[test]
    fn perturbed_weaken_criteria_drops_real_criteria() {
        fn plan(dag: &mut Dag) -> OpId {
            let src = lit(dag, vec![Col::ITEM]);
            let rn = dag.add(Op::RowNum {
                input: src,
                new: Col::POS,
                order: vec![SortKey::asc(Col::ITEM)],
                part: None,
            });
            let proj = dag.add(Op::Project {
                input: rn,
                cols: vec![(Col::POS, Col::POS), (Col::ITEM, Col::ITEM)],
            });
            dag.add(Op::Serialize { input: proj })
        }
        // Unperturbed: the ITEM criterion is real, the % survives.
        let mut dag = Dag::new();
        let root = plan(&mut dag);
        let (clean_root, _) = try_optimize(&mut dag, root, &OptOptions::default()).unwrap();
        assert_eq!(PlanStats::of(&dag, clean_root).rownums(), 1);
        // Perturbed: every criterion dropped, the % degrades to a #.
        let mut dag = Dag::new();
        let root = plan(&mut dag);
        let (bad_root, report) = try_optimize_with(
            &mut dag,
            root,
            &OptOptions::default(),
            Some("weaken-criteria"),
        )
        .unwrap();
        assert_eq!(PlanStats::of(&dag, bad_root).rownums(), 0);
        assert!(report.fired("weaken-criteria") >= 1, "{:?}", report.trace);
        // Perturbed but with the rule disabled: soundness restored.
        let mut dag = Dag::new();
        let root = plan(&mut dag);
        let opts = OptOptions::default().without_rule("weaken-criteria");
        let (fixed_root, _) =
            try_optimize_with(&mut dag, root, &opts, Some("weaken-criteria")).unwrap();
        assert_eq!(PlanStats::of(&dag, fixed_root).rownums(), 1);
    }
}
