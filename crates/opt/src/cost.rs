//! Statistics-driven cost-based planning: cardinality estimation, join
//! graph isolation with byte-identical re-grafting, and selectivity-ordered
//! selection chains.
//!
//! This pass runs *after* the rule rewriter ([`crate::try_optimize_with`])
//! and never changes what a plan returns — only how it is shaped:
//!
//! 1. **Cardinality estimation** ([`estimate_cardinalities`]) walks the
//!    plan bottom-up deriving an estimated row count per operator, consulting
//!    the catalog's [`CatalogStats`] (element/attribute histograms, fanout,
//!    fragment weights) when available and falling back to fixed per-kind
//!    multipliers otherwise. Estimates feed the enumerator below and the
//!    `--explain` estimated-vs-actual table.
//!
//! 2. **Join graph isolation + reordering** (`cost-join-reorder`): a
//!    maximal cluster of equi-/theta-joins and cross products (with the
//!    interleaved projections the FLWOR compiler emits) is detached from
//!    the order-maintenance spine, its join order re-enumerated against the
//!    cardinality model (exact DP over bitmasks up to 8 relations, greedy
//!    pairwise merging beyond), and the winning tree grafted back behind an
//!    order-restoring compensation: every leaf is numbered with a fresh `#`
//!    rank column, the rebuilt cluster is sorted lexicographically by those
//!    ranks in the *original* left-to-right leaf order, and a final
//!    projection restores the cluster root's exact schema. Because every
//!    join kernel emits each matching pair exactly once and the rank tuple
//!    is unique per output row, the re-sorted cluster reproduces the
//!    canonical tree's rows, order, and columns *byte-identically* — the
//!    enumerator can only make plans faster, never different. While the
//!    rebuilt tree's *shape* is fixed by the enumerator, each join's
//!    *orientation* is chosen separately ([`build_join`]): the hash kernel
//!    always builds its table from the right input, so the side with the
//!    smaller estimated cardinality is swapped onto the right — a pure
//!    emission-order permutation the compensation sort absorbs.
//!
//!    **Rank-compensation elision** ([`rank_elidable`]): when the
//!    downstream cone from the cluster root provably cannot observe the
//!    cluster's row order — the paper's order-indifference condition,
//!    decided by a conservative column-taint and order-influence abstract
//!    interpretation — the rank columns and the compensation sort are
//!    skipped entirely, which is where the large wins come from (an
//!    unordered aggregate over a reordered star join pays no restore
//!    cost at all). Any construct the analysis cannot prove indifferent
//!    keeps the full compensation, so byte-identity holds by
//!    construction either way.
//!
//! 3. **Selection ordering** (`cost-select-order`): chains of stacked σ
//!    operators are re-applied cheapest-predicate-first. Selections emit the
//!    surviving rows in input order, so any application order yields the
//!    same table; the pass is gated on every σ column being produced by a
//!    boolean-valued function (or boolean attachment), which rules out the
//!    one observable difference a reorder could cause — a type error raised
//!    by a row another σ would have filtered.
//!
//! Both rewrites honor [`OptOptions::disabled_rules`] and the global
//! [`OptOptions::cost`] switch, and record [`RuleApplication`]s so the
//! differential attribution pass of `exrquy-verify` can bisect a divergence
//! to a single named rule — exactly as for the rule rewriter. The
//! `stats-perturb:<factor>` failpoint deterministically corrupts estimates
//! (even operator ids are multiplied by the factor, odd ones divided),
//! which may change which plan wins but — by the byte-identity argument —
//! never what it returns.

use crate::props;
use crate::rewrite::{OptError, OptOptions, RuleApplication};
use exrquy_algebra::{AggrKind, Col, Dag, FunKind, Op, OpId};
use exrquy_xml::{Axis, CatalogStats, NodeTest};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Everything the cost model knows beyond the plan itself.
#[derive(Clone, Default)]
pub struct CostContext {
    /// Frozen statistics of the catalog snapshot the plan will run
    /// against; `None` (no catalog, or stats not collected) falls back to
    /// fixed per-operator multipliers.
    pub stats: Option<Arc<CatalogStats>>,
    /// `stats-perturb:<factor>` failpoint: deterministically corrupt every
    /// estimate (even `OpId` → ×factor, odd → ÷factor). Plan choice may
    /// change; serialized results must not.
    pub perturb: Option<f64>,
}

impl CostContext {
    /// Context with catalog statistics and no perturbation.
    pub fn with_stats(stats: Arc<CatalogStats>) -> Self {
        CostContext {
            stats: Some(stats),
            perturb: None,
        }
    }
}

/// Outcome of one [`cost_optimize`] run.
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    /// Estimated output rows per operator of the *final* plan.
    pub estimates: HashMap<OpId, f64>,
    /// Join clusters examined.
    pub clusters: usize,
    /// Join clusters actually rebuilt in a cheaper order.
    pub reordered: usize,
    /// Reordered clusters whose rank-sort compensation was provably
    /// unnecessary and therefore elided (order indifference downstream).
    pub elided: usize,
    /// Selection chains re-applied in selectivity order.
    pub select_chains: usize,
    /// Every cost rewrite, in firing order (same shape as the rule
    /// rewriter's trace).
    pub trace: Vec<RuleApplication>,
}

/// Run the cost-based passes over an already rule-optimized plan. With
/// [`OptOptions::cost`] off (or both rules disabled) the plan is returned
/// unchanged, but estimates are still computed so `--explain` can show
/// them for the rule-only plan.
pub fn cost_optimize(
    dag: &mut Dag,
    root: OpId,
    opts: &OptOptions,
    ctx: &CostContext,
) -> Result<(OpId, CostReport), OptError> {
    let mut report = CostReport::default();
    let mut cur = root;
    if opts.cost && !opts.disabled_rules.contains("cost-join-reorder") {
        cur = reorder_joins(dag, cur, ctx, &mut report)?;
    }
    if opts.cost && !opts.disabled_rules.contains("cost-select-order") {
        cur = order_selects(dag, cur, ctx, &mut report)?;
    }
    report.estimates = estimate_cardinalities(dag, cur, ctx);
    Ok((cur, report))
}

// ---------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------

/// Estimated output rows for every operator reachable from `root`.
pub fn estimate_cardinalities(dag: &Dag, root: OpId, ctx: &CostContext) -> HashMap<OpId, f64> {
    let keys = props::keys(dag, root);
    let mut est: HashMap<OpId, f64> = HashMap::new();
    for id in dag.topo_order(root) {
        let of = |c: OpId, est: &HashMap<OpId, f64>| est.get(&c).copied().unwrap_or(1.0);
        let op = dag.op(id);
        let mut e = match op {
            Op::Lit { rows, .. } => rows.len() as f64,
            Op::Doc { .. } => 1.0,
            Op::Fanout { lo, hi, .. } => (hi.saturating_sub(*lo)) as f64,
            Op::Select { input, .. } => of(*input, &est) * 0.33,
            Op::Project { input, .. }
            | Op::RowNum { input, .. }
            | Op::RowId { input, .. }
            | Op::Attach { input, .. }
            | Op::Fun { input, .. }
            | Op::Sort { input, .. }
            | Op::Serialize { input } => of(*input, &est),
            Op::Step { input, axis, test } => step_estimate(of(*input, &est), *axis, test, ctx),
            Op::Distinct { input } => of(*input, &est) * 0.9,
            Op::Aggr { input, part, .. } => {
                if part.is_some() {
                    (of(*input, &est) * 0.1).max(1.0)
                } else {
                    1.0
                }
            }
            Op::Range { input, .. } => of(*input, &est) * 4.0,
            Op::Cross { l, r } => of(*l, &est) * of(*r, &est),
            Op::EquiJoin { l, r, lcol, rcol } => {
                let (lc, rc) = (of(*l, &est), of(*r, &est));
                lc * rc * eq_selectivity(lc, rc, key_of(&keys, *l, *lcol), key_of(&keys, *r, *rcol))
            }
            Op::ThetaJoin { l, r, pred } => {
                let (lc, rc) = (of(*l, &est), of(*r, &est));
                let mut sel = 1.0;
                for (pc, kind, qc) in pred {
                    sel *= match kind {
                        FunKind::Eq => {
                            eq_selectivity(lc, rc, key_of(&keys, *l, *pc), key_of(&keys, *r, *qc))
                        }
                        FunKind::Ne => 0.9,
                        _ => 0.3, // band comparison
                    };
                }
                lc * rc * sel
            }
            Op::Union { l, r } => of(*l, &est) + of(*r, &est),
            Op::ShardUnion { parts } => parts.iter().map(|p| of(*p, &est)).sum(),
            Op::Difference { l, .. } => of(*l, &est),
            Op::Element { names, .. } => of(*names, &est),
            Op::Attr { names, .. } => of(*names, &est),
            Op::TextNode { content } => of(*content, &est),
        };
        if let Some(f) = ctx.perturb {
            let f = f.abs().max(1e-6);
            e = if id.0 % 2 == 0 { e * f } else { e / f };
        }
        est.insert(id, e.clamp(1e-3, f64::MAX));
    }
    est
}

/// Is `col` inferred globally unique at `id`?
fn key_of(keys: &props::KeyMap, id: OpId, col: Col) -> bool {
    keys.get(&id).is_some_and(|k| k.contains(&col))
}

/// Equi-predicate selectivity `1 / max(ndv_l, ndv_r)`: a key column's
/// distinct count is its cardinality, a non-key's the square root of it
/// (the classic "half the information" guess).
fn eq_selectivity(lcard: f64, rcard: f64, lkey: bool, rkey: bool) -> f64 {
    let ndv_l = if lkey { lcard } else { lcard.sqrt() };
    let ndv_r = if rkey { rcard } else { rcard.sqrt() };
    1.0 / ndv_l.max(ndv_r).max(1.0)
}

/// Per-context-node yield of one location step, from catalog statistics
/// when available, fixed per-axis multipliers otherwise.
fn step_estimate(input: f64, axis: Axis, test: &NodeTest, ctx: &CostContext) -> f64 {
    if let Some(s) = ctx.stats.as_deref() {
        let frags = s.frags.max(1) as f64;
        let elements = s.elements.max(1) as f64;
        let per = match axis {
            Axis::Descendant | Axis::DescendantOrSelf => match test {
                NodeTest::Name(n) => s.elem_count(*n) as f64 / frags,
                _ => s.total_nodes as f64 / frags,
            },
            Axis::Child => match test {
                NodeTest::Name(n) => s.avg_fanout * (s.elem_count(*n) as f64 / elements),
                _ => s.avg_fanout,
            },
            Axis::Attribute => match test {
                NodeTest::Name(n) => (s.attr_count(*n) as f64 / elements).min(1.0),
                _ => 0.8,
            },
            Axis::SelfAxis => 0.9,
            Axis::Parent => 1.0,
            _ => 4.0,
        };
        return input * per.max(1e-3);
    }
    let per = match axis {
        Axis::Descendant | Axis::DescendantOrSelf => 8.0,
        Axis::Child => 2.0,
        Axis::Attribute => 0.5,
        Axis::SelfAxis => 0.9,
        Axis::Parent => 1.0,
        _ => 4.0,
    };
    input * per
}

// ---------------------------------------------------------------------
// Join graph isolation
// ---------------------------------------------------------------------

/// Reordering is capped at this many cluster leaves (bitmask width minus
/// headroom); larger clusters keep their canonical order.
const MAX_LEAVES: usize = 24;
/// Exact DP up to this many leaves, greedy pairwise merging beyond.
const DP_LEAVES: usize = 8;
/// A rebuilt order must beat the canonical cost by this factor — the
/// compensation sort is not free, so near-ties keep the canonical tree.
const REBUILD_GAIN: f64 = 0.99;

/// How one original join combined its two subtrees. Each rebuilt join
/// applies exactly one original bundle (possibly side-mirrored), with the
/// predicate list order preserved — the engine's join mechanism and match
/// semantics (`GroupKey` hashing for the first predicate, promoting value
/// comparison for residuals) therefore stay exactly those of the
/// canonical tree.
#[derive(Debug, Clone)]
enum Mechanism {
    /// `EquiJoin` on one column pair.
    Equi { l: (usize, Col), r: (usize, Col) },
    /// `ThetaJoin` on a conjunction; columns resolved to (leaf, column).
    Theta { preds: Vec<ThetaPred> },
}

/// A theta-join conjunct with both columns resolved to (leaf, column).
type ThetaPred = ((usize, Col), FunKind, (usize, Col));

/// One original join edge: its mechanism plus the leaves its predicates
/// actually reference on each side. A rebuilt join may apply the bundle
/// at any cut that puts `lneed` wholly on one side and `rneed` wholly on
/// the other — joins are cross-product-plus-filter semantically, so the
/// match set depends only on the referenced columns, not on which other
/// leaves happen to ride along.
#[derive(Debug, Clone)]
struct Bundle {
    mech: Mechanism,
    /// Leaves referenced by left-side predicate columns.
    lneed: u64,
    /// Leaves referenced by right-side predicate columns.
    rneed: u64,
}

impl Bundle {
    fn support(&self) -> u64 {
        self.lneed | self.rneed
    }
}

/// A join order: leaves at the bottom, each interior node optionally
/// applying one bundle (`None` = cross product; `bool` = mirrored).
#[derive(Debug, Clone)]
enum Tree {
    Leaf(usize),
    Join {
        l: Box<Tree>,
        r: Box<Tree>,
        bundle: Option<(usize, bool)>,
    },
}

/// One isolated join cluster, flattened.
struct Cluster {
    root: OpId,
    leaves: Vec<OpId>,
    bundles: Vec<Bundle>,
    /// Root schema columns resolved to their (leaf, leaf column) source,
    /// in root schema order.
    out: Vec<(Col, usize, Col)>,
    /// Support mask of every interior join of the canonical tree
    /// (including the root) — the canonical cost is the sum of their
    /// estimated cardinalities.
    supports: Vec<u64>,
    /// Dissolved interior operators (joins and projections).
    interiors: Vec<OpId>,
    /// More than 64 leaves: masks overflowed, skip this cluster.
    overflow: bool,
}

/// A join (or cross) the cluster walk may dissolve. Theta joins whose
/// first predicate is a band comparison stay opaque: the band kernel's
/// asymmetric mechanics are kept exactly where the canonical plan put
/// them.
fn is_cluster_join(op: &Op) -> bool {
    match op {
        Op::Cross { .. } | Op::EquiJoin { .. } => true,
        Op::ThetaJoin { pred, .. } => matches!(
            pred.first(),
            Some((_, FunKind::Eq, _)) | Some((_, FunKind::Ne, _))
        ),
        _ => false,
    }
}

/// May `id` be dissolved into the enclosing cluster? Requires a single
/// global consumer and a chain of projections bottoming at a join.
fn dissolvable(dag: &Dag, id: OpId, consumers: &HashMap<OpId, u32>) -> bool {
    if consumers.get(&id).copied().unwrap_or(0) != 1 {
        return false;
    }
    match dag.op(id) {
        op if is_cluster_join(op) => true,
        Op::Project { input, .. } => dissolvable(dag, *input, consumers),
        _ => false,
    }
}

/// Bit for leaf `i` (saturating: clusters past 64 leaves are skipped via
/// the overflow flag, so a clamped bit never drives a rebuild).
fn leaf_bit(i: usize) -> u64 {
    1u64 << (i.min(63))
}

struct Flattener<'a> {
    dag: &'a Dag,
    consumers: &'a HashMap<OpId, u32>,
    leaves: Vec<OpId>,
    bundles: Vec<Bundle>,
    supports: Vec<u64>,
    interiors: Vec<OpId>,
    overflow: bool,
}

type ColMap = HashMap<Col, (usize, Col)>;

impl Flattener<'_> {
    fn mask(&self, from: usize, to: usize) -> u64 {
        let mut m = 0u64;
        for i in from..to {
            if i < 64 {
                m |= 1 << i;
            }
        }
        m
    }

    /// Flatten the subtree at `id` (already known dissolvable, or the
    /// cluster root); returns the column provenance map at `id`.
    fn flatten(&mut self, id: OpId, is_root: bool) -> ColMap {
        if !is_root {
            self.interiors.push(id);
        }
        let op = self.dag.op(id).clone();
        match op {
            Op::Project { input, cols } => {
                let im = self.flatten(input, false);
                cols.iter()
                    .filter_map(|(new, src)| im.get(src).map(|&s| (*new, s)))
                    .collect()
            }
            Op::Cross { l, r } => self.merge_sides(id, l, r).0,
            Op::EquiJoin { l, r, lcol, rcol } => {
                let (cm, maps) = self.merge_sides(id, l, r);
                let (lm, rm) = maps;
                let (a, b) = (lm[&lcol], rm[&rcol]);
                self.bundles.push(Bundle {
                    mech: Mechanism::Equi { l: a, r: b },
                    lneed: leaf_bit(a.0),
                    rneed: leaf_bit(b.0),
                });
                cm
            }
            Op::ThetaJoin { l, r, pred } => {
                let (cm, maps) = self.merge_sides(id, l, r);
                let (lm, rm) = maps;
                let preds: Vec<ThetaPred> =
                    pred.iter().map(|(a, k, b)| (lm[a], *k, rm[b])).collect();
                let lneed = preds.iter().fold(0, |m, (a, ..)| m | leaf_bit(a.0));
                let rneed = preds.iter().fold(0, |m, (.., b)| m | leaf_bit(b.0));
                self.bundles.push(Bundle {
                    mech: Mechanism::Theta { preds },
                    lneed,
                    rneed,
                });
                cm
            }
            _ => unreachable!("flatten called on a non-interior operator"),
        }
    }

    /// Flatten or leaf both sides of a join, record the canonical
    /// intermediate's leaf set (for the canonical-cost baseline), and
    /// return the merged column map plus the per-side maps.
    fn merge_sides(&mut self, id: OpId, l: OpId, r: OpId) -> (ColMap, (ColMap, ColMap)) {
        let _ = id;
        let start = self.leaves.len();
        let lm = self.child(l);
        let rm = self.child(r);
        let end = self.leaves.len();
        self.supports.push(self.mask(start, end));
        let mut cm = lm.clone();
        cm.extend(rm.iter().map(|(c, s)| (*c, *s)));
        (cm, (lm, rm))
    }

    fn child(&mut self, id: OpId) -> ColMap {
        if dissolvable(self.dag, id, self.consumers) {
            self.flatten(id, false)
        } else {
            self.leaf(id)
        }
    }

    fn leaf(&mut self, id: OpId) -> ColMap {
        let idx = self.leaves.len();
        if idx >= 64 {
            self.overflow = true;
        }
        self.leaves.push(id);
        self.dag.schema(id).iter().map(|&c| (c, (idx, c))).collect()
    }
}

/// Global consumer counts (with multiplicity) over the plan.
fn consumer_counts(dag: &Dag, root: OpId) -> HashMap<OpId, u32> {
    let mut counts: HashMap<OpId, u32> = HashMap::new();
    for id in dag.topo_order(root) {
        for c in dag.op(id).children() {
            *counts.entry(c).or_default() += 1;
        }
    }
    counts
}

/// The cardinality model over one cluster's leaves and bundles.
struct CardModel {
    leafcard: Vec<f64>,
    sels: Vec<f64>,
    supports: Vec<u64>,
}

impl CardModel {
    fn new(cluster: &Cluster, est: &HashMap<OpId, f64>, keys: &props::KeyMap) -> Self {
        let leafcard: Vec<f64> = cluster
            .leaves
            .iter()
            .map(|l| est.get(l).copied().unwrap_or(1.0))
            .collect();
        let ndv = |(i, c): (usize, Col)| -> f64 {
            let card = leafcard[i];
            if key_of(keys, cluster.leaves[i], c) {
                card
            } else {
                card.sqrt()
            }
        };
        let sels = cluster
            .bundles
            .iter()
            .map(|b| {
                let s = match &b.mech {
                    Mechanism::Equi { l, r } => 1.0 / ndv(*l).max(ndv(*r)).max(1.0),
                    Mechanism::Theta { preds } => preds
                        .iter()
                        .map(|(l, k, r)| match k {
                            FunKind::Eq => 1.0 / ndv(*l).max(ndv(*r)).max(1.0),
                            FunKind::Ne => 0.9,
                            _ => 0.3,
                        })
                        .product(),
                };
                f64::max(s, 1e-9)
            })
            .collect();
        CardModel {
            leafcard,
            sels,
            supports: cluster.bundles.iter().map(Bundle::support).collect(),
        }
    }

    /// Estimated rows of the join of the leaf set `mask`, with every
    /// bundle whose support lies inside it applied.
    fn card(&self, mask: u64) -> f64 {
        let mut c = 1.0;
        for (i, &lc) in self.leafcard.iter().enumerate() {
            if mask & (1 << i) != 0 {
                c *= lc;
            }
        }
        for (s, &sup) in self.sels.iter().zip(&self.supports) {
            if sup & mask == sup {
                c *= s;
            }
        }
        c
    }
}

/// Bundles of `model` forced at the cut `(s1, s2)`: support inside the
/// union but astride the cut. Returns `None` (invalid cut) when more than
/// one is forced or a forced bundle's sides straddle; `Some(None)` is a
/// cross product, `Some(Some((idx, mirrored)))` the one applied bundle.
fn forced_bundle(bundles: &[Bundle], s1: u64, s2: u64) -> Option<Option<(usize, bool)>> {
    let union = s1 | s2;
    let mut found: Option<(usize, bool)> = None;
    for (i, b) in bundles.iter().enumerate() {
        let sup = b.support();
        if sup & union != sup || sup & s1 == sup || sup & s2 == sup {
            continue;
        }
        let orient = if b.lneed & s1 == b.lneed && b.rneed & s2 == b.rneed {
            (i, false)
        } else if b.lneed & s2 == b.lneed && b.rneed & s1 == b.rneed {
            (i, true)
        } else {
            return None; // one side's references straddle the cut
        };
        if found.is_some() {
            return None; // two bundles forced: cut separates both
        }
        found = Some(orient);
    }
    Some(found)
}

/// Exact dynamic program over leaf subsets (≤ [`DP_LEAVES`] leaves).
fn enumerate_dp(n: usize, bundles: &[Bundle], model: &CardModel) -> Option<(f64, Tree)> {
    let full = (1u64 << n) - 1;
    let mut dp: Vec<Option<(f64, Tree)>> = vec![None; (full + 1) as usize];
    for i in 0..n {
        dp[1 << i] = Some((0.0, Tree::Leaf(i)));
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let low = mask & mask.wrapping_neg();
        let mut best: Option<(f64, Tree)> = None;
        // Enumerate proper submasks containing the lowest bit: left/right
        // assignment is symmetric in cost, the bundle orientation flag
        // covers the rest.
        let mut s1 = (mask - 1) & mask;
        while s1 > 0 {
            let s2 = mask ^ s1;
            if s1 & low != 0 {
                if let (Some((c1, t1)), Some((c2, t2))) = (&dp[s1 as usize], &dp[s2 as usize]) {
                    if let Some(bundle) = forced_bundle(bundles, s1, s2) {
                        let cost = c1 + c2 + model.card(mask);
                        if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                            best = Some((
                                cost,
                                Tree::Join {
                                    l: Box::new(t1.clone()),
                                    r: Box::new(t2.clone()),
                                    bundle,
                                },
                            ));
                        }
                    }
                }
            }
            s1 = (s1 - 1) & mask;
        }
        dp[mask as usize] = best;
    }
    dp[full as usize].take()
}

/// Greedy pairwise merging for clusters too large for the exact DP:
/// repeatedly fuse the valid component pair with the smallest estimated
/// result, preferring bundle-connected pairs over cross products. Bails
/// out (`None` → keep canonical) if no valid pair remains.
fn enumerate_greedy(n: usize, bundles: &[Bundle], model: &CardModel) -> Option<(f64, Tree)> {
    /// Best fusion candidate: (connected, cost, i, j, bundle idx + mirror).
    type Best = (bool, f64, usize, usize, Option<(usize, bool)>);
    let mut comps: Vec<(u64, f64, Tree)> = (0..n).map(|i| (1 << i, 0.0, Tree::Leaf(i))).collect();
    while comps.len() > 1 {
        let mut best: Option<Best> = None;
        for i in 0..comps.len() {
            for j in (i + 1)..comps.len() {
                let (mi, mj) = (comps[i].0, comps[j].0);
                let Some(bundle) = forced_bundle(bundles, mi, mj) else {
                    continue;
                };
                let key = (bundle.is_none(), model.card(mi | mj));
                if best
                    .as_ref()
                    .is_none_or(|(cross, card, ..)| key < (*cross, *card))
                {
                    best = Some((key.0, key.1, i, j, bundle));
                }
            }
        }
        let (_, card, i, j, bundle) = best?;
        let (mj, cj, tj) = comps.swap_remove(j);
        let (mi, ci, ti) = std::mem::replace(&mut comps[i], (0, 0.0, Tree::Leaf(0)));
        comps[i] = (
            mi | mj,
            ci + cj + card,
            Tree::Join {
                l: Box::new(ti),
                r: Box::new(tj),
                bundle,
            },
        );
    }
    let (_, cost, tree) = comps.pop()?;
    Some((cost, tree))
}

/// Post-order leaf sets of `tree`'s internal joins plus its leaf order —
/// a tree reproduces the canonical shape exactly when its leaves read
/// `0..n` left to right *and* its internal sets match the canonical
/// supports (same post-order). Guard against rebuilding an identical tree
/// just to pay for the compensation sort.
fn tree_shape(tree: &Tree, leaves: &mut Vec<usize>, internals: &mut Vec<u64>) -> u64 {
    match tree {
        Tree::Leaf(i) => {
            leaves.push(*i);
            leaf_bit(*i)
        }
        Tree::Join { l, r, .. } => {
            let m = tree_shape(l, leaves, internals) | tree_shape(r, leaves, internals);
            internals.push(m);
            m
        }
    }
}

/// The `cost-join-reorder` pass over the whole plan.
fn reorder_joins(
    dag: &mut Dag,
    root: OpId,
    ctx: &CostContext,
    report: &mut CostReport,
) -> Result<OpId, OptError> {
    let topo = dag.topo_order(root);
    let consumers = consumer_counts(dag, root);
    let keys = props::keys(dag, root);
    let est = estimate_cardinalities(dag, root, ctx);
    let consts = const_cols(dag, &topo);

    // Pass A (detection, parents first): find maximal cluster roots, pick
    // a cheaper order where one exists.
    let mut processed: HashSet<OpId> = HashSet::new();
    let mut decisions: HashMap<OpId, (Cluster, Tree, bool, CardModel)> = HashMap::new();
    for &id in topo.iter().rev() {
        if processed.contains(&id) || !is_cluster_join(dag.op(id)) {
            continue;
        }
        let mut fl = Flattener {
            dag,
            consumers: &consumers,
            leaves: Vec::new(),
            bundles: Vec::new(),
            supports: Vec::new(),
            interiors: Vec::new(),
            overflow: false,
        };
        let cm = fl.flatten(id, true);
        let cluster = Cluster {
            root: id,
            out: dag
                .schema(id)
                .iter()
                .map(|&c| {
                    let (li, lc) = cm[&c];
                    (c, li, lc)
                })
                .collect(),
            leaves: fl.leaves,
            bundles: fl.bundles,
            supports: fl.supports,
            interiors: fl.interiors,
            overflow: fl.overflow,
        };
        processed.insert(id);
        processed.extend(cluster.interiors.iter().copied());
        report.clusters += 1;
        let n = cluster.leaves.len();
        if !(3..=MAX_LEAVES).contains(&n) || cluster.overflow {
            continue;
        }
        let model = CardModel::new(&cluster, &est, &keys);
        let canonical: f64 = cluster.supports.iter().map(|&s| model.card(s)).sum();
        let found = if n <= DP_LEAVES {
            enumerate_dp(n, &cluster.bundles, &model)
        } else {
            enumerate_greedy(n, &cluster.bundles, &model)
        };
        let Some((cost, tree)) = found else { continue };
        let (mut order, mut internals) = (Vec::new(), Vec::new());
        tree_shape(&tree, &mut order, &mut internals);
        let identity = order.iter().copied().eq(0..n) && internals == cluster.supports;
        if cost < canonical * REBUILD_GAIN && !identity {
            let elide = rank_elidable(dag, root, id, &topo, &keys, &consts);
            decisions.insert(id, (cluster, tree, elide, model));
        }
    }
    if decisions.is_empty() {
        return Ok(root);
    }

    // Pass B (rebuild, children first): graft each winning order back in
    // behind its order-restoring compensation.
    let mut memo: HashMap<OpId, OpId> = HashMap::new();
    for &id in &topo {
        if let Some((cluster, tree, elide, model)) = decisions.get(&id) {
            let new = graft(dag, cluster, tree, &memo, *elide, model)?;
            report.reordered += 1;
            report.elided += usize::from(*elide);
            report.trace.push(RuleApplication {
                round: 0,
                rule: "cost-join-reorder",
                before: id,
                after: new,
            });
            memo.insert(id, new);
            continue;
        }
        let op = dag.op(id).clone();
        let mapped: Vec<OpId> = op
            .children()
            .iter()
            .map(|c| memo.get(c).copied().unwrap_or(*c))
            .collect();
        let new = if mapped == op.children() {
            id
        } else {
            dag.try_add(op.with_children(&mapped))
                .map_err(|e| opt_err("cost-join-reorder", id, dag, e.0))?
        };
        memo.insert(id, new);
    }
    let new_root = memo[&root];
    dag.validate_plan(new_root)
        .map_err(|e| opt_err("cost-join-reorder", new_root, dag, e.0))?;
    Ok(new_root)
}

fn opt_err(rule: &'static str, op: OpId, dag: &Dag, message: String) -> OptError {
    OptError {
        rule,
        op,
        kind: if (op.0 as usize) < dag.len() {
            dag.op(op).kind_name()
        } else {
            "?"
        },
        round: 0,
        message,
    }
}

/// Materialize the chosen order: rank + rename every leaf, build the join
/// tree, sort by the ranks in original leaf order, restore the root
/// schema. With `elide` (downstream provably cannot observe the cluster's
/// row order, see [`rank_elidable`]) the rank columns and the sort are
/// skipped entirely — the rebuilt tree's own emission order stands.
fn graft(
    dag: &mut Dag,
    cluster: &Cluster,
    tree: &Tree,
    memo: &HashMap<OpId, OpId>,
    elide: bool,
    model: &CardModel,
) -> Result<OpId, OptError> {
    let rule = "cost-join-reorder";
    let n = cluster.leaves.len();
    // Fresh names: one rank column per leaf occurrence plus one rename per
    // leaf column, so rebuilt join schemas are disjoint by construction.
    let ranks: Vec<Col> = (0..n).map(|_| dag.fresh_col()).collect();
    let mut fresh: HashMap<(usize, Col), Col> = HashMap::new();
    let mut bases: Vec<OpId> = Vec::with_capacity(n);
    for (i, &leaf) in cluster.leaves.iter().enumerate() {
        let input = memo.get(&leaf).copied().unwrap_or(leaf);
        let schema: Vec<Col> = dag.schema(input).to_vec();
        let base = if elide {
            input
        } else {
            dag.try_add(Op::RowId {
                input,
                new: ranks[i],
            })
            .map_err(|e| opt_err(rule, leaf, dag, e.0))?
        };
        let mut cols: Vec<(Col, Col)> = Vec::with_capacity(schema.len() + 1);
        for &c in &schema {
            let f = dag.fresh_col();
            fresh.insert((i, c), f);
            cols.push((f, c));
        }
        if !elide {
            cols.push((ranks[i], ranks[i]));
        }
        let renamed = dag
            .try_add(Op::Project { input: base, cols })
            .map_err(|e| opt_err(rule, leaf, dag, e.0))?;
        bases.push(renamed);
    }
    let (joined, _) = build_join(dag, cluster, tree, &bases, &fresh, model)?;
    let restored = if elide {
        joined
    } else {
        dag.try_add(Op::Sort {
            input: joined,
            keys: ranks,
        })
        .map_err(|e| opt_err(rule, cluster.root, dag, e.0))?
    };
    let cols: Vec<(Col, Col)> = cluster
        .out
        .iter()
        .map(|&(c, li, lc)| (c, fresh[&(li, lc)]))
        .collect();
    dag.try_add(Op::Project {
        input: restored,
        cols,
    })
    .map_err(|e| opt_err(rule, cluster.root, dag, e.0))
}

/// Build the rebuilt join tree bottom-up, returning the op and its leaf
/// mask. Every join is oriented so the side with the *smaller* estimated
/// cardinality lands on the right: the hash-join kernels build their
/// table from the right input and probe with the left, so the estimate
/// decides the build side. Orientation only permutes emission order,
/// which the compensation sort (or its proven elision) already absorbs.
fn build_join(
    dag: &mut Dag,
    cluster: &Cluster,
    tree: &Tree,
    bases: &[OpId],
    fresh: &HashMap<(usize, Col), Col>,
    model: &CardModel,
) -> Result<(OpId, u64), OptError> {
    let rule = "cost-join-reorder";
    match tree {
        Tree::Leaf(i) => Ok((bases[*i], leaf_bit(*i))),
        Tree::Join { l, r, bundle } => {
            let (mut lid, lmask) = build_join(dag, cluster, l, bases, fresh, model)?;
            let (mut rid, rmask) = build_join(dag, cluster, r, bases, fresh, model)?;
            let mut flip = false;
            if model.card(lmask) < model.card(rmask) {
                std::mem::swap(&mut lid, &mut rid);
                flip = true;
            }
            let op = match bundle {
                None => Op::Cross { l: lid, r: rid },
                Some((bi, mirrored)) => match &cluster.bundles[*bi].mech {
                    Mechanism::Equi { l: a, r: b } => {
                        let (a, b) = if *mirrored != flip { (b, a) } else { (a, b) };
                        Op::EquiJoin {
                            l: lid,
                            r: rid,
                            lcol: fresh[a],
                            rcol: fresh[b],
                        }
                    }
                    Mechanism::Theta { preds } => {
                        let pred = preds
                            .iter()
                            .map(|(a, k, b)| {
                                if *mirrored != flip {
                                    (fresh[b], k.mirror(), fresh[a])
                                } else {
                                    (fresh[a], *k, fresh[b])
                                }
                            })
                            .collect();
                        Op::ThetaJoin {
                            l: lid,
                            r: rid,
                            pred,
                        }
                    }
                },
            };
            let id = dag
                .try_add(op)
                .map_err(|e| opt_err(rule, cluster.root, dag, e.0))?;
            Ok((id, lmask | rmask))
        }
    }
}

// ---------------------------------------------------------------------
// Rank-compensation elision
// ---------------------------------------------------------------------

/// Taint marker for a column whose values were merged from *different*
/// `#` sources by a union; any use of such a column bails.
const CONFLICT: u32 = u32::MAX;

/// Per-operator sets of columns provably holding at most one distinct
/// value (the unit-loop `iter`, attached constants, and everything that
/// carries them unchanged). A constant partition column means a grouped
/// aggregate has at most one group, which makes it as strong an
/// order-dependence pinch as an unpartitioned one.
fn const_cols(dag: &Dag, topo: &[OpId]) -> HashMap<OpId, HashSet<Col>> {
    let mut out: HashMap<OpId, HashSet<Col>> = HashMap::new();
    for &id in topo {
        let get = |m: &HashMap<OpId, HashSet<Col>>, c: OpId, col: Col| {
            m.get(&c).is_some_and(|s| s.contains(&col))
        };
        let set: HashSet<Col> = match dag.op(id) {
            Op::Lit { cols, rows } => {
                if rows.len() <= 1 {
                    cols.iter().copied().collect()
                } else {
                    cols.iter()
                        .enumerate()
                        .filter(|&(i, _)| rows.iter().all(|r| r[i] == rows[0][i]))
                        .map(|(_, &c)| c)
                        .collect()
                }
            }
            // One row: the document root.
            Op::Doc { .. } => dag.schema(id).iter().copied().collect(),
            Op::Fanout { lo, hi, .. } => {
                if hi.saturating_sub(*lo) <= 1 {
                    dag.schema(id).iter().copied().collect()
                } else {
                    HashSet::new()
                }
            }
            Op::Attach { input, col, .. } => {
                let mut s = out.get(input).cloned().unwrap_or_default();
                s.insert(*col);
                s
            }
            Op::Project { input, cols } => cols
                .iter()
                .filter(|(_, inp)| get(&out, *input, *inp))
                .map(|&(o, _)| o)
                .collect(),
            Op::Fun {
                input, new, args, ..
            } => {
                let mut s = out.get(input).cloned().unwrap_or_default();
                if args.iter().all(|a| s.contains(a)) {
                    s.insert(*new);
                }
                s
            }
            Op::Select { input, .. }
            | Op::Sort { input, .. }
            | Op::Distinct { input }
            | Op::Serialize { input } => out.get(input).cloned().unwrap_or_default(),
            // New numbering columns are not constant; carried ones are.
            Op::RowId { input, .. } | Op::RowNum { input, .. } | Op::Range { input, .. } => out
                .get(input)
                .map(|s| {
                    dag.schema(id)
                        .iter()
                        .filter(|c| s.contains(c))
                        .copied()
                        .collect()
                })
                .unwrap_or_default(),
            Op::Aggr { input, part, .. } => {
                part.filter(|p| get(&out, *input, *p)).into_iter().collect()
            }
            // The step replaces `item`; only a constant iter survives.
            Op::Step { input, .. } => {
                if get(&out, *input, Col::ITER) {
                    [Col::ITER].into_iter().collect()
                } else {
                    HashSet::new()
                }
            }
            Op::Cross { l, r } | Op::EquiJoin { l, r, .. } | Op::ThetaJoin { l, r, .. } => {
                let mut s = out.get(l).cloned().unwrap_or_default();
                if let Some(rs) = out.get(r) {
                    s.extend(rs.iter().copied());
                }
                s
            }
            Op::Difference { l, .. } => out.get(l).cloned().unwrap_or_default(),
            // Two branches may carry different single values.
            Op::Union { .. }
            | Op::ShardUnion { .. }
            | Op::Element { .. }
            | Op::Attr { .. }
            | Op::TextNode { .. } => HashSet::new(),
        };
        out.insert(id, set);
    }
    out
}

/// Decide whether the rank-sort compensation for the cluster rooted at
/// `start` can be elided: walk the downstream cone from `start` to `root`
/// proving that no operator can translate the cluster's *row order* into
/// observable output. Row-order influence propagates through per-row
/// operators; `#` inside the cone turns order into *opaque* ids, tracked
/// per column and accepted only where bijection-invariant (equality
/// against ids of the same source, grouping keys); `%`, f64-accumulating
/// aggregates, node constructors, and an influenced serialization root
/// all bail. Influence dies at an aggregate with at most one group (no
/// partition column, or a provably constant one) or a sort whose keys
/// include a proven unique key. Anything this walk cannot vouch for keeps
/// the compensation — elision can only be a strict subset of the safe
/// cases.
fn rank_elidable(
    dag: &Dag,
    root: OpId,
    start: OpId,
    topo: &[OpId],
    keys: &props::KeyMap,
    consts: &HashMap<OpId, HashSet<Col>>,
) -> bool {
    let mut influenced: HashSet<OpId> = HashSet::new();
    let mut taints: HashMap<OpId, HashMap<Col, u32>> = HashMap::new();
    influenced.insert(start);

    let t = |taints: &HashMap<OpId, HashMap<Col, u32>>, op: OpId, col: Col| -> Option<u32> {
        taints.get(&op).and_then(|m| m.get(&col).copied())
    };
    // Equality across two possibly-tainted columns is invariant only when
    // both are clean or both carry ids of one identical `#` source.
    let eq_ok = |a: Option<u32>, b: Option<u32>| a == b && a != Some(CONFLICT);

    for &id in topo {
        if id == start {
            continue;
        }
        let op = dag.op(id);
        let kids = op.children();
        let any_influence = kids.iter().any(|c| influenced.contains(c));
        let any_taint = kids
            .iter()
            .any(|c| taints.get(c).is_some_and(|m| !m.is_empty()));
        if !any_influence && !any_taint {
            continue;
        }
        let mut out_taint: HashMap<Col, u32> = HashMap::new();
        let mut out_influence = any_influence;
        match op {
            Op::Project { input, cols } => {
                for &(o, i) in cols {
                    if let Some(s) = t(&taints, *input, i) {
                        out_taint.insert(o, s);
                    }
                }
            }
            Op::Select { input, col } => {
                if t(&taints, *input, *col).is_some() {
                    return false;
                }
                out_taint = taints.get(input).cloned().unwrap_or_default();
            }
            Op::Attach { input, .. } => {
                out_taint = taints.get(input).cloned().unwrap_or_default();
            }
            Op::Fun {
                input,
                new,
                kind,
                args,
            } => {
                out_taint = taints.get(input).cloned().unwrap_or_default();
                let srcs: Vec<Option<u32>> = args.iter().map(|a| t(&taints, *input, *a)).collect();
                if srcs.iter().any(Option::is_some) {
                    let id_eq = matches!(kind, FunKind::Eq | FunKind::Ne)
                        && srcs.len() == 2
                        && eq_ok(srcs[0], srcs[1]);
                    if !id_eq {
                        return false;
                    }
                }
                out_taint.remove(new);
            }
            Op::RowId { input, new } => {
                out_taint = taints.get(input).cloned().unwrap_or_default();
                if influenced.contains(input) {
                    out_taint.insert(*new, id.0);
                } else {
                    out_taint.remove(new);
                }
            }
            Op::RowNum {
                input,
                new,
                order,
                part,
            } => {
                if part.is_some_and(|p| t(&taints, *input, p).is_some())
                    || order.iter().any(|k| t(&taints, *input, k.col).is_some())
                {
                    return false;
                }
                if influenced.contains(input) && !order.iter().any(|k| key_of(keys, *input, k.col))
                {
                    // Rank values would depend on arrival order.
                    return false;
                }
                out_taint = taints.get(input).cloned().unwrap_or_default();
                out_taint.remove(new);
            }
            Op::Aggr {
                input,
                kind,
                new,
                arg,
                part,
            } => {
                if arg.is_some_and(|a| t(&taints, *input, a).is_some()) {
                    return false;
                }
                let inf = influenced.contains(input);
                if inf
                    && matches!(
                        kind,
                        AggrKind::Sum | AggrKind::Avg | AggrKind::Ebv | AggrKind::StrJoin
                    )
                {
                    // f64 accumulation order / tie-broken concatenation /
                    // sequence EBV all observe arrival order.
                    return false;
                }
                match part {
                    None => out_influence = false,
                    Some(p) => {
                        let psrc = t(&taints, *input, *p);
                        if psrc == Some(CONFLICT) {
                            return false;
                        }
                        if let Some(s) = psrc {
                            out_taint.insert(*p, s);
                        }
                        let single_group = consts.get(input).is_some_and(|s| s.contains(p));
                        out_influence = inf && !single_group;
                    }
                }
                out_taint.remove(new);
            }
            Op::Distinct { input } => {
                out_taint = taints.get(input).cloned().unwrap_or_default();
                if out_taint.values().any(|&s| s == CONFLICT) {
                    return false;
                }
            }
            Op::Step { input, .. } => {
                if t(&taints, *input, Col::ITEM).is_some() {
                    return false;
                }
                if let Some(s) = t(&taints, *input, Col::ITER) {
                    out_taint.insert(Col::ITER, s);
                }
            }
            Op::Cross { l, r } => {
                out_taint = taints.get(l).cloned().unwrap_or_default();
                out_taint.extend(taints.get(r).cloned().unwrap_or_default());
            }
            Op::EquiJoin { l, r, lcol, rcol } => {
                if !eq_ok(t(&taints, *l, *lcol), t(&taints, *r, *rcol)) {
                    return false;
                }
                out_taint = taints.get(l).cloned().unwrap_or_default();
                out_taint.extend(taints.get(r).cloned().unwrap_or_default());
            }
            Op::ThetaJoin { l, r, pred } => {
                for &(a, k, b) in pred {
                    let (sa, sb) = (t(&taints, *l, a), t(&taints, *r, b));
                    let clean = sa.is_none() && sb.is_none();
                    let id_eq = matches!(k, FunKind::Eq | FunKind::Ne) && eq_ok(sa, sb);
                    if !clean && !id_eq {
                        return false;
                    }
                }
                out_taint = taints.get(l).cloned().unwrap_or_default();
                out_taint.extend(taints.get(r).cloned().unwrap_or_default());
            }
            Op::Union { l, r } => {
                for &c in dag.schema(id) {
                    match (t(&taints, *l, c), t(&taints, *r, c)) {
                        (None, None) => {}
                        (a, b) if a == b => {
                            out_taint.insert(c, a.unwrap());
                        }
                        _ => {
                            out_taint.insert(c, CONFLICT);
                        }
                    }
                }
            }
            Op::ShardUnion { parts } => {
                for &c in dag.schema(id) {
                    let srcs: Vec<Option<u32>> = parts.iter().map(|p| t(&taints, *p, c)).collect();
                    if srcs.iter().all(Option::is_none) {
                        continue;
                    }
                    if srcs.windows(2).all(|w| w[0] == w[1]) {
                        out_taint.insert(c, srcs[0].unwrap_or(CONFLICT));
                    } else {
                        out_taint.insert(c, CONFLICT);
                    }
                }
            }
            Op::Difference { l, r, on } => {
                for &(lc, rc) in on {
                    if !eq_ok(t(&taints, *l, lc), t(&taints, *r, rc)) {
                        return false;
                    }
                }
                // Anti-semijoin: `r` contributes a value *set* only.
                out_taint = taints.get(l).cloned().unwrap_or_default();
                out_influence = influenced.contains(l);
            }
            Op::Sort { input, keys: ks } => {
                if ks.iter().any(|k| t(&taints, *input, *k).is_some()) {
                    return false;
                }
                out_taint = taints.get(input).cloned().unwrap_or_default();
                // A unique sort key re-canonicalizes the row order.
                if ks.iter().any(|k| key_of(keys, *input, *k)) {
                    out_influence = false;
                }
            }
            Op::Range { input, lo, hi, new } => {
                if t(&taints, *input, *lo).is_some() || t(&taints, *input, *hi).is_some() {
                    return false;
                }
                out_taint = taints.get(input).cloned().unwrap_or_default();
                out_taint.remove(new);
            }
            Op::Serialize { input } => {
                out_taint = taints.get(input).cloned().unwrap_or_default();
            }
            // Node constructors fix the identity (and hence document
            // order) of new nodes by arrival order; anything else is
            // outside the proof.
            Op::Element { .. }
            | Op::Attr { .. }
            | Op::TextNode { .. }
            | Op::Lit { .. }
            | Op::Doc { .. }
            | Op::Fanout { .. } => return false,
        }
        if out_influence {
            influenced.insert(id);
        }
        if !out_taint.is_empty() {
            taints.insert(id, out_taint);
        }
    }
    !influenced.contains(&root) && taints.get(&root).is_none_or(|m| m.is_empty())
}

// ---------------------------------------------------------------------
// Selection ordering
// ---------------------------------------------------------------------

/// What produces a σ column's values, when they are provably boolean.
enum BoolSrc {
    Fun(FunKind),
    Const,
}

/// Walk down from `id` to the producer of `col`; `Some` only when every
/// value is a boolean (so a σ on it can never raise a type error and its
/// application order is unobservable).
fn bool_producer(dag: &Dag, id: OpId, col: Col) -> Option<BoolSrc> {
    match dag.op(id) {
        Op::Fun {
            input, new, kind, ..
        } => {
            if *new == col {
                if bool_valued(*kind) {
                    Some(BoolSrc::Fun(*kind))
                } else {
                    None
                }
            } else {
                bool_producer(dag, *input, col)
            }
        }
        Op::Attach {
            input,
            col: c,
            value,
        } => {
            if *c == col {
                matches!(value, exrquy_algebra::AValue::Bool(_)).then_some(BoolSrc::Const)
            } else {
                bool_producer(dag, *input, col)
            }
        }
        Op::Project { input, cols } => cols
            .iter()
            .find(|(new, _)| *new == col)
            .and_then(|(_, src)| bool_producer(dag, *input, *src)),
        Op::Select { input, .. }
        | Op::Distinct { input }
        | Op::Sort { input, .. }
        | Op::Serialize { input } => bool_producer(dag, *input, col),
        Op::RowNum { input, new, .. } | Op::RowId { input, new } => (*new != col)
            .then(|| bool_producer(dag, *input, col))
            .flatten(),
        Op::Range { input, new, .. } => (*new != col)
            .then(|| bool_producer(dag, *input, col))
            .flatten(),
        Op::Cross { l, r } | Op::EquiJoin { l, r, .. } | Op::ThetaJoin { l, r, .. } => {
            if dag.schema(*l).contains(&col) {
                bool_producer(dag, *l, col)
            } else {
                bool_producer(dag, *r, col)
            }
        }
        Op::Union { l, r } => bool_producer(dag, *l, col).and_then(|_| bool_producer(dag, *r, col)),
        Op::ShardUnion { parts } => {
            let mut src = None;
            for p in parts {
                src = bool_producer(dag, *p, col);
                src.as_ref()?;
            }
            src
        }
        _ => None,
    }
}

/// Function kinds that always yield a boolean on success.
fn bool_valued(kind: FunKind) -> bool {
    matches!(
        kind,
        FunKind::Eq
            | FunKind::Ne
            | FunKind::Lt
            | FunKind::Le
            | FunKind::Gt
            | FunKind::Ge
            | FunKind::And
            | FunKind::Or
            | FunKind::Not
            | FunKind::Contains
            | FunKind::StartsWith
            | FunKind::EndsWith
            | FunKind::ItemEbv
            | FunKind::NodeBefore
            | FunKind::NodeAfter
            | FunKind::NodeIs
    )
}

/// Fixed selectivity guess per boolean producer kind (smaller = more
/// selective = applied first).
fn producer_selectivity(src: &BoolSrc) -> f64 {
    match src {
        BoolSrc::Const => 0.5,
        BoolSrc::Fun(kind) => match kind {
            FunKind::Eq | FunKind::NodeIs => 0.1,
            FunKind::And => 0.15,
            FunKind::Contains | FunKind::StartsWith | FunKind::EndsWith => 0.25,
            FunKind::Lt | FunKind::Le | FunKind::Gt | FunKind::Ge => 0.3,
            FunKind::ItemEbv => 0.33,
            FunKind::NodeBefore | FunKind::NodeAfter => 0.4,
            FunKind::Or => 0.5,
            FunKind::Not => 0.7,
            FunKind::Ne => 0.9,
            _ => 0.33,
        },
    }
}

/// The `cost-select-order` pass: re-apply stacked σ chains in ascending
/// selectivity order.
fn order_selects(
    dag: &mut Dag,
    root: OpId,
    ctx: &CostContext,
    report: &mut CostReport,
) -> Result<OpId, OptError> {
    let topo = dag.topo_order(root);
    let consumers = consumer_counts(dag, root);

    // Pass A: find chains (head = topmost σ) worth reordering.
    let mut processed: HashSet<OpId> = HashSet::new();
    let mut decisions: HashMap<OpId, (OpId, Vec<Col>)> = HashMap::new();
    for &id in topo.iter().rev() {
        if processed.contains(&id) {
            continue;
        }
        let Op::Select { input, col } = *dag.op(id) else {
            continue;
        };
        // Collect the chain top-down; interior links must have no other
        // consumers, or reordering would change what those consumers see.
        let mut chain = vec![(id, col)];
        let mut cur = input;
        while let Op::Select { input, col } = *dag.op(cur) {
            if consumers.get(&cur).copied().unwrap_or(0) != 1 {
                break;
            }
            chain.push((cur, col));
            cur = input;
        }
        processed.extend(chain.iter().map(|(s, _)| *s));
        if chain.len() < 2 {
            continue;
        }
        let bottom = cur;
        // Original application order is bottom-up.
        chain.reverse();
        let mut ranked: Vec<(Col, f64)> = Vec::with_capacity(chain.len());
        let mut all_bool = true;
        for &(sid, c) in &chain {
            match bool_producer(dag, bottom, c) {
                Some(src) => {
                    let mut sel = producer_selectivity(&src);
                    if let Some(f) = ctx.perturb {
                        let f = f.abs().max(1e-6);
                        sel = if sid.0 % 2 == 0 { sel * f } else { sel / f };
                    }
                    ranked.push((c, sel));
                }
                None => {
                    all_bool = false;
                    break;
                }
            }
        }
        if !all_bool {
            continue;
        }
        let mut sorted = ranked.clone();
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        if sorted
            .iter()
            .map(|(c, _)| *c)
            .eq(ranked.iter().map(|(c, _)| *c))
        {
            continue;
        }
        decisions.insert(id, (bottom, sorted.into_iter().map(|(c, _)| c).collect()));
    }
    if decisions.is_empty() {
        return Ok(root);
    }

    // Pass B: rebuild bottom-up with reordered chains.
    let mut memo: HashMap<OpId, OpId> = HashMap::new();
    for &id in &topo {
        if let Some((bottom, order)) = decisions.get(&id) {
            let mut new = memo.get(bottom).copied().unwrap_or(*bottom);
            for &c in order {
                new = dag
                    .try_add(Op::Select { input: new, col: c })
                    .map_err(|e| opt_err("cost-select-order", id, dag, e.0))?;
            }
            report.select_chains += 1;
            report.trace.push(RuleApplication {
                round: 1,
                rule: "cost-select-order",
                before: id,
                after: new,
            });
            memo.insert(id, new);
            continue;
        }
        let op = dag.op(id).clone();
        let mapped: Vec<OpId> = op
            .children()
            .iter()
            .map(|c| memo.get(c).copied().unwrap_or(*c))
            .collect();
        let new = if mapped == op.children() {
            id
        } else {
            dag.try_add(op.with_children(&mapped))
                .map_err(|e| opt_err("cost-select-order", id, dag, e.0))?
        };
        memo.insert(id, new);
    }
    let new_root = memo[&root];
    dag.validate_plan(new_root)
        .map_err(|e| opt_err("cost-select-order", new_root, dag, e.0))?;
    Ok(new_root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_algebra::AValue;

    fn lit(dag: &mut Dag, col: Col, vals: &[i64]) -> OpId {
        dag.add(Op::Lit {
            cols: vec![col],
            rows: vals.iter().map(|&v| vec![AValue::Int(v)]).collect(),
        })
    }

    /// Three-relation chain: big ⨝ big ⨝ tiny, written left-deep with the
    /// tiny relation last — the cost model should join through the tiny
    /// side first.
    fn chain_plan(dag: &mut Dag) -> (OpId, OpId, OpId, OpId) {
        let a = lit(dag, Col(40), &(0..30).collect::<Vec<_>>());
        let b = lit(dag, Col(41), &(0..30).map(|v| v % 3).collect::<Vec<_>>());
        let c = lit(dag, Col(42), &[0, 1]);
        let ab = dag.add(Op::ThetaJoin {
            l: a,
            r: b,
            pred: vec![(Col(40), FunKind::Ne, Col(41))],
        });
        let root = dag.add(Op::EquiJoin {
            l: ab,
            r: c,
            lcol: Col(41),
            rcol: Col(42),
        });
        (a, b, c, root)
    }

    #[test]
    fn estimates_cover_every_operator_and_respect_perturbation() {
        let mut dag = Dag::new();
        let (a, _, _, root) = chain_plan(&mut dag);
        let est = estimate_cardinalities(&dag, root, &CostContext::default());
        for id in dag.topo_order(root) {
            assert!(est[&id].is_finite() && est[&id] > 0.0, "estimate for {id}");
        }
        assert_eq!(est[&a], 30.0);
        let perturbed = estimate_cardinalities(
            &dag,
            root,
            &CostContext {
                stats: None,
                perturb: Some(4.0),
            },
        );
        let expect = if a.0 % 2 == 0 { 120.0 } else { 7.5 };
        assert_eq!(perturbed[&a], expect);
        // Determinism: the same context reproduces the same numbers.
        let again = estimate_cardinalities(&dag, root, &CostContext::default());
        assert_eq!(est[&root], again[&root]);
    }

    #[test]
    fn join_reorder_fires_and_preserves_schema() {
        let mut dag = Dag::new();
        let (.., root) = chain_plan(&mut dag);
        let schema_before: Vec<Col> = dag.schema(root).to_vec();
        let opts = OptOptions::default();
        let (new_root, report) =
            cost_optimize(&mut dag, root, &opts, &CostContext::default()).unwrap();
        assert_eq!(report.clusters, 1);
        assert_eq!(report.reordered, 1, "cheap order should win: {report:?}");
        assert_ne!(new_root, root);
        assert_eq!(dag.schema(new_root), schema_before.as_slice());
        dag.validate_plan(new_root).unwrap();
        // The graft is Project(Sort(...)) over the reordered joins.
        assert!(matches!(dag.op(new_root), Op::Project { .. }));
        let Op::Project { input, .. } = dag.op(new_root) else {
            unreachable!()
        };
        assert!(matches!(dag.op(*input), Op::Sort { .. }));
        assert_eq!(report.trace.len(), 1);
        assert_eq!(report.trace[0].rule, "cost-join-reorder");
    }

    #[test]
    fn join_reorder_respects_gates() {
        for opts in [
            OptOptions {
                cost: false,
                ..OptOptions::default()
            },
            OptOptions::default().without_rule("cost-join-reorder"),
        ] {
            let mut dag = Dag::new();
            let (.., root) = chain_plan(&mut dag);
            let (new_root, report) =
                cost_optimize(&mut dag, root, &opts, &CostContext::default()).unwrap();
            assert_eq!(new_root, root);
            assert_eq!(report.reordered, 0);
            assert!(report.trace.is_empty());
            // Estimates are still available for --explain.
            assert!(!report.estimates.is_empty());
        }
    }

    #[test]
    fn two_relation_joins_keep_their_canonical_order() {
        let mut dag = Dag::new();
        let a = lit(&mut dag, Col(40), &[1, 2, 3]);
        let b = lit(&mut dag, Col(41), &[1, 2]);
        let root = dag.add(Op::EquiJoin {
            l: a,
            r: b,
            lcol: Col(40),
            rcol: Col(41),
        });
        let (new_root, report) = cost_optimize(
            &mut dag,
            root,
            &OptOptions::default(),
            &CostContext::default(),
        )
        .unwrap();
        assert_eq!(new_root, root);
        assert_eq!(report.reordered, 0);
    }

    #[test]
    fn select_chain_reorders_most_selective_first() {
        let mut dag = Dag::new();
        let base = lit(&mut dag, Col(40), &[1, 2, 3, 4]);
        let ne = dag.add(Op::Fun {
            input: base,
            new: Col(41),
            kind: FunKind::Ne,
            args: vec![Col(40), Col(40)],
        });
        let eq = dag.add(Op::Fun {
            input: ne,
            new: Col(42),
            kind: FunKind::Eq,
            args: vec![Col(40), Col(40)],
        });
        // Canonical order applies the weak σ (Ne, sel 0.9) first.
        let s1 = dag.add(Op::Select {
            input: eq,
            col: Col(41),
        });
        let s2 = dag.add(Op::Select {
            input: s1,
            col: Col(42),
        });
        let (new_root, report) = cost_optimize(
            &mut dag,
            s2,
            &OptOptions::default(),
            &CostContext::default(),
        )
        .unwrap();
        assert_eq!(report.select_chains, 1);
        assert_ne!(new_root, s2);
        // New head filters on the Ne column (weakest last).
        let Op::Select { input, col } = dag.op(new_root) else {
            panic!("head must stay a σ");
        };
        assert_eq!(*col, Col(41));
        let Op::Select { col, .. } = dag.op(*input) else {
            panic!("σ chain expected");
        };
        assert_eq!(*col, Col(42));
        assert_eq!(report.trace[0].rule, "cost-select-order");
    }

    #[test]
    fn select_chain_without_boolean_proof_is_untouched() {
        let mut dag = Dag::new();
        // Columns straight out of a literal: no boolean producer proof.
        let base = dag.add(Op::Lit {
            cols: vec![Col(41), Col(42)],
            rows: vec![vec![AValue::Bool(true), AValue::Bool(false)]],
        });
        let s1 = dag.add(Op::Select {
            input: base,
            col: Col(41),
        });
        let s2 = dag.add(Op::Select {
            input: s1,
            col: Col(42),
        });
        let (new_root, report) = cost_optimize(
            &mut dag,
            s2,
            &OptOptions::default(),
            &CostContext::default(),
        )
        .unwrap();
        assert_eq!(new_root, s2);
        assert_eq!(report.select_chains, 0);
    }

    #[test]
    fn shared_interior_joins_are_cluster_leaves() {
        // The a⨝b result feeds both the outer join and a distinct — it
        // must not be dissolved (its other consumer still needs it).
        let mut dag = Dag::new();
        let a = lit(&mut dag, Col(40), &(0..20).collect::<Vec<_>>());
        let b = lit(&mut dag, Col(41), &(0..20).collect::<Vec<_>>());
        let c = lit(&mut dag, Col(42), &[0]);
        let ab = dag.add(Op::EquiJoin {
            l: a,
            r: b,
            lcol: Col(40),
            rcol: Col(41),
        });
        let outer = dag.add(Op::EquiJoin {
            l: ab,
            r: c,
            lcol: Col(41),
            rcol: Col(42),
        });
        let shared = dag.add(Op::Distinct { input: ab });
        let shared_p = dag.add(Op::Project {
            input: shared,
            cols: vec![(Col(43), Col(40))],
        });
        let root = dag.add(Op::Cross {
            l: outer,
            r: shared_p,
        });
        let (new_root, _) = cost_optimize(
            &mut dag,
            root,
            &OptOptions::default(),
            &CostContext::default(),
        )
        .unwrap();
        dag.validate_plan(new_root).unwrap();
        // ab stays reachable whatever happened to the outer cluster.
        assert!(dag.reachable(new_root).contains(&ab));
    }

    #[test]
    fn rank_compensation_elided_under_order_indifferent_aggregate() {
        // An ungrouped count over the cluster cannot observe row order:
        // the reorder must fire *without* rank columns or a restore sort.
        let mut dag = Dag::new();
        let (.., joins) = chain_plan(&mut dag);
        let root = dag.add(Op::Aggr {
            input: joins,
            kind: AggrKind::Count,
            new: Col(50),
            arg: None,
            part: None,
        });
        let (new_root, report) = cost_optimize(
            &mut dag,
            root,
            &OptOptions::default(),
            &CostContext::default(),
        )
        .unwrap();
        assert_eq!(report.reordered, 1);
        assert_eq!(report.elided, 1, "count is order-indifferent: {report:?}");
        dag.validate_plan(new_root).unwrap();
        let reachable = dag.reachable(new_root);
        assert!(
            !reachable
                .iter()
                .any(|id| matches!(dag.op(*id), Op::Sort { .. } | Op::RowId { .. })),
            "elision must drop both the restore sort and the rank columns"
        );
    }

    #[test]
    fn rank_compensation_kept_under_order_sensitive_aggregate() {
        // Sum accumulates f64 in row order — the analysis must refuse to
        // elide and keep the byte-identical compensation sort.
        let mut dag = Dag::new();
        let (.., joins) = chain_plan(&mut dag);
        let root = dag.add(Op::Aggr {
            input: joins,
            kind: AggrKind::Sum,
            new: Col(50),
            arg: Some(Col(42)),
            part: None,
        });
        let (new_root, report) = cost_optimize(
            &mut dag,
            root,
            &OptOptions::default(),
            &CostContext::default(),
        )
        .unwrap();
        assert_eq!(report.reordered, 1);
        assert_eq!(report.elided, 0, "sum observes row order: {report:?}");
        dag.validate_plan(new_root).unwrap();
        let reachable = dag.reachable(new_root);
        assert!(
            reachable
                .iter()
                .any(|id| matches!(dag.op(*id), Op::Sort { .. })),
            "order-sensitive consumer must keep the restore sort"
        );
    }

    #[test]
    fn stats_sharpen_step_estimates() {
        use exrquy_xml::NameId;
        let mut stats = CatalogStats {
            frags: 2,
            elements: 100,
            total_nodes: 300,
            avg_fanout: 3.0,
            ..CatalogStats::default()
        };
        stats.elem_counts.insert(NameId(7), 50);
        let ctx = CostContext::with_stats(Arc::new(stats));
        let with = step_estimate(4.0, Axis::Descendant, &NodeTest::Name(NameId(7)), &ctx);
        assert_eq!(with, 4.0 * 25.0); // 50 elements over 2 fragments
        let without = step_estimate(
            4.0,
            Axis::Descendant,
            &NodeTest::Name(NameId(7)),
            &CostContext::default(),
        );
        assert_eq!(without, 32.0); // fixed ×8 fallback
    }
}
