//! Top-down inference of strictly required input columns (§4.1, Fig. 8).

use exrquy_algebra::{Col, Dag, Op, OpId};
use std::collections::{BTreeSet, HashMap};

/// For every operator reachable from `root`, the set of its *output*
/// columns that some consumer strictly requires. The root requires
/// `{pos, item}` (serialization of the result sequence).
///
/// `prune_projections` must mirror whether the rewriter is allowed to
/// prune unrequired columns out of `π` operators (`project-prune`
/// enabled under column-dependency analysis). When it is, a projection
/// only demands the sources of its *required* outputs; when pruning is
/// off, the rebuilt projection keeps every column, so every source stays
/// demanded — otherwise a column-dependency bypass upstream could delete
/// the producer of a column the surviving projection still references.
pub fn required_columns(
    dag: &Dag,
    root: OpId,
    prune_projections: bool,
) -> HashMap<OpId, BTreeSet<Col>> {
    let order = dag.topo_order(root);
    let mut req: HashMap<OpId, BTreeSet<Col>> = HashMap::new();
    req.insert(root, [Col::POS, Col::ITEM].into_iter().collect());
    // Parents before children: reverse topological order.
    for &id in order.iter().rev() {
        let my_req = req.get(&id).cloned().unwrap_or_default();
        let op = dag.op(id);
        let mut push = |child: OpId, cols: BTreeSet<Col>| {
            req.entry(child).or_default().extend(cols);
        };
        match op {
            Op::Lit { .. } | Op::Doc { .. } | Op::Fanout { .. } => {}
            Op::ShardUnion { parts } => {
                for p in parts {
                    push(*p, my_req.clone());
                }
            }
            Op::Project { input, cols } => {
                let needed: BTreeSet<Col> = cols
                    .iter()
                    .filter(|(new, _)| !prune_projections || my_req.contains(new))
                    .map(|(_, src)| *src)
                    .collect();
                push(*input, needed);
            }
            Op::Select { input, col } => {
                let mut n = my_req.clone();
                n.insert(*col);
                push(*input, n);
            }
            Op::RowNum {
                input,
                new,
                order,
                part,
            } => {
                let mut n: BTreeSet<Col> = my_req.iter().copied().filter(|c| c != new).collect();
                if my_req.contains(new) {
                    // The numbering is consumed: its criteria are required.
                    n.extend(order.iter().map(|k| k.col));
                    n.extend(part.iter().copied());
                }
                push(*input, n);
            }
            Op::RowId { input, new } => {
                // Fig. 8: required(input) = required \ {new}.
                let n = my_req.iter().copied().filter(|c| c != new).collect();
                push(*input, n);
            }
            Op::Attach { input, col, .. } => {
                let n = my_req.iter().copied().filter(|c| c != col).collect();
                push(*input, n);
            }
            Op::Fun {
                input, new, args, ..
            } => {
                let mut n: BTreeSet<Col> = my_req.iter().copied().filter(|c| c != new).collect();
                if my_req.contains(new) {
                    n.extend(args.iter().copied());
                }
                push(*input, n);
            }
            Op::Aggr {
                input,
                kind,
                arg,
                part,
                ..
            } => {
                // Aggregation output depends on group contents and keys
                // regardless of which output columns are consumed.
                let mut n = BTreeSet::new();
                n.extend(arg.iter().copied());
                n.extend(part.iter().copied());
                // Order-sensitive aggregates (string joining) consume the
                // group's `pos` order when the input carries one.
                if *kind == exrquy_algebra::AggrKind::StrJoin
                    && dag.schema(*input).contains(&Col::POS)
                {
                    n.insert(Col::POS);
                }
                push(*input, n);
            }
            Op::Distinct { input } => {
                // Duplicate elimination observes every input column.
                let all: BTreeSet<Col> = dag.schema(*input).iter().copied().collect();
                push(*input, all);
            }
            Op::Step { input, .. } => {
                push(*input, [Col::ITER, Col::ITEM].into_iter().collect());
            }
            Op::Cross { l, r } => {
                let ls: BTreeSet<Col> = dag.schema(*l).iter().copied().collect();
                let rs: BTreeSet<Col> = dag.schema(*r).iter().copied().collect();
                push(*l, my_req.intersection(&ls).copied().collect());
                push(*r, my_req.intersection(&rs).copied().collect());
            }
            Op::EquiJoin { l, r, lcol, rcol } => {
                let ls: BTreeSet<Col> = dag.schema(*l).iter().copied().collect();
                let rs: BTreeSet<Col> = dag.schema(*r).iter().copied().collect();
                let mut ln: BTreeSet<Col> = my_req.intersection(&ls).copied().collect();
                ln.insert(*lcol);
                let mut rn: BTreeSet<Col> = my_req.intersection(&rs).copied().collect();
                rn.insert(*rcol);
                push(*l, ln);
                push(*r, rn);
            }
            Op::ThetaJoin { l, r, pred } => {
                let ls: BTreeSet<Col> = dag.schema(*l).iter().copied().collect();
                let rs: BTreeSet<Col> = dag.schema(*r).iter().copied().collect();
                let mut ln: BTreeSet<Col> = my_req.intersection(&ls).copied().collect();
                let mut rn: BTreeSet<Col> = my_req.intersection(&rs).copied().collect();
                for (lc, _, rc) in pred {
                    ln.insert(*lc);
                    rn.insert(*rc);
                }
                push(*l, ln);
                push(*r, rn);
            }
            Op::Union { l, r } => {
                push(*l, my_req.clone());
                push(*r, my_req.clone());
            }
            Op::Difference { l, r, on } => {
                let mut ln = my_req.clone();
                ln.extend(on.iter().map(|&(lc, _)| lc));
                push(*l, ln);
                push(*r, on.iter().map(|&(_, rc)| rc).collect());
            }
            Op::Element { names, content } => {
                push(*names, [Col::ITER, Col::ITEM].into_iter().collect());
                let mut c: BTreeSet<Col> = [Col::ITER, Col::POS, Col::ITEM].into_iter().collect();
                // The content-part tag participates in the atomic-spacing
                // rule when the plan carries it.
                if dag.schema(*content).contains(&Col::ORD) {
                    c.insert(Col::ORD);
                }
                push(*content, c);
            }
            Op::Attr { names, values } => {
                push(*names, [Col::ITER, Col::ITEM].into_iter().collect());
                push(*values, [Col::ITER, Col::ITEM].into_iter().collect());
            }
            Op::TextNode { content } => {
                push(*content, [Col::ITER, Col::ITEM].into_iter().collect());
            }
            Op::Range { input, lo, hi, new } => {
                let mut n: BTreeSet<Col> = my_req.iter().copied().filter(|c| c != new).collect();
                n.insert(*lo);
                n.insert(*hi);
                push(*input, n);
            }
            Op::Serialize { input } => {
                push(*input, [Col::POS, Col::ITEM].into_iter().collect());
            }
            Op::Sort { input, keys } => {
                let mut n = my_req.clone();
                n.extend(keys.iter().copied());
                push(*input, n);
            }
        }
    }
    req
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_algebra::{AValue, SortKey};

    #[test]
    fn rowid_consumes_nothing_extra() {
        // Fig. 8: # pos over π iter,item — pos is not required below the #.
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::POS, Col::ITEM],
            rows: vec![],
        });
        let p = dag.add(Op::Project {
            input: l,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM)],
        });
        let h = dag.add(Op::RowId {
            input: p,
            new: Col::POS,
        });
        let root = dag.add(Op::Serialize { input: h });
        let req = required_columns(&dag, root, true);
        assert!(!req[&l].contains(&Col::POS), "{:?}", req[&l]);
        assert!(req[&l].contains(&Col::ITEM));
    }

    #[test]
    fn rownum_criteria_required_only_when_consumed() {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::ITEM],
            rows: vec![],
        });
        let rn = dag.add(Op::RowNum {
            input: l,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        // Consumer drops pos: the sort criteria are not required.
        let drop_pos = dag.add(Op::Project {
            input: rn,
            cols: vec![(Col::ITEM, Col::ITEM)],
        });
        let req = required_columns(&dag, drop_pos, true);
        // Root here is the projection; seed {pos, item} intersected away.
        assert!(!req[&rn].contains(&Col::POS));
    }

    #[test]
    fn select_requires_its_predicate_column() {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::POS, Col::ITEM, Col::RES],
            rows: vec![],
        });
        let s = dag.add(Op::Select {
            input: l,
            col: Col::RES,
        });
        let root = dag.add(Op::Serialize { input: s });
        let req = required_columns(&dag, root, true);
        assert!(req[&l].contains(&Col::RES));
        assert!(req[&l].contains(&Col::POS));
        assert!(req[&l].contains(&Col::ITEM));
    }

    #[test]
    fn attach_value_not_required_below() {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::ITEM],
            rows: vec![],
        });
        let a = dag.add(Op::Attach {
            input: l,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let root = dag.add(Op::Serialize { input: a });
        let req = required_columns(&dag, root, true);
        assert_eq!(req[&l], [Col::ITEM].into_iter().collect::<BTreeSet<_>>());
    }
}
