//! Physical row-order inference — the \[Moerkotte & Neumann, VLDB 2004\]
//! extension the paper's §6 points at: "the techniques of \[15\] might
//! infer that a particular sub-plan yields rows in ⟨b, c⟩ order. This
//! renders subsequent `% a:⟨b,c⟩` or `% a:⟨c⟩‖b` operators as cheap as
//! `# a`."
//!
//! This pass infers, for every operator, a *sort-order prefix*: the list
//! of columns by which the engine is guaranteed to emit the operator's
//! rows in ascending order. The facts are contracts of `exrquy-engine`:
//!
//! * `⬡` emits `(iter, item)`-sorted rows (staircase join output, grouped
//!   by iteration);
//! * π/σ/δ/`%`/`#`/attach/fun preserve their input's row order
//!   (projection must keep the order columns alive, renames carry over);
//! * `range` preserves input order and extends it with the ascending
//!   range column;
//! * everything else (unions, joins, aggregates, constructors) yields no
//!   guarantee.
//!
//! The rewrite in [`rewrite`](crate::rewrite) (enabled via
//! [`OptOptions::physical_order`](crate::OptOptions)) then drops the sort
//! criteria of any `%` whose partition/criteria sequence is a prefix of
//! the input's inferred order — turning the blocking sort into the free
//! single-pass numbering. The pass is *physical* (it reasons about the
//! engine, not the algebra) and therefore orthogonal to the paper's
//! purely logical contribution; it ships disabled by default and is
//! exercised by the ablation benchmarks.

use exrquy_algebra::{Col, Dag, Op, OpId};
use std::collections::HashMap;

/// Operator → the column list its output rows are sorted by (ascending,
/// lexicographic prefix). Missing entry or empty list = no guarantee.
pub type OrderMap = HashMap<OpId, Vec<Col>>;

/// Infer sort-order prefixes for every operator reachable from `root`.
pub fn sort_orders(dag: &Dag, root: OpId) -> OrderMap {
    let mut orders: OrderMap = HashMap::new();
    for id in dag.topo_order(root) {
        let op = dag.op(id);
        let of = |c: OpId, orders: &OrderMap| -> Vec<Col> {
            orders.get(&c).cloned().unwrap_or_default()
        };
        let mine: Vec<Col> = match op {
            // Engine contract: per-iteration staircase results concatenated
            // in ascending iteration order.
            Op::Step { .. } => vec![Col::ITER, Col::ITEM],
            // Row-order preserving unary operators.
            Op::Select { input, .. }
            | Op::RowNum { input, .. }
            | Op::RowId { input, .. }
            | Op::Attach { input, .. }
            | Op::Fun { input, .. }
            | Op::Distinct { input }
            | Op::Serialize { input } => of(*input, &orders),
            Op::Project { input, cols } => {
                // Keep the longest prefix whose source columns survive the
                // projection, mapped through the renames. A source column
                // projected out truncates the prefix; a duplicated source
                // keeps its first target.
                let inp = of(*input, &orders);
                let mut out = Vec::new();
                'prefix: for src in inp {
                    for (new, s) in cols {
                        if *s == src {
                            out.push(*new);
                            continue 'prefix;
                        }
                    }
                    break;
                }
                out
            }
            Op::Range { input, new, .. } => {
                // Rows are emitted input-major with the range column
                // ascending inside each input row.
                let mut o = of(*input, &orders);
                o.push(*new);
                o
            }
            // No guarantee across merges, joins, aggregation, node
            // construction or literals.
            _ => Vec::new(),
        };
        if !mine.is_empty() {
            orders.insert(id, mine);
        }
    }
    orders
}

/// Would a `% new:⟨order⟩‖part` over an input sorted by `input_order` be
/// satisfied without sorting? True when `[part?] ++ order` (all
/// ascending) is a prefix of `input_order`.
pub fn rownum_is_presorted(
    input_order: &[Col],
    order: &[exrquy_algebra::SortKey],
    part: Option<Col>,
) -> bool {
    if order.iter().any(|k| k.desc) {
        return false;
    }
    let mut want: Vec<Col> = Vec::with_capacity(order.len() + 1);
    want.extend(part);
    want.extend(order.iter().map(|k| k.col));
    want.len() <= input_order.len() && want.iter().zip(input_order).all(|(a, b)| a == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_algebra::SortKey;
    use exrquy_xml::{Axis, NodeTest};

    fn step_dag() -> (Dag, OpId) {
        let mut dag = Dag::new();
        let l = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::ITEM],
            rows: vec![],
        });
        let s = dag.add(Op::Step {
            input: l,
            axis: Axis::Child,
            test: NodeTest::AnyKind,
        });
        (dag, s)
    }

    #[test]
    fn step_output_is_iter_item_sorted() {
        let (dag, s) = step_dag();
        let o = sort_orders(&dag, s);
        assert_eq!(o[&s], vec![Col::ITER, Col::ITEM]);
    }

    #[test]
    fn projection_renames_and_truncates_prefix() {
        let (mut dag, s) = step_dag();
        // Rename iter→iter1, keep item: prefix carries through.
        let p = dag.add(Op::Project {
            input: s,
            cols: vec![(Col::ITER1, Col::ITER), (Col::ITEM, Col::ITEM)],
        });
        let o = sort_orders(&dag, p);
        assert_eq!(o[&p], vec![Col::ITER1, Col::ITEM]);
        // Dropping iter truncates the prefix to nothing (item alone is not
        // a global order).
        let p2 = dag.add(Op::Project {
            input: s,
            cols: vec![(Col::ITEM, Col::ITEM)],
        });
        let o = sort_orders(&dag, p2);
        assert!(!o.contains_key(&p2));
    }

    #[test]
    fn presorted_check() {
        let input = vec![Col::ITER, Col::ITEM];
        assert!(rownum_is_presorted(
            &input,
            &[SortKey::asc(Col::ITEM)],
            Some(Col::ITER)
        ));
        assert!(rownum_is_presorted(
            &input,
            &[SortKey::asc(Col::ITER)],
            None
        ));
        assert!(!rownum_is_presorted(
            &input,
            &[SortKey::asc(Col::ITEM)],
            None
        ));
        assert!(!rownum_is_presorted(
            &input,
            &[SortKey {
                col: Col::ITEM,
                desc: true
            }],
            Some(Col::ITER)
        ));
        assert!(!rownum_is_presorted(
            &input,
            &[SortKey::asc(Col::ITEM), SortKey::asc(Col::POS)],
            Some(Col::ITER)
        ));
    }

    #[test]
    fn union_kills_the_guarantee() {
        let (mut dag, s) = step_dag();
        let u = dag.add(Op::Union { l: s, r: s });
        let o = sort_orders(&dag, u);
        assert!(!o.contains_key(&u));
    }
}
