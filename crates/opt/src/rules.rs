//! The registry of named rewrite rules and [`RuleSet`], a compact set of
//! rule names used to disable individual rewrites.
//!
//! Every rewrite the optimizer performs is identified by a `&'static str`
//! rule name (the same name recorded in [`OptReport::trace`]
//! (crate::OptReport::trace)). A [`RuleSet`] selects a subset of those
//! names as a bitmask, which keeps [`OptOptions`](crate::OptOptions)
//! `Copy` + `Hash` — the plan cache fingerprints options wholesale, so
//! two configurations that disable different rules must hash differently.
//!
//! The primary consumer is the differential attribution pass of the
//! `exrquy-verify` crate: replaying a diverging query with rules disabled
//! one at a time names the single rewrite responsible for a divergence.

use std::fmt;

/// Every named rewrite rule, in bit order. `"rebuild"` (the identity
/// reconstruction of an operator over rewritten children) is *not* a rule
/// and cannot be disabled.
pub const RULE_NAMES: &[&str] = &[
    "cda-bypass-rownum",
    "cda-bypass-rowid",
    "cda-bypass-attach",
    "cda-bypass-fun",
    "weaken-criteria",
    "weaken-rownum-to-rowid",
    "physical-order",
    "project-prune",
    "project-collapse",
    "project-identity",
    "select-const-true",
    "select-const-false",
    "merge-steps",
    "distinct-dedup",
    "distinct-disjoint-union",
    "union-empty-side",
    "union-align-schema",
    "shard-push-select",
    "shard-push-project",
    "shard-push-fun",
    "shard-push-attach",
    "shard-push-step",
    "shard-push-cross",
    "shard-union-singleton",
    "cost-join-reorder",
    "cost-select-order",
];

/// A set of named rewrite rules, packed into one word.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RuleSet(u32);

impl RuleSet {
    /// The empty set (nothing disabled).
    pub const fn empty() -> Self {
        RuleSet(0)
    }

    /// Every known rule.
    pub fn all() -> Self {
        RuleSet((1u32 << RULE_NAMES.len()) - 1)
    }

    /// Bit index of `rule`, when it names a known rule.
    fn index(rule: &str) -> Option<usize> {
        RULE_NAMES.iter().position(|&r| r == rule)
    }

    /// Is `rule` a known rule name?
    pub fn is_known(rule: &str) -> bool {
        Self::index(rule).is_some()
    }

    /// True when no rule is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of rules in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Add `rule`; returns `false` (set unchanged) for unknown names.
    pub fn insert(&mut self, rule: &str) -> bool {
        match Self::index(rule) {
            Some(i) => {
                self.0 |= 1 << i;
                true
            }
            None => false,
        }
    }

    /// Remove `rule` (no-op for unknown names).
    pub fn remove(&mut self, rule: &str) {
        if let Some(i) = Self::index(rule) {
            self.0 &= !(1 << i);
        }
    }

    /// `self` plus `rule`. Panics on unknown names — use
    /// [`RuleSet::from_names`] for untrusted input.
    pub fn with(mut self, rule: &str) -> Self {
        assert!(self.insert(rule), "unknown rewrite rule `{rule}`");
        self
    }

    /// Set union.
    pub fn union(self, other: RuleSet) -> Self {
        RuleSet(self.0 | other.0)
    }

    /// Does the set contain `rule`? Unknown names are never contained.
    pub fn contains(self, rule: &str) -> bool {
        Self::index(rule).is_some_and(|i| self.0 & (1 << i) != 0)
    }

    /// The rules in the set, in bit order.
    pub fn iter(self) -> impl Iterator<Item = &'static str> {
        RULE_NAMES
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.0 & (1 << i) != 0)
            .map(|(_, &r)| r)
    }

    /// Build a set from rule names, rejecting unknown ones with a message
    /// listing the valid names.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Result<Self, String> {
        let mut set = RuleSet::empty();
        for name in names {
            if !set.insert(name) {
                return Err(format!(
                    "unknown rewrite rule `{name}` (known rules: {})",
                    RULE_NAMES.join(", ")
                ));
            }
        }
        Ok(set)
    }
}

impl fmt::Display for RuleSet {
    /// `{a, b}` in bit order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, rule) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{rule}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter() {
        let mut s = RuleSet::empty();
        assert!(s.is_empty());
        assert!(s.insert("merge-steps"));
        assert!(s.insert("weaken-criteria"));
        assert!(!s.insert("no-such-rule"));
        assert!(s.contains("merge-steps"));
        assert!(s.contains("weaken-criteria"));
        assert!(!s.contains("project-prune"));
        assert!(!s.contains("no-such-rule"));
        assert_eq!(s.len(), 2);
        // Iteration is in bit order, i.e. RULE_NAMES order.
        let listed: Vec<_> = s.iter().collect();
        assert_eq!(listed, vec!["weaken-criteria", "merge-steps"]);
        s.remove("merge-steps");
        assert!(!s.contains("merge-steps"));
    }

    #[test]
    fn all_covers_every_name_and_hashes_distinctly() {
        let all = RuleSet::all();
        assert_eq!(all.len(), RULE_NAMES.len());
        for r in RULE_NAMES {
            assert!(all.contains(r), "{r} missing from RuleSet::all()");
            assert!(RuleSet::is_known(r));
        }
        // Distinct sets are distinct values (the plan cache relies on it).
        assert_ne!(RuleSet::empty().with("merge-steps"), RuleSet::empty());
        assert_ne!(
            RuleSet::empty().with("merge-steps"),
            RuleSet::empty().with("project-prune")
        );
    }

    #[test]
    fn from_names_rejects_unknown() {
        let ok = RuleSet::from_names(["merge-steps", "select-const-true"]).unwrap();
        assert_eq!(ok.len(), 2);
        let err = RuleSet::from_names(["merge-steps", "bogus"]).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("merge-steps"), "{err}");
    }

    #[test]
    fn display_lists_rules() {
        let s = RuleSet::empty().with("merge-steps").with("project-prune");
        assert_eq!(s.to_string(), "{project-prune, merge-steps}");
    }
}
