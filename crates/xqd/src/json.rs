//! Minimal JSON — just enough for the xqd line protocol and the bench
//! report writers. Std-only by the repo's dependency policy.
//!
//! The subset is deliberate: objects, arrays, strings (with `\uXXXX`
//! escapes), i64/f64 numbers, booleans, null. No comments, no trailing
//! commas, no BOM handling — protocol lines are machine-generated.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys are kept in a `BTreeMap` so rendering is
/// deterministic — byte-identical responses matter to the chaos soak's
/// differential check.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers are kept exact; anything with a fraction or exponent
    /// parses as [`Value::Float`].
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// `obj.get("key")` convenience that flattens the object lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Render to a compact single-line string (no whitespace), suitable
    /// for the line-delimited protocol.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{f}"));
                    // `{}` renders 3.0 as "3"; keep it a JSON number either way.
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: build an object from `(key, value)` pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parse error with a byte offset for operator-facing diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Recursion guard: protocol messages are flat; anything deeper than
/// this is hostile input, not a real request.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require the low half.
                                self.pos += 1; // past last hex digit
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(first).ok_or_else(|| self.err("bad code point"))?
                            };
                            s.push(c);
                            // hex4 leaves pos on the last hex digit; advance
                            // past it below like the single-char escapes.
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar. The input came from a &str so
                    // the encoding is already valid.
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let end = (start + len).min(self.bytes.len());
                    s.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| {
                        JsonError {
                            offset: start,
                            message: "invalid utf-8".to_string(),
                        }
                    })?);
                    self.pos = end;
                }
            }
        }
    }

    /// Reads four hex digits starting at `self.pos`, leaving `self.pos`
    /// on the *last* digit (the caller's shared `self.pos += 1` finishes
    /// the advance).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for i in 0..4 {
            let b = self
                .bytes
                .get(self.pos + i)
                .copied()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        self.pos += 3;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // Invariant: the scanned slice contains only ASCII number
        // characters (digits, sign, dot, exponent), so it is valid UTF-8.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let cases = [
            r#"{"id":1,"op":"query","query":"1 + 1"}"#,
            r#"{"a":[1,2.5,-3],"b":true,"c":null,"d":"x\"y\\z"}"#,
            r#"[]"#,
            r#"{}"#,
            r#""é☃""#,
        ];
        for case in cases {
            let v = parse(case).unwrap();
            let rendered = v.render();
            assert_eq!(parse(&rendered).unwrap(), v, "case {case}");
        }
    }

    #[test]
    fn escapes_control_characters_on_render() {
        let v = Value::Str("a\nb\tc\u{1}".to_string());
        assert_eq!(v.render(), r#""a\nb\tc\u0001""#);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Value::Str("\u{1F600}".to_string())
        );
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,2",
            "tru",
            "1.2.3",
            r#""unterminated"#,
            "\u{7f}nope",
            "{\"a\":1} extra",
            &("[".repeat(200) + &"]".repeat(200)),
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn deterministic_object_key_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":2,"m":3,"z":1}"#);
    }
}
