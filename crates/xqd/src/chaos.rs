//! Chaos transport: a deterministic fault-injecting wrapper over the
//! server side of a connection, driven by the `net-*` failpoints.
//!
//! Faults are keyed on per-connection counters with every-n-th
//! semantics ([`Failpoints::tears_write`] & co.), so the fault pattern
//! on any given connection is a pure function of the spec and how many
//! frames crossed it — reconnecting clients see the same pattern again
//! from frame one, which is what makes the chaos arm of the serve-path
//! differential reproducible.
//!
//! The injected faults are the real network failure modes a line
//! protocol must survive:
//!
//! - **torn write**: the frame is flushed in two halves with a pause
//!   between them — framing must not depend on a write being atomic;
//! - **mid-frame disconnect**: half a frame, then a hard socket
//!   shutdown — the client must detect the truncated line and retry;
//! - **slow-loris trickle**: the first bytes dribble out one flush at a
//!   time — readers with timeouts must tolerate slow-but-live peers;
//! - **delayed read**: request reads stall briefly — exercises the
//!   reader's timeout/shutdown polling.

use exrquy_diag::Failpoints;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Per-connection chaos counters plus the armed spec. One instance per
/// connection; `None` (from [`ChaosState::arm`]) when no `net-*`
/// failpoint is armed, so the fast path pays a single `Option` check.
pub(crate) struct ChaosState {
    fp: Failpoints,
    writes: AtomicUsize,
    reads: AtomicUsize,
}

impl ChaosState {
    /// Chaos state for one connection, or `None` when no network
    /// failpoint is armed.
    pub(crate) fn arm(fp: &Failpoints) -> Option<Arc<ChaosState>> {
        fp.any_net_chaos().then(|| {
            Arc::new(ChaosState {
                fp: fp.clone(),
                writes: AtomicUsize::new(0),
                reads: AtomicUsize::new(0),
            })
        })
    }

    /// Write one response frame (line + `\n`), possibly torn, trickled,
    /// or cut short by an injected disconnect.
    pub(crate) fn write_frame(&self, stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
        let nth = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.fp.disconnects_write(nth) {
            // Half a frame, then a hard close: the client sees a
            // truncated line with no newline and must not parse it.
            let cut = frame.len() / 2;
            stream.write_all(&frame[..cut])?;
            stream.flush()?;
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(());
        }
        if self.fp.trickles_write(nth) {
            let head = frame.len().min(16);
            for b in &frame[..head] {
                stream.write_all(std::slice::from_ref(b))?;
                stream.flush()?;
                thread::sleep(Duration::from_micros(200));
            }
            stream.write_all(&frame[head..])?;
            return stream.flush();
        }
        if self.fp.tears_write(nth) {
            let cut = frame.len() / 2;
            stream.write_all(&frame[..cut])?;
            stream.flush()?;
            thread::sleep(Duration::from_millis(1));
            stream.write_all(&frame[cut..])?;
            return stream.flush();
        }
        stream.write_all(frame)?;
        stream.flush()
    }

    /// Called once per request-line read (not per poll, so the counter
    /// stays deterministic); stalls briefly when `net-slow-read` fires.
    pub(crate) fn before_read(&self) {
        let nth = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        if self.fp.delays_read(nth) {
            thread::sleep(Duration::from_millis(2));
        }
    }
}
