//! xqd — serve eXrQuy queries over line-delimited JSON.
//!
//! ```text
//! xqd --listen 127.0.0.1:7077 --doc site.xml=./site.xml \
//!     [--workers <n>] [--queue <n>] [--max-inflight <n>] \
//!     [--drain-grace-ms <ms>] [--deadline-ms <ms>] [--threads <n>] \
//!     [--plan-cache <n>] [--mem-watermark <bytes>] [--inject <spec>]
//! ```
//!
//! The daemon drains gracefully on SIGTERM/SIGINT or a `shutdown` op:
//! queued requests are shed with `EXRQ0008`, in-flight requests get the
//! grace period, stragglers are cancelled.

use exrquy::Session;
use exrquy_diag::Failpoints;
use exrquy_xqd::{spawn, ServerConfig};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const EXIT_USAGE: i32 = 64;
const EXIT_IO: i32 = 4;

fn usage() -> ! {
    eprintln!(
        "usage: xqd --listen <addr> [--doc <url>=<path>]... \\\n\
         \x20        [--workers <n>] [--queue <n>] [--max-inflight <n>] \\\n\
         \x20        [--drain-grace-ms <ms>] [--deadline-ms <ms>] \\\n\
         \x20        [--threads <n>] [--plan-cache <n>] \\\n\
         \x20        [--mem-watermark <bytes>] [--inject <spec>]"
    );
    exit(EXIT_USAGE);
}

static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN_SIGNAL;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_SIGNAL.store(true, Ordering::SeqCst);
    }

    /// Install SIGTERM/SIGINT handlers that flip the shutdown flag. The
    /// main thread polls the flag; no async-signal-unsafe work happens
    /// in the handler itself.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("xqd: {flag} requires a numeric argument");
            exit(EXIT_USAGE);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = ServerConfig::default();
    let mut docs: Vec<(String, String)> = Vec::new();
    let mut listen: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next(),
            "--doc" => {
                let Some(spec) = args.next() else { usage() };
                let Some((url, path)) = spec.split_once('=') else {
                    eprintln!("xqd: --doc wants <url>=<path>, got '{spec}'");
                    exit(EXIT_USAGE);
                };
                docs.push((url.to_string(), path.to_string()));
            }
            "--workers" => cfg.workers = parse_num("--workers", args.next()),
            "--queue" => cfg.queue_capacity = parse_num("--queue", args.next()),
            "--max-inflight" => {
                cfg.max_inflight_per_client = parse_num("--max-inflight", args.next())
            }
            "--drain-grace-ms" => {
                cfg.drain_grace = Duration::from_millis(parse_num("--drain-grace-ms", args.next()))
            }
            "--deadline-ms" => {
                cfg.default_deadline = Some(Duration::from_millis(parse_num(
                    "--deadline-ms",
                    args.next(),
                )))
            }
            "--threads" => cfg.threads = parse_num("--threads", args.next()),
            "--plan-cache" => cfg.plan_cache = Some(parse_num("--plan-cache", args.next())),
            "--mem-watermark" => {
                cfg.mem_watermark = Some(parse_num("--mem-watermark", args.next()))
            }
            "--inject" => {
                let Some(spec) = args.next() else { usage() };
                match Failpoints::parse(&spec) {
                    Ok(fp) => cfg.failpoints = fp,
                    Err(e) => {
                        eprintln!("xqd: --inject: {e}");
                        exit(EXIT_USAGE);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("xqd: unknown flag '{other}'");
                usage();
            }
        }
    }
    let Some(listen) = listen else { usage() };
    cfg.addr = listen;

    let mut session = Session::new();
    for (url, path) in &docs {
        let xml = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("xqd: cannot read {path}: {e}");
            exit(EXIT_IO);
        });
        if let Err(e) = session.load_document(url, &xml) {
            eprintln!("xqd: loading {path}: {}", e.render_line());
            exit(e.class().exit_code());
        }
        eprintln!("xqd: loaded {url} ({} bytes)", xml.len());
    }

    sig::install();
    let handle = match spawn(cfg, session) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("xqd: cannot bind: {e}");
            exit(EXIT_IO);
        }
    };
    eprintln!("xqd: listening on {}", handle.addr());

    handle.wait_for_shutdown(|| SHUTDOWN_SIGNAL.load(Ordering::SeqCst));
    eprintln!("xqd: draining...");
    let stats = handle.shutdown();
    eprintln!(
        "xqd: done — {} completed, {} failed, {} crashed, {} shed \
         ({} overload / {} deadline / {} drain / {} drained), \
         {} workers respawned",
        stats.completed,
        stats.failed,
        stats.crashed,
        stats.shed(),
        stats.shed_overload,
        stats.shed_deadline,
        stats.shed_draining,
        stats.drained,
        stats.workers_respawned,
    );
}
