//! The serving core: bounded admission, deadline shedding, fair
//! dispatch, graceful drain, and hot catalog reload.
//!
//! Threading model (std-only, no async runtime):
//!
//! ```text
//! accept thread ──► reader thread per connection ──► admission queue
//!                                                        │ (bounded,
//!                                                        │  round-robin)
//!                                   worker pool ◄────────┘
//!                                        │
//!                            responses via per-connection writer mutex
//! ```
//!
//! Overload never blocks: a full queue sheds with `EXRQ0006`, an
//! expired deadline sheds with `EXRQ0007` (before *or* during
//! execution — the deadline rides into the engine's budget meter), and
//! a draining server refuses with `EXRQ0008`. Every rejection is a
//! typed response, not a hang.
//!
//! Catalog reload is zero-downtime: `load` parses into a staging
//! builder under a load-serialization lock while queries keep cloning
//! the *previous* [`Executor`] snapshot; the swap itself holds the
//! snapshot write lock only long enough to replace one pointer.
//!
//! Fault containment is layered (see DESIGN.md "Fault containment &
//! self-healing"):
//!
//! 1. **`catch_unwind` around query execution** — an engine panic
//!    answers `EXRQ0009` and the daemon keeps serving; the panicking
//!    run's overlay arena died with the unwind, and a canary probe
//!    checks the shared snapshot still answers.
//! 2. **Worker supervision** — a worker thread that dies outside the
//!    containment region (any non-engine panic) is detected by the
//!    supervisor, its orphaned request answered `EXRQ0009`, its
//!    scheduler accounting repaired, and a replacement worker spawned.
//! 3. **Poison-recovering locks** — every shared mutex recovers from
//!    `PoisonError` instead of propagating it, so a single crash never
//!    cascades into every later lock acquisition.
//!
//! Counters reconcile at all times:
//! `admitted == completed + failed + shed_deadline + drained + crashed`
//! (see [`StatsSnapshot::reconciles`]).

use crate::chaos::ChaosState;
use crate::json::Value;
use crate::proto::{err_response, ok_response, parse_request, Op, MAX_LINE_BYTES};
use exrquy::{Error, Executor, QueryOptions, RunOptions, Session};
use exrquy_diag::{CancellationToken, ErrorCode, Failpoints, MemoryGauge};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poisoning. Shared serving state stays
/// structurally valid across a panicking lock holder (counters and
/// collections are updated in place, never left half-rebuilt), and with
/// panics contained per-request, a poisoned lock must degrade to "keep
/// serving", not "every future request panics too".
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for a daemon instance. `Default` matches the CLI
/// defaults documented in `xqd --help`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker pool size (queries + loads execute here).
    pub workers: usize,
    /// Global admission-queue bound; beyond it requests shed `EXRQ0006`.
    pub queue_capacity: usize,
    /// Per-client in-flight cap — one chatty connection cannot occupy
    /// the whole pool while others starve.
    pub max_inflight_per_client: usize,
    /// How long drain waits for in-flight work before cancelling it.
    pub drain_grace: Duration,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Deterministic fault injection, re-armed per request.
    pub failpoints: Failpoints,
    /// Intra-query worker threads (0 = serial evaluation).
    pub threads: usize,
    /// Plan-cache capacity override for freshly swapped catalogs.
    pub plan_cache: Option<usize>,
    /// Memory high-watermark in bytes over the approximate
    /// constructed-node footprint of all in-flight requests. Above it,
    /// runnable work stays queued (already-expired jobs still shed
    /// cheaply) until in-flight executions release memory. `None`
    /// disables the governor.
    pub mem_watermark: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_inflight_per_client: 2,
            drain_grace: Duration::from_millis(2_000),
            default_deadline: None,
            failpoints: Failpoints::none(),
            threads: 0,
            plan_cache: None,
            mem_watermark: None,
        }
    }
}

/// Monotonic serving counters; every shed path is individually visible
/// so the chaos soak can assert "rejected, not wedged".
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    active_connections: AtomicU64,
    received: AtomicU64,
    proto_errors: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_draining: AtomicU64,
    queue_peak: AtomicU64,
    loads: AtomicU64,
    /// Requests whose execution panicked: contained by `catch_unwind`
    /// or repaired by the supervisor after a worker died.
    crashed: AtomicU64,
    /// Admitted requests shed from the queue at drain time (the
    /// dispatch-time refusal of *unadmitted* work stays in
    /// `shed_draining`, so admission arithmetic reconciles).
    drained: AtomicU64,
    /// Dead worker threads detected and replaced by the supervisor.
    workers_respawned: AtomicU64,
    /// Times a worker found only memory-deferred work (watermark
    /// governor held runnable jobs back).
    mem_deferred: AtomicU64,
}

/// Point-in-time view of the counters, exposed via the `stats` op and
/// [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub connections: u64,
    pub active_connections: u64,
    pub received: u64,
    pub proto_errors: u64,
    pub admitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub shed_overload: u64,
    pub shed_deadline: u64,
    pub shed_draining: u64,
    pub queue_depth: u64,
    pub queue_peak: u64,
    pub loads: u64,
    pub crashed: u64,
    pub drained: u64,
    pub workers_respawned: u64,
    pub mem_deferred: u64,
    pub mem_inflight_bytes: u64,
    pub mem_peak_bytes: u64,
}

impl StatsSnapshot {
    /// Total requests shed (any reason) — the "no hangs" denominator.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_deadline + self.shed_draining + self.drained
    }

    /// The admission ledger balances: every admitted request is
    /// accounted exactly once as completed, failed, deadline-shed,
    /// drain-shed, or crashed. (`shed_overload` and `shed_draining`
    /// refuse *before* admission, so they are outside the ledger.)
    /// Only meaningful when nothing is queued or in flight.
    pub fn reconciles(&self) -> bool {
        self.admitted
            == self.completed + self.failed + self.shed_deadline + self.drained + self.crashed
    }
}

/// One admitted unit of work.
struct Job {
    client: u64,
    id: Value,
    op: Op,
    deadline: Option<Instant>,
    cancel: CancellationToken,
    writer: Arc<ConnWriter>,
}

/// Admission state: per-client FIFO queues plus a round-robin rotation
/// of clients with pending work. Fairness is by *client*, not by
/// arrival order — a burst from one connection cannot starve others.
#[derive(Default)]
struct Sched {
    queues: HashMap<u64, VecDeque<Job>>,
    rotation: VecDeque<u64>,
    queued: usize,
    inflight: HashMap<u64, usize>,
    inflight_total: usize,
    stopped: bool,
}

/// What the supervisor needs to answer for a request whose worker died
/// mid-job: enough to send the `EXRQ0009` response and repair the
/// scheduler's in-flight accounting.
struct OrphanJob {
    client: u64,
    id: Value,
    writer: Arc<ConnWriter>,
    cancel: CancellationToken,
}

/// One named catalog beyond the default: its staging session plus the
/// executor snapshot queries routed at it will clone. Same split as the
/// default `exec`/`loader` pair on [`Shared`].
struct NamedCatalog {
    exec: RwLock<Executor>,
    loader: Mutex<Session>,
}

struct Shared {
    cfg: ServerConfig,
    /// Current executor snapshot; queries clone it (two `Arc` bumps) and
    /// run lock-free afterwards.
    exec: RwLock<Executor>,
    /// Serializes catalog loads; owns the staging session.
    loader: Mutex<Session>,
    /// Named catalogs, created lazily by the first `load` that names
    /// one. Queries carrying a `catalog` field route here; the map lock
    /// is held only long enough to clone the entry's `Arc`.
    catalogs: RwLock<HashMap<String, Arc<NamedCatalog>>>,
    sched: Mutex<Sched>,
    work_ready: Condvar,
    draining: AtomicBool,
    /// True while a catalog reload is staging — flips `/ready` off.
    reloading: AtomicBool,
    stop_readers: AtomicBool,
    stop_supervisor: AtomicBool,
    shutdown_requested: AtomicBool,
    shutdown_cv: Condvar,
    shutdown_mx: Mutex<()>,
    counters: Counters,
    /// Cancellation tokens of in-flight runs, cancelled en masse when
    /// the drain grace period expires.
    active_runs: Mutex<Vec<CancellationToken>>,
    /// Shared memory gauge for the watermark governor; every in-flight
    /// engine publishes its constructed-node bytes here.
    gauge: MemoryGauge,
    /// `running[i]` is what worker `i` is executing right now — the
    /// supervisor's repair manifest when a worker dies.
    running: Mutex<Vec<Option<OrphanJob>>>,
    /// Monotone count of jobs started by the pool, for `worker-kill:<n>`.
    jobs_started: AtomicU64,
    /// Worker join handles, indexed by worker slot; `None` while a slot
    /// is being respawned or after shutdown joined it. Shared with the
    /// supervisor (which takes, joins, and replaces dead workers) and
    /// the `health` probe.
    workers: Mutex<Vec<Option<thread::JoinHandle<()>>>>,
    started_at: Instant,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let queued = lock_recover(&self.sched).queued as u64;
        let c = &self.counters;
        StatsSnapshot {
            connections: c.connections.load(Ordering::Relaxed),
            active_connections: c.active_connections.load(Ordering::Relaxed),
            received: c.received.load(Ordering::Relaxed),
            proto_errors: c.proto_errors.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed_overload: c.shed_overload.load(Ordering::Relaxed),
            shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
            shed_draining: c.shed_draining.load(Ordering::Relaxed),
            queue_depth: queued,
            queue_peak: c.queue_peak.load(Ordering::Relaxed),
            loads: c.loads.load(Ordering::Relaxed),
            crashed: c.crashed.load(Ordering::Relaxed),
            drained: c.drained.load(Ordering::Relaxed),
            workers_respawned: c.workers_respawned.load(Ordering::Relaxed),
            mem_deferred: c.mem_deferred.load(Ordering::Relaxed),
            mem_inflight_bytes: self.gauge.bytes_in_flight() as u64,
            mem_peak_bytes: self.gauge.peak_bytes() as u64,
        }
    }

    fn request_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.shutdown_requested.store(true, Ordering::SeqCst);
        let _guard = lock_recover(&self.shutdown_mx);
        self.shutdown_cv.notify_all();
    }

    /// Worker threads currently alive (not crashed, not yet joined).
    fn workers_alive(&self) -> usize {
        lock_recover(&self.workers)
            .iter()
            .filter(|h| h.as_ref().is_some_and(|h| !h.is_finished()))
            .count()
    }
}

/// Per-connection serialized writer. Workers and the reader thread both
/// respond through this, so response lines never interleave. Carries
/// the connection's chaos-transport state when `net-*` failpoints are
/// armed.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    chaos: Option<Arc<ChaosState>>,
}

impl ConnWriter {
    /// Best-effort write; a dead client is not an error worth handling
    /// beyond dropping the bytes.
    fn send(&self, line: &str) {
        let mut guard = lock_recover(&self.stream);
        match &self.chaos {
            None => {
                let _ = guard.write_all(line.as_bytes());
                let _ = guard.write_all(b"\n");
                let _ = guard.flush();
            }
            Some(chaos) => {
                let mut frame = Vec::with_capacity(line.len() + 1);
                frame.extend_from_slice(line.as_bytes());
                frame.push(b'\n');
                let _ = chaos.write_frame(&mut guard, &frame);
            }
        }
    }
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves threads running; tests and the
/// binary always drain explicitly.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
    supervisor: Option<thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// True once a `shutdown` op or [`request_shutdown`] fired.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Trigger drain from outside the protocol (SIGTERM path).
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until shutdown is requested (protocol `shutdown` op or
    /// [`request_shutdown`]), polling `interrupted` so a signal flag can
    /// break the wait.
    pub fn wait_for_shutdown(&self, interrupted: impl Fn() -> bool) {
        let mut guard = lock_recover(&self.shared.shutdown_mx);
        while !self.shared.shutdown_requested.load(Ordering::SeqCst) && !interrupted() {
            let (g, _) = self
                .shared
                .shutdown_cv
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }

    /// Drain and stop: refuse new work, shed the queue with `EXRQ0008`,
    /// give in-flight requests `drain_grace` to finish, cancel whatever
    /// is still running, then join every thread. Returns the final
    /// counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        let shared = Arc::clone(&self.shared);
        shared.request_shutdown();

        // Shed everything still queued — typed refusal, not silence.
        // These were *admitted*, so they count as `drained`, keeping the
        // admission ledger in balance.
        {
            let mut sched = lock_recover(&shared.sched);
            for (_, queue) in sched.queues.iter_mut() {
                for job in queue.drain(..) {
                    shared.counters.drained.fetch_add(1, Ordering::Relaxed);
                    job.writer.send(&err_response(
                        &job.id,
                        ErrorCode::EXRQ0008.as_str(),
                        "server draining: request rejected during shutdown",
                    ));
                }
            }
            sched.queues.clear();
            sched.rotation.clear();
            sched.queued = 0;
            shared.work_ready.notify_all();
        }

        // Grace period for in-flight work.
        let deadline = Instant::now() + shared.cfg.drain_grace;
        {
            let mut sched = lock_recover(&shared.sched);
            while sched.inflight_total > 0 && Instant::now() < deadline {
                let timeout = deadline.saturating_duration_since(Instant::now());
                let (g, _) = shared
                    .work_ready
                    .wait_timeout(sched, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
                sched = g;
            }
        }

        // Grace expired: cancel stragglers, then wait for them to yield
        // at the next budget poll.
        for token in lock_recover(&shared.active_runs).iter() {
            token.cancel();
        }
        {
            let hard_stop = Instant::now() + shared.cfg.drain_grace;
            let mut sched = lock_recover(&shared.sched);
            while sched.inflight_total > 0 && Instant::now() < hard_stop {
                let timeout = hard_stop.saturating_duration_since(Instant::now());
                let (g, _) = shared
                    .work_ready
                    .wait_timeout(sched, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
                sched = g;
            }
        }

        // Stop the supervisor *before* stopping workers: workers exiting
        // normally on `stopped` must not look like crashes to respawn.
        shared.stop_supervisor.store(true, Ordering::SeqCst);
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        {
            let mut sched = lock_recover(&shared.sched);
            sched.stopped = true;
            shared.work_ready.notify_all();
        }
        shared.stop_readers.store(true, Ordering::SeqCst);

        let workers: Vec<_> = lock_recover(&shared.workers)
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(acceptor) = self.accept_thread.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *lock_recover(&self.readers));
        for reader in readers {
            let _ = reader.join();
        }
        shared.snapshot()
    }
}

/// Bind, spawn the pool, and start accepting. `session` supplies the
/// initial catalog (documents already loaded) and stays on as the
/// staging area for `load` ops.
pub fn spawn(cfg: ServerConfig, mut session: Session) -> io::Result<ServerHandle> {
    if let Some(capacity) = cfg.plan_cache {
        session.set_plan_cache_capacity(capacity);
    }
    session.set_failpoints(cfg.failpoints.clone());
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        exec: RwLock::new(session.executor().clone()),
        loader: Mutex::new(session),
        catalogs: RwLock::new(HashMap::new()),
        sched: Mutex::new(Sched::default()),
        work_ready: Condvar::new(),
        draining: AtomicBool::new(false),
        reloading: AtomicBool::new(false),
        stop_readers: AtomicBool::new(false),
        stop_supervisor: AtomicBool::new(false),
        shutdown_requested: AtomicBool::new(false),
        shutdown_cv: Condvar::new(),
        shutdown_mx: Mutex::new(()),
        counters: Counters::default(),
        active_runs: Mutex::new(Vec::new()),
        gauge: MemoryGauge::new(),
        running: Mutex::new((0..workers).map(|_| None).collect()),
        jobs_started: AtomicU64::new(0),
        workers: Mutex::new((0..workers).map(|_| None).collect()),
        started_at: Instant::now(),
        cfg,
    });

    {
        let mut handles = lock_recover(&shared.workers);
        for (n, slot) in handles.iter_mut().enumerate() {
            *slot = Some(spawn_worker(&shared, n)?);
        }
    }

    let supervisor_shared = Arc::clone(&shared);
    let supervisor = thread::Builder::new()
        .name("xqd-supervisor".to_string())
        .spawn(move || supervisor_loop(&supervisor_shared))?;

    let readers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_shared = Arc::clone(&shared);
    let accept_readers = Arc::clone(&readers);
    let accept_thread = thread::Builder::new()
        .name("xqd-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared, accept_readers))?;

    Ok(ServerHandle {
        shared,
        addr,
        accept_thread: Some(accept_thread),
        supervisor: Some(supervisor),
        readers,
    })
}

fn spawn_worker(shared: &Arc<Shared>, slot: usize) -> io::Result<thread::JoinHandle<()>> {
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("xqd-worker-{slot}"))
        .spawn(move || worker_loop(&shared, slot))
}

/// Worker supervision: detect worker threads that died (any panic that
/// escaped per-request containment), answer their orphaned request with
/// `EXRQ0009`, repair the scheduler's in-flight accounting, and spawn a
/// replacement into the same slot. Polls at a coarse interval — worker
/// death is rare, so detection latency matters less than overhead.
fn supervisor_loop(shared: &Arc<Shared>) {
    while !shared.stop_supervisor.load(Ordering::SeqCst) {
        let dead: Vec<usize> = {
            let handles = lock_recover(&shared.workers);
            handles
                .iter()
                .enumerate()
                .filter(|(_, h)| h.as_ref().is_some_and(|h| h.is_finished()))
                .map(|(slot, _)| slot)
                .collect()
        };
        for slot in dead {
            // Re-check under the race with shutdown: a worker exiting
            // normally on `stopped` must be joined by shutdown, not us.
            if shared.stop_supervisor.load(Ordering::SeqCst) {
                return;
            }
            let handle = lock_recover(&shared.workers)[slot].take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
            if let Some(orphan) = lock_recover(&shared.running)[slot].take() {
                shared.counters.crashed.fetch_add(1, Ordering::Relaxed);
                orphan.writer.send(&err_response(
                    &orphan.id,
                    ErrorCode::EXRQ0009.as_str(),
                    "internal error: worker thread died while executing this request",
                ));
                lock_recover(&shared.active_runs).retain(|t| !t.same_as(&orphan.cancel));
                let mut sched = lock_recover(&shared.sched);
                if let Some(n) = sched.inflight.get_mut(&orphan.client) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        sched.inflight.remove(&orphan.client);
                    }
                }
                sched.inflight_total = sched.inflight_total.saturating_sub(1);
                shared.work_ready.notify_all();
            }
            shared
                .counters
                .workers_respawned
                .fetch_add(1, Ordering::Relaxed);
            // On spawn failure (resource exhaustion) the slot stays
            // empty: the pool shrinks rather than the daemon dying.
            if let Ok(h) = spawn_worker(shared, slot) {
                lock_recover(&shared.workers)[slot] = Some(h);
            }
        }
        thread::sleep(Duration::from_millis(20));
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    readers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    let mut next_client = 0u64;
    loop {
        if shared.stop_readers.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                next_client += 1;
                let client = next_client;
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .active_connections
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name(format!("xqd-conn-{client}"))
                    .spawn(move || {
                        connection_loop(conn_shared.as_ref(), stream, client);
                    });
                match handle {
                    Ok(h) => lock_recover(&readers).push(h),
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion):
                        // shed the connection rather than wedging.
                        shared
                            .counters
                            .active_connections
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Outcome of pulling one line off a connection.
enum Line {
    /// A complete line within the size cap.
    Full(String),
    /// The line blew past [`MAX_LINE_BYTES`]; the excess was *discarded
    /// in bounded chunks*, never buffered.
    TooLong,
    /// Peer closed (EOF or reset) or the server is stopping.
    Closed,
}

fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
    chaos: Option<&ChaosState>,
) -> Line {
    // Chaos read-delay fires per line read, not per poll iteration, so
    // the per-connection counter stays deterministic.
    if let Some(chaos) = chaos {
        chaos.before_read();
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        if shared.stop_readers.load(Ordering::SeqCst) {
            return Line::Closed;
        }
        let (copied, done) = {
            let available = match reader.fill_buf() {
                Ok([]) => return Line::Closed,
                Ok(data) => data,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Line::Closed,
            };
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !discarding {
                        buf.extend_from_slice(&available[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !discarding {
                        buf.extend_from_slice(available);
                    }
                    (available.len(), false)
                }
            }
        };
        reader.consume(copied);
        if !discarding && buf.len() > MAX_LINE_BYTES {
            buf = Vec::new();
            discarding = true;
        }
        if done {
            if discarding {
                return Line::TooLong;
            }
            match String::from_utf8(buf) {
                Ok(mut s) => {
                    if s.ends_with('\r') {
                        s.pop();
                    }
                    return Line::Full(s);
                }
                Err(_) => return Line::TooLong,
            }
        }
    }
}

/// Per-connection keep-alive state, surfaced through the `stats` op.
struct ConnState {
    /// Requests received on this connection (valid or not).
    requests: AtomicU64,
    opened: Instant,
}

fn connection_loop(shared: &Shared, stream: TcpStream, client: u64) {
    // Short read timeouts keep the reader responsive to shutdown even
    // when the peer holds the connection open silently.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let chaos = ChaosState::arm(&shared.cfg.failpoints);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
            chaos: chaos.clone(),
        }),
        Err(_) => {
            shared
                .counters
                .active_connections
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let conn = ConnState {
        requests: AtomicU64::new(0),
        opened: Instant::now(),
    };

    loop {
        match read_line_capped(&mut reader, shared, chaos.as_deref()) {
            Line::Closed => break,
            Line::TooLong => {
                shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                conn.requests.fetch_add(1, Ordering::Relaxed);
                writer.send(&err_response(
                    &Value::Null,
                    ErrorCode::EPROTO.as_str(),
                    &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                ));
            }
            Line::Full(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                shared.counters.received.fetch_add(1, Ordering::Relaxed);
                conn.requests.fetch_add(1, Ordering::Relaxed);
                let request = match parse_request(&line) {
                    Ok(r) => r,
                    Err(e) => {
                        shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                        writer.send(&err_response(&e.id, ErrorCode::EPROTO.as_str(), &e.message));
                        continue;
                    }
                };
                dispatch(shared, client, &writer, request.id, request.op, &conn);
            }
        }
    }
    shared
        .counters
        .active_connections
        .fetch_sub(1, Ordering::Relaxed);
}

/// Route one parsed request: cheap ops answer inline on the reader
/// thread; queries and loads go through admission control. Probe ops
/// (`health`, `ready`) deliberately answer inline *before* the draining
/// check — probes must respond even while the server refuses work.
fn dispatch(
    shared: &Shared,
    client: u64,
    writer: &Arc<ConnWriter>,
    id: Value,
    op: Op,
    conn: &ConnState,
) {
    match op {
        Op::Ping => writer.send(&ok_response(&id, vec![("pong", Value::Bool(true))])),
        Op::Health => {
            let alive = shared.workers_alive();
            writer.send(&ok_response(
                &id,
                vec![
                    ("alive", Value::Bool(true)),
                    ("workers", Value::Int(shared.cfg.workers.max(1) as i64)),
                    ("workers_alive", Value::Int(alive as i64)),
                    (
                        "workers_respawned",
                        Value::Int(shared.counters.workers_respawned.load(Ordering::Relaxed)
                            as i64),
                    ),
                    (
                        "crashed",
                        Value::Int(shared.counters.crashed.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "uptime_ms",
                        Value::Int(shared.started_at.elapsed().as_millis() as i64),
                    ),
                ],
            ));
        }
        Op::Ready => {
            let draining = shared.draining.load(Ordering::SeqCst);
            let reloading = shared.reloading.load(Ordering::SeqCst);
            writer.send(&ok_response(
                &id,
                vec![
                    ("ready", Value::Bool(!draining && !reloading)),
                    ("draining", Value::Bool(draining)),
                    ("reloading", Value::Bool(reloading)),
                ],
            ));
        }
        Op::Stats => {
            let s = shared.snapshot();
            let cache = shared
                .exec
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .cache_stats();
            writer.send(&ok_response(
                &id,
                vec![
                    ("connections", Value::Int(s.connections as i64)),
                    (
                        "active_connections",
                        Value::Int(s.active_connections as i64),
                    ),
                    ("received", Value::Int(s.received as i64)),
                    ("proto_errors", Value::Int(s.proto_errors as i64)),
                    ("admitted", Value::Int(s.admitted as i64)),
                    ("completed", Value::Int(s.completed as i64)),
                    ("failed", Value::Int(s.failed as i64)),
                    ("shed_overload", Value::Int(s.shed_overload as i64)),
                    ("shed_deadline", Value::Int(s.shed_deadline as i64)),
                    ("shed_draining", Value::Int(s.shed_draining as i64)),
                    ("queue_depth", Value::Int(s.queue_depth as i64)),
                    ("queue_peak", Value::Int(s.queue_peak as i64)),
                    ("loads", Value::Int(s.loads as i64)),
                    ("crashed", Value::Int(s.crashed as i64)),
                    ("drained", Value::Int(s.drained as i64)),
                    ("workers_respawned", Value::Int(s.workers_respawned as i64)),
                    ("mem_deferred", Value::Int(s.mem_deferred as i64)),
                    (
                        "mem_inflight_bytes",
                        Value::Int(s.mem_inflight_bytes as i64),
                    ),
                    ("mem_peak_bytes", Value::Int(s.mem_peak_bytes as i64)),
                    (
                        "conn_requests",
                        Value::Int(conn.requests.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "conn_lifetime_ms",
                        Value::Int(conn.opened.elapsed().as_millis() as i64),
                    ),
                    ("plan_cache_hits", Value::Int(cache.hits as i64)),
                    ("plan_cache_misses", Value::Int(cache.misses as i64)),
                ],
            ));
        }
        Op::Shutdown => {
            writer.send(&ok_response(&id, vec![("draining", Value::Bool(true))]));
            shared.request_shutdown();
        }
        op @ (Op::Query { .. } | Op::Load { .. }) => {
            if shared.draining.load(Ordering::SeqCst) {
                shared
                    .counters
                    .shed_draining
                    .fetch_add(1, Ordering::Relaxed);
                writer.send(&err_response(
                    &id,
                    ErrorCode::EXRQ0008.as_str(),
                    "server draining: no new work admitted",
                ));
                return;
            }
            let deadline_ms = match &op {
                Op::Query { deadline_ms, .. } => *deadline_ms,
                _ => None,
            };
            let deadline = deadline_ms
                .map(Duration::from_millis)
                .or(shared.cfg.default_deadline)
                .map(|d| Instant::now() + d);
            let job = Job {
                client,
                id,
                op,
                deadline,
                cancel: CancellationToken::new(),
                writer: Arc::clone(writer),
            };
            submit(shared, job);
        }
    }
}

/// Admission control: bounded queue, queue-depth-aware rejection.
fn submit(shared: &Shared, job: Job) {
    let mut sched = lock_recover(&shared.sched);
    if sched.queued >= shared.cfg.queue_capacity {
        shared
            .counters
            .shed_overload
            .fetch_add(1, Ordering::Relaxed);
        drop(sched);
        job.writer.send(&err_response(
            &job.id,
            ErrorCode::EXRQ0006.as_str(),
            &format!(
                "server overloaded: admission queue full ({} queued)",
                shared.cfg.queue_capacity
            ),
        ));
        return;
    }
    let client = job.client;
    sched.queues.entry(client).or_default().push_back(job);
    if !sched.rotation.contains(&client) {
        sched.rotation.push_back(client);
    }
    sched.queued += 1;
    shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .queue_peak
        .fetch_max(sched.queued as u64, Ordering::Relaxed);
    shared.work_ready.notify_one();
}

/// Pop the next runnable job respecting round-robin fairness, the
/// per-client in-flight cap, and the memory watermark. Returns `None`
/// when nothing is eligible.
fn next_job(shared: &Shared, sched: &mut Sched) -> Option<Job> {
    let cap = shared.cfg.max_inflight_per_client.max(1);
    // Over the watermark, runnable work stays queued until in-flight
    // executions release memory; jobs already past their deadline still
    // pop (they shed immediately without running, freeing the queue).
    let over_watermark = shared
        .cfg
        .mem_watermark
        .is_some_and(|w| shared.gauge.bytes_in_flight() > w);
    let mut deferred = false;
    for _ in 0..sched.rotation.len() {
        // Invariant: the loop runs at most rotation.len() times and only
        // rotates (never drains) within an iteration, so front() exists.
        let client = *sched.rotation.front().unwrap();
        let running = sched.inflight.get(&client).copied().unwrap_or(0);
        if running >= cap {
            // At its cap: rotate past, give others a chance.
            sched.rotation.rotate_left(1);
            continue;
        }
        if over_watermark {
            let expired = sched.queues[&client]
                .front()
                .is_some_and(|j| j.deadline.is_some_and(|at| Instant::now() >= at));
            if !expired {
                deferred = true;
                sched.rotation.rotate_left(1);
                continue;
            }
        }
        // Invariant: a client stays in the rotation only while its queue
        // is non-empty (both are pruned together below), so the queue
        // exists and has a front job.
        let queue = sched.queues.get_mut(&client).unwrap();
        let job = queue.pop_front().unwrap();
        if queue.is_empty() {
            sched.queues.remove(&client);
            sched.rotation.pop_front();
        } else {
            sched.rotation.rotate_left(1);
        }
        sched.queued -= 1;
        *sched.inflight.entry(client).or_insert(0) += 1;
        sched.inflight_total += 1;
        return Some(job);
    }
    if deferred {
        shared.counters.mem_deferred.fetch_add(1, Ordering::Relaxed);
    }
    None
}

fn worker_loop(shared: &Shared, slot: usize) {
    loop {
        let job = {
            let mut sched = lock_recover(&shared.sched);
            loop {
                if sched.stopped {
                    return;
                }
                if let Some(job) = next_job(shared, &mut sched) {
                    break job;
                }
                // With a watermark configured the wait must time out:
                // memory can drain without a scheduler event (a parallel
                // engine's workers release as they go), so re-check
                // periodically instead of sleeping until notified.
                sched = if shared.cfg.mem_watermark.is_some() {
                    shared
                        .work_ready
                        .wait_timeout(sched, Duration::from_millis(25))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                } else {
                    shared
                        .work_ready
                        .wait(sched)
                        .unwrap_or_else(PoisonError::into_inner)
                };
            }
        };
        // Register in the supervisor's manifest *before* running: if
        // this thread dies inside run_job, the supervisor knows which
        // request to answer and which accounting to repair.
        lock_recover(&shared.running)[slot] = Some(OrphanJob {
            client: job.client,
            id: job.id.clone(),
            writer: Arc::clone(&job.writer),
            cancel: job.cancel.clone(),
        });
        let seq = shared.jobs_started.fetch_add(1, Ordering::Relaxed) + 1;
        if shared.cfg.failpoints.kills_worker_at(seq as usize) {
            // Deliberately OUTSIDE the catch_unwind containment region
            // and holding no lock: this panic kills the worker thread
            // itself, which is exactly what supervision exists for.
            panic!("injected worker death at job {seq} (worker-kill:<n> failpoint)");
        }
        run_job(shared, &job);
        lock_recover(&shared.running)[slot] = None;
        let mut sched = lock_recover(&shared.sched);
        if let Some(n) = sched.inflight.get_mut(&job.client) {
            *n -= 1;
            if *n == 0 {
                sched.inflight.remove(&job.client);
            }
        }
        sched.inflight_total -= 1;
        // A completion can unblock a capped client *and* the drain wait.
        shared.work_ready.notify_all();
    }
}

fn run_job(shared: &Shared, job: &Job) {
    // Shed before spending any work if the deadline already passed
    // while the request sat in the queue.
    if let Some(at) = job.deadline {
        if Instant::now() >= at {
            shared
                .counters
                .shed_deadline
                .fetch_add(1, Ordering::Relaxed);
            job.writer.send(&err_response(
                &job.id,
                ErrorCode::EXRQ0007.as_str(),
                "request deadline exceeded while queued",
            ));
            return;
        }
    }
    lock_recover(&shared.active_runs).push(job.cancel.clone());
    let response = match &job.op {
        Op::Query {
            query,
            baseline,
            catalog,
            ..
        } => run_query(shared, job, query, *baseline, catalog.as_deref()),
        Op::Load {
            url,
            xml,
            catalog,
            shards,
        } => run_load(shared, job, url, xml, catalog.as_deref(), *shards),
        // Ping/Stats/probes/Shutdown never reach the queue.
        _ => err_response(
            &job.id,
            ErrorCode::EPROTO.as_str(),
            "op not valid for worker",
        ),
    };
    lock_recover(&shared.active_runs).retain(|t| !t.same_as(&job.cancel));
    job.writer.send(&response);
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("panic payload of unknown type")
}

fn run_query(
    shared: &Shared,
    job: &Job,
    query: &str,
    baseline: bool,
    catalog: Option<&str>,
) -> String {
    let exec = match catalog {
        None => shared
            .exec
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone(),
        Some(name) => {
            let entry = shared
                .catalogs
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .get(name)
                .cloned();
            match entry {
                Some(c) => c
                    .exec
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
                None => {
                    // An admitted request must settle the ledger even
                    // when routing fails before the engine runs.
                    shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                    return err_response(
                        &job.id,
                        ErrorCode::FODC0002.as_str(),
                        &format!("unknown catalog `{name}` (load into it first)"),
                    );
                }
            }
        }
    };
    let mut opts = if baseline {
        QueryOptions::baseline()
    } else {
        QueryOptions::order_indifferent()
    };
    if shared.cfg.threads > 0 {
        opts = opts.with_threads(shared.cfg.threads);
    }
    let run = RunOptions {
        deadline: job.deadline,
        cancel: Some(job.cancel.clone()),
        failpoints: if shared.cfg.failpoints.is_empty() {
            None
        } else {
            Some(shared.cfg.failpoints.clone())
        },
        gauge: Some(shared.gauge.clone()),
    };
    // Panic containment. Unwind-safety audit of the captured state:
    //  - `exec` is this request's own clone of the executor; its shared
    //    pieces are the immutable `Arc<Catalog>` (never mutated by
    //    execution) and the plan cache, whose lock recovers from
    //    poisoning and whose map operations leave it structurally valid;
    //  - `opts` / `run` are request-owned;
    //  - the `FragArena` overlay is created *inside* `execute_with` and
    //    dropped by the unwind itself — a half-built overlay cannot leak
    //    into any other request because no other request can reach it;
    //  - the memory gauge charge is released by `MemoryTracker::Drop`
    //    during the unwind.
    // Hence `AssertUnwindSafe` is sound: observing this state after a
    // panic cannot expose a broken invariant.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.prepare(query, &opts)
            .and_then(|plan| exec.execute_with(&plan, &run))
    }));
    match result {
        Ok(Ok(out)) => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            ok_response(&job.id, vec![("result", Value::Str(out.to_xml()))])
        }
        Ok(Err(e)) => query_error_response(shared, &job.id, &e),
        Err(payload) => {
            shared.counters.crashed.fetch_add(1, Ordering::Relaxed);
            // Poison detection: the panicking run's overlay died with
            // its arena; the shared snapshot must still answer. A
            // canary probe (no failpoints, no deadline) turns that
            // from an assumption into a checked invariant. Wrapped in
            // its own catch_unwind so a truly poisoned pool degrades
            // to a typed response, not a dead worker.
            let canary = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                exec.prepare("1", &QueryOptions::order_indifferent())
                    .and_then(|plan| exec.execute_with(&plan, &RunOptions::default()))
                    .is_ok()
            }));
            let pool_intact = matches!(canary, Ok(true));
            debug_assert!(pool_intact, "shared executor poisoned by a contained panic");
            if !pool_intact {
                eprintln!("xqd: WARNING: canary probe failed after contained panic");
            }
            err_response(
                &job.id,
                ErrorCode::EXRQ0009.as_str(),
                &format!(
                    "internal error: request execution panicked ({}); overlay discarded",
                    panic_message(payload.as_ref())
                ),
            )
        }
    }
}

fn query_error_response(shared: &Shared, id: &Value, e: &Error) -> String {
    let code = e.code();
    if code == ErrorCode::EXRQ0007 {
        shared
            .counters
            .shed_deadline
            .fetch_add(1, Ordering::Relaxed);
    } else {
        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
    }
    err_response(id, code.as_str(), &e.render_line())
}

/// Hot catalog reload: parse into the staging session under the load
/// lock, then swap the executor snapshot. Queries in flight keep their
/// pre-swap snapshot; new queries see the new catalog immediately.
/// Readiness flips off for the duration — a probe-driven balancer stops
/// routing to an instance that is mid-reload.
fn run_load(
    shared: &Shared,
    job: &Job,
    url: &str,
    xml: &str,
    catalog: Option<&str>,
    shards: Option<usize>,
) -> String {
    shared.reloading.store(true, Ordering::SeqCst);
    let response = match catalog {
        None => {
            let mut session = lock_recover(&shared.loader);
            load_into(
                shared,
                job,
                &mut session,
                &shared.exec,
                url,
                xml,
                shards,
                false,
            )
        }
        Some(name) => {
            // Get-or-create the named catalog, then stage under *its*
            // loader lock — loads into different catalogs do not
            // serialize against each other or against the default.
            let entry = {
                let mut map = shared
                    .catalogs
                    .write()
                    .unwrap_or_else(PoisonError::into_inner);
                map.entry(name.to_string())
                    .or_insert_with(|| {
                        let session = Session::new();
                        Arc::new(NamedCatalog {
                            exec: RwLock::new(session.executor().clone()),
                            loader: Mutex::new(session),
                        })
                    })
                    .clone()
            };
            let mut session = lock_recover(&entry.loader);
            load_into(
                shared,
                job,
                &mut session,
                &entry.exec,
                url,
                xml,
                shards,
                true,
            )
        }
    };
    shared.reloading.store(false, Ordering::SeqCst);
    response
}

/// Stage `url` into `session`, apply a requested shard count, and
/// publish the fresh executor snapshot. The default catalog stages
/// eagerly (`lazy == false`) so malformed documents are rejected at
/// load time, exactly as before catalogs were routable; named catalogs
/// stage lazily — the corpus case — deferring each tree parse until the
/// first query that can touch it, under that run's budget and
/// cancellation (see `Executor` lazy materialization).
#[allow(clippy::too_many_arguments)]
fn load_into(
    shared: &Shared,
    job: &Job,
    session: &mut Session,
    exec: &RwLock<Executor>,
    url: &str,
    xml: &str,
    shards: Option<usize>,
    lazy: bool,
) -> String {
    let staged = if lazy {
        session.load_document_lazy(url, xml);
        Ok(())
    } else {
        session.load_document(url, xml)
    };
    match staged {
        Ok(()) => {
            if let Some(n) = shards {
                session.set_shards(n);
            }
            let fresh = session.executor().clone();
            *exec.write().unwrap_or_else(PoisonError::into_inner) = fresh;
            shared.counters.loads.fetch_add(1, Ordering::Relaxed);
            // A load is an admitted request that ran to success: it
            // counts into `completed` (and `loads`), keeping the
            // admission ledger in balance.
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            ok_response(
                &job.id,
                vec![
                    ("nodes", Value::Int(session.store_nodes() as i64)),
                    ("shards", Value::Int(session.shard_count() as i64)),
                ],
            )
        }
        Err(e) => query_error_response(shared, &job.id, &e),
    }
}
