//! The serving core: bounded admission, deadline shedding, fair
//! dispatch, graceful drain, and hot catalog reload.
//!
//! Threading model (std-only, no async runtime):
//!
//! ```text
//! accept thread ──► reader thread per connection ──► admission queue
//!                                                        │ (bounded,
//!                                                        │  round-robin)
//!                                   worker pool ◄────────┘
//!                                        │
//!                            responses via per-connection writer mutex
//! ```
//!
//! Overload never blocks: a full queue sheds with `EXRQ0006`, an
//! expired deadline sheds with `EXRQ0007` (before *or* during
//! execution — the deadline rides into the engine's budget meter), and
//! a draining server refuses with `EXRQ0008`. Every rejection is a
//! typed response, not a hang.
//!
//! Catalog reload is zero-downtime: `load` parses into a staging
//! builder under a load-serialization lock while queries keep cloning
//! the *previous* [`Executor`] snapshot; the swap itself holds the
//! snapshot write lock only long enough to replace one pointer.

use crate::json::Value;
use crate::proto::{err_response, ok_response, parse_request, Op, MAX_LINE_BYTES};
use exrquy::{Error, Executor, QueryOptions, RunOptions, Session};
use exrquy_diag::{CancellationToken, ErrorCode, Failpoints};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for a daemon instance. `Default` matches the CLI
/// defaults documented in `xqd --help`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker pool size (queries + loads execute here).
    pub workers: usize,
    /// Global admission-queue bound; beyond it requests shed `EXRQ0006`.
    pub queue_capacity: usize,
    /// Per-client in-flight cap — one chatty connection cannot occupy
    /// the whole pool while others starve.
    pub max_inflight_per_client: usize,
    /// How long drain waits for in-flight work before cancelling it.
    pub drain_grace: Duration,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Deterministic fault injection, re-armed per request.
    pub failpoints: Failpoints,
    /// Intra-query worker threads (0 = serial evaluation).
    pub threads: usize,
    /// Plan-cache capacity override for freshly swapped catalogs.
    pub plan_cache: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_inflight_per_client: 2,
            drain_grace: Duration::from_millis(2_000),
            default_deadline: None,
            failpoints: Failpoints::none(),
            threads: 0,
            plan_cache: None,
        }
    }
}

/// Monotonic serving counters; every shed path is individually visible
/// so the chaos soak can assert "rejected, not wedged".
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    active_connections: AtomicU64,
    received: AtomicU64,
    proto_errors: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_draining: AtomicU64,
    queue_peak: AtomicU64,
    loads: AtomicU64,
}

/// Point-in-time view of the counters, exposed via the `stats` op and
/// [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub connections: u64,
    pub active_connections: u64,
    pub received: u64,
    pub proto_errors: u64,
    pub admitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub shed_overload: u64,
    pub shed_deadline: u64,
    pub shed_draining: u64,
    pub queue_depth: u64,
    pub queue_peak: u64,
    pub loads: u64,
}

impl StatsSnapshot {
    /// Total requests shed (any reason) — the "no hangs" denominator.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_deadline + self.shed_draining
    }
}

/// One admitted unit of work.
struct Job {
    client: u64,
    id: Value,
    op: Op,
    deadline: Option<Instant>,
    cancel: CancellationToken,
    writer: Arc<ConnWriter>,
}

/// Admission state: per-client FIFO queues plus a round-robin rotation
/// of clients with pending work. Fairness is by *client*, not by
/// arrival order — a burst from one connection cannot starve others.
#[derive(Default)]
struct Sched {
    queues: HashMap<u64, VecDeque<Job>>,
    rotation: VecDeque<u64>,
    queued: usize,
    inflight: HashMap<u64, usize>,
    inflight_total: usize,
    stopped: bool,
}

struct Shared {
    cfg: ServerConfig,
    /// Current executor snapshot; queries clone it (two `Arc` bumps) and
    /// run lock-free afterwards.
    exec: RwLock<Executor>,
    /// Serializes catalog loads; owns the staging session.
    loader: Mutex<Session>,
    sched: Mutex<Sched>,
    work_ready: Condvar,
    draining: AtomicBool,
    stop_readers: AtomicBool,
    shutdown_requested: AtomicBool,
    shutdown_cv: Condvar,
    shutdown_mx: Mutex<()>,
    counters: Counters,
    /// Cancellation tokens of in-flight runs, cancelled en masse when
    /// the drain grace period expires.
    active_runs: Mutex<Vec<CancellationToken>>,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let queued = self.sched.lock().unwrap().queued as u64;
        let c = &self.counters;
        StatsSnapshot {
            connections: c.connections.load(Ordering::Relaxed),
            active_connections: c.active_connections.load(Ordering::Relaxed),
            received: c.received.load(Ordering::Relaxed),
            proto_errors: c.proto_errors.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed_overload: c.shed_overload.load(Ordering::Relaxed),
            shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
            shed_draining: c.shed_draining.load(Ordering::Relaxed),
            queue_depth: queued,
            queue_peak: c.queue_peak.load(Ordering::Relaxed),
            loads: c.loads.load(Ordering::Relaxed),
        }
    }

    fn request_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.shutdown_requested.store(true, Ordering::SeqCst);
        let _guard = self.shutdown_mx.lock().unwrap();
        self.shutdown_cv.notify_all();
    }
}

/// Per-connection serialized writer. Workers and the reader thread both
/// respond through this, so response lines never interleave.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Best-effort write; a dead client is not an error worth handling
    /// beyond dropping the bytes.
    fn send(&self, line: &str) {
        let mut guard = self.stream.lock().unwrap();
        let _ = guard.write_all(line.as_bytes());
        let _ = guard.write_all(b"\n");
        let _ = guard.flush();
    }
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves threads running; tests and the
/// binary always drain explicitly.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// True once a `shutdown` op or [`request_shutdown`] fired.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Trigger drain from outside the protocol (SIGTERM path).
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until shutdown is requested (protocol `shutdown` op or
    /// [`request_shutdown`]), polling `interrupted` so a signal flag can
    /// break the wait.
    pub fn wait_for_shutdown(&self, interrupted: impl Fn() -> bool) {
        let mut guard = self.shared.shutdown_mx.lock().unwrap();
        while !self.shared.shutdown_requested.load(Ordering::SeqCst) && !interrupted() {
            let (g, _) = self
                .shared
                .shutdown_cv
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap();
            guard = g;
        }
    }

    /// Drain and stop: refuse new work, shed the queue with `EXRQ0008`,
    /// give in-flight requests `drain_grace` to finish, cancel whatever
    /// is still running, then join every thread. Returns the final
    /// counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        let shared = Arc::clone(&self.shared);
        shared.request_shutdown();

        // Shed everything still queued — typed refusal, not silence.
        {
            let mut sched = shared.sched.lock().unwrap();
            for (_, queue) in sched.queues.iter_mut() {
                for job in queue.drain(..) {
                    shared
                        .counters
                        .shed_draining
                        .fetch_add(1, Ordering::Relaxed);
                    job.writer.send(&err_response(
                        &job.id,
                        ErrorCode::EXRQ0008.as_str(),
                        "server draining: request rejected during shutdown",
                    ));
                }
            }
            sched.queues.clear();
            sched.rotation.clear();
            sched.queued = 0;
            shared.work_ready.notify_all();
        }

        // Grace period for in-flight work.
        let deadline = Instant::now() + shared.cfg.drain_grace;
        {
            let mut sched = shared.sched.lock().unwrap();
            while sched.inflight_total > 0 && Instant::now() < deadline {
                let timeout = deadline.saturating_duration_since(Instant::now());
                let (g, _) = shared.work_ready.wait_timeout(sched, timeout).unwrap();
                sched = g;
            }
        }

        // Grace expired: cancel stragglers, then wait for them to yield
        // at the next budget poll.
        for token in shared.active_runs.lock().unwrap().iter() {
            token.cancel();
        }
        {
            let hard_stop = Instant::now() + shared.cfg.drain_grace;
            let mut sched = shared.sched.lock().unwrap();
            while sched.inflight_total > 0 && Instant::now() < hard_stop {
                let timeout = hard_stop.saturating_duration_since(Instant::now());
                let (g, _) = shared.work_ready.wait_timeout(sched, timeout).unwrap();
                sched = g;
            }
            sched.stopped = true;
            shared.work_ready.notify_all();
        }
        shared.stop_readers.store(true, Ordering::SeqCst);

        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(acceptor) = self.accept_thread.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().unwrap());
        for reader in readers {
            let _ = reader.join();
        }
        shared.snapshot()
    }
}

/// Bind, spawn the pool, and start accepting. `session` supplies the
/// initial catalog (documents already loaded) and stays on as the
/// staging area for `load` ops.
pub fn spawn(cfg: ServerConfig, mut session: Session) -> io::Result<ServerHandle> {
    if let Some(capacity) = cfg.plan_cache {
        session.set_plan_cache_capacity(capacity);
    }
    session.set_failpoints(cfg.failpoints.clone());
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        exec: RwLock::new(session.executor().clone()),
        loader: Mutex::new(session),
        sched: Mutex::new(Sched::default()),
        work_ready: Condvar::new(),
        draining: AtomicBool::new(false),
        stop_readers: AtomicBool::new(false),
        shutdown_requested: AtomicBool::new(false),
        shutdown_cv: Condvar::new(),
        shutdown_mx: Mutex::new(()),
        counters: Counters::default(),
        active_runs: Mutex::new(Vec::new()),
        cfg,
    });

    let mut worker_handles = Vec::with_capacity(workers);
    for n in 0..workers {
        let shared = Arc::clone(&shared);
        worker_handles.push(
            thread::Builder::new()
                .name(format!("xqd-worker-{n}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }

    let readers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_shared = Arc::clone(&shared);
    let accept_readers = Arc::clone(&readers);
    let accept_thread = thread::Builder::new()
        .name("xqd-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared, accept_readers))?;

    Ok(ServerHandle {
        shared,
        addr,
        accept_thread: Some(accept_thread),
        workers: worker_handles,
        readers,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    readers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    let mut next_client = 0u64;
    loop {
        if shared.stop_readers.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                next_client += 1;
                let client = next_client;
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .active_connections
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name(format!("xqd-conn-{client}"))
                    .spawn(move || {
                        connection_loop(conn_shared.as_ref(), stream, client);
                    });
                match handle {
                    Ok(h) => readers.lock().unwrap().push(h),
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion):
                        // shed the connection rather than wedging.
                        shared
                            .counters
                            .active_connections
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Outcome of pulling one line off a connection.
enum Line {
    /// A complete line within the size cap.
    Full(String),
    /// The line blew past [`MAX_LINE_BYTES`]; the excess was *discarded
    /// in bounded chunks*, never buffered.
    TooLong,
    /// Peer closed (EOF or reset) or the server is stopping.
    Closed,
}

fn read_line_capped(reader: &mut BufReader<TcpStream>, shared: &Shared) -> Line {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        if shared.stop_readers.load(Ordering::SeqCst) {
            return Line::Closed;
        }
        let (copied, done) = {
            let available = match reader.fill_buf() {
                Ok([]) => return Line::Closed,
                Ok(data) => data,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Line::Closed,
            };
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !discarding {
                        buf.extend_from_slice(&available[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !discarding {
                        buf.extend_from_slice(available);
                    }
                    (available.len(), false)
                }
            }
        };
        reader.consume(copied);
        if !discarding && buf.len() > MAX_LINE_BYTES {
            buf = Vec::new();
            discarding = true;
        }
        if done {
            if discarding {
                return Line::TooLong;
            }
            match String::from_utf8(buf) {
                Ok(mut s) => {
                    if s.ends_with('\r') {
                        s.pop();
                    }
                    return Line::Full(s);
                }
                Err(_) => return Line::TooLong,
            }
        }
    }
}

fn connection_loop(shared: &Shared, stream: TcpStream, client: u64) {
    // Short read timeouts keep the reader responsive to shutdown even
    // when the peer holds the connection open silently.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
        }),
        Err(_) => {
            shared
                .counters
                .active_connections
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = BufReader::new(stream);

    loop {
        match read_line_capped(&mut reader, shared) {
            Line::Closed => break,
            Line::TooLong => {
                shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&err_response(
                    &Value::Null,
                    "EPROTO",
                    &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                ));
            }
            Line::Full(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                shared.counters.received.fetch_add(1, Ordering::Relaxed);
                let request = match parse_request(&line) {
                    Ok(r) => r,
                    Err(e) => {
                        shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                        writer.send(&err_response(&e.id, "EPROTO", &e.message));
                        continue;
                    }
                };
                dispatch(shared, client, &writer, request.id, request.op);
            }
        }
    }
    shared
        .counters
        .active_connections
        .fetch_sub(1, Ordering::Relaxed);
}

/// Route one parsed request: cheap ops answer inline on the reader
/// thread; queries and loads go through admission control.
fn dispatch(shared: &Shared, client: u64, writer: &Arc<ConnWriter>, id: Value, op: Op) {
    match op {
        Op::Ping => writer.send(&ok_response(&id, vec![("pong", Value::Bool(true))])),
        Op::Stats => {
            let s = shared.snapshot();
            let cache = shared.exec.read().unwrap().cache_stats();
            writer.send(&ok_response(
                &id,
                vec![
                    ("connections", Value::Int(s.connections as i64)),
                    (
                        "active_connections",
                        Value::Int(s.active_connections as i64),
                    ),
                    ("received", Value::Int(s.received as i64)),
                    ("proto_errors", Value::Int(s.proto_errors as i64)),
                    ("admitted", Value::Int(s.admitted as i64)),
                    ("completed", Value::Int(s.completed as i64)),
                    ("failed", Value::Int(s.failed as i64)),
                    ("shed_overload", Value::Int(s.shed_overload as i64)),
                    ("shed_deadline", Value::Int(s.shed_deadline as i64)),
                    ("shed_draining", Value::Int(s.shed_draining as i64)),
                    ("queue_depth", Value::Int(s.queue_depth as i64)),
                    ("queue_peak", Value::Int(s.queue_peak as i64)),
                    ("loads", Value::Int(s.loads as i64)),
                    ("plan_cache_hits", Value::Int(cache.hits as i64)),
                    ("plan_cache_misses", Value::Int(cache.misses as i64)),
                ],
            ));
        }
        Op::Shutdown => {
            writer.send(&ok_response(&id, vec![("draining", Value::Bool(true))]));
            shared.request_shutdown();
        }
        op @ (Op::Query { .. } | Op::Load { .. }) => {
            if shared.draining.load(Ordering::SeqCst) {
                shared
                    .counters
                    .shed_draining
                    .fetch_add(1, Ordering::Relaxed);
                writer.send(&err_response(
                    &id,
                    ErrorCode::EXRQ0008.as_str(),
                    "server draining: no new work admitted",
                ));
                return;
            }
            let deadline_ms = match &op {
                Op::Query { deadline_ms, .. } => *deadline_ms,
                _ => None,
            };
            let deadline = deadline_ms
                .map(Duration::from_millis)
                .or(shared.cfg.default_deadline)
                .map(|d| Instant::now() + d);
            let job = Job {
                client,
                id,
                op,
                deadline,
                cancel: CancellationToken::new(),
                writer: Arc::clone(writer),
            };
            submit(shared, job);
        }
    }
}

/// Admission control: bounded queue, queue-depth-aware rejection.
fn submit(shared: &Shared, job: Job) {
    let mut sched = shared.sched.lock().unwrap();
    if sched.queued >= shared.cfg.queue_capacity {
        shared
            .counters
            .shed_overload
            .fetch_add(1, Ordering::Relaxed);
        drop(sched);
        job.writer.send(&err_response(
            &job.id,
            ErrorCode::EXRQ0006.as_str(),
            &format!(
                "server overloaded: admission queue full ({} queued)",
                shared.cfg.queue_capacity
            ),
        ));
        return;
    }
    let client = job.client;
    sched.queues.entry(client).or_default().push_back(job);
    if !sched.rotation.contains(&client) {
        sched.rotation.push_back(client);
    }
    sched.queued += 1;
    shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .queue_peak
        .fetch_max(sched.queued as u64, Ordering::Relaxed);
    shared.work_ready.notify_one();
}

/// Pop the next runnable job respecting round-robin fairness and the
/// per-client in-flight cap. Returns `None` when nothing is eligible.
fn next_job(shared: &Shared, sched: &mut Sched) -> Option<Job> {
    let cap = shared.cfg.max_inflight_per_client.max(1);
    for _ in 0..sched.rotation.len() {
        let client = *sched.rotation.front().unwrap();
        let running = sched.inflight.get(&client).copied().unwrap_or(0);
        if running >= cap {
            // At its cap: rotate past, give others a chance.
            sched.rotation.rotate_left(1);
            continue;
        }
        let queue = sched.queues.get_mut(&client).unwrap();
        let job = queue.pop_front().unwrap();
        if queue.is_empty() {
            sched.queues.remove(&client);
            sched.rotation.pop_front();
        } else {
            sched.rotation.rotate_left(1);
        }
        sched.queued -= 1;
        *sched.inflight.entry(client).or_insert(0) += 1;
        sched.inflight_total += 1;
        return Some(job);
    }
    None
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut sched = shared.sched.lock().unwrap();
            loop {
                if sched.stopped {
                    return;
                }
                if let Some(job) = next_job(shared, &mut sched) {
                    break job;
                }
                sched = shared.work_ready.wait(sched).unwrap();
            }
        };
        run_job(shared, &job);
        let mut sched = shared.sched.lock().unwrap();
        if let Some(n) = sched.inflight.get_mut(&job.client) {
            *n -= 1;
            if *n == 0 {
                sched.inflight.remove(&job.client);
            }
        }
        sched.inflight_total -= 1;
        // A completion can unblock a capped client *and* the drain wait.
        shared.work_ready.notify_all();
    }
}

fn run_job(shared: &Shared, job: &Job) {
    // Shed before spending any work if the deadline already passed
    // while the request sat in the queue.
    if let Some(at) = job.deadline {
        if Instant::now() >= at {
            shared
                .counters
                .shed_deadline
                .fetch_add(1, Ordering::Relaxed);
            job.writer.send(&err_response(
                &job.id,
                ErrorCode::EXRQ0007.as_str(),
                "request deadline exceeded while queued",
            ));
            return;
        }
    }
    shared.active_runs.lock().unwrap().push(job.cancel.clone());
    let response = match &job.op {
        Op::Query {
            query, baseline, ..
        } => run_query(shared, job, query, *baseline),
        Op::Load { url, xml } => run_load(shared, job, url, xml),
        // Ping/Stats/Shutdown never reach the queue.
        _ => err_response(&job.id, "EPROTO", "op not valid for worker"),
    };
    shared
        .active_runs
        .lock()
        .unwrap()
        .retain(|t| !t.same_as(&job.cancel));
    job.writer.send(&response);
}

fn run_query(shared: &Shared, job: &Job, query: &str, baseline: bool) -> String {
    let exec = shared.exec.read().unwrap().clone();
    let mut opts = if baseline {
        QueryOptions::baseline()
    } else {
        QueryOptions::order_indifferent()
    };
    if shared.cfg.threads > 0 {
        opts = opts.with_threads(shared.cfg.threads);
    }
    let run = RunOptions {
        deadline: job.deadline,
        cancel: Some(job.cancel.clone()),
        failpoints: if shared.cfg.failpoints.is_empty() {
            None
        } else {
            Some(shared.cfg.failpoints.clone())
        },
    };
    let result = exec
        .prepare(query, &opts)
        .and_then(|plan| exec.execute_with(&plan, &run));
    match result {
        Ok(out) => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            ok_response(&job.id, vec![("result", Value::Str(out.to_xml()))])
        }
        Err(e) => query_error_response(shared, &job.id, &e),
    }
}

fn query_error_response(shared: &Shared, id: &Value, e: &Error) -> String {
    let code = e.code();
    if code == ErrorCode::EXRQ0007 {
        shared
            .counters
            .shed_deadline
            .fetch_add(1, Ordering::Relaxed);
    } else {
        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
    }
    err_response(id, code.as_str(), &e.render_line())
}

/// Hot catalog reload: parse into the staging session under the load
/// lock, then swap the executor snapshot. Queries in flight keep their
/// pre-swap snapshot; new queries see the new catalog immediately.
fn run_load(shared: &Shared, job: &Job, url: &str, xml: &str) -> String {
    let mut session = shared.loader.lock().unwrap();
    match session.load_document(url, xml) {
        Ok(()) => {
            let fresh = session.executor().clone();
            *shared.exec.write().unwrap() = fresh;
            shared.counters.loads.fetch_add(1, Ordering::Relaxed);
            ok_response(
                &job.id,
                vec![("nodes", Value::Int(session.store_nodes() as i64))],
            )
        }
        Err(e) => query_error_response(shared, &job.id, &e),
    }
}
