//! xqd — the eXrQuy serving daemon.
//!
//! A long-lived process multiplexing many client connections over a
//! bounded worker pool that shares one immutable catalog snapshot
//! ([`exrquy::Executor`]). The protocol is line-delimited JSON over
//! TCP (see [`proto`]); the robustness story — bounded admission,
//! deadline shedding, per-client fairness, graceful drain, hot reload,
//! panic containment, and worker supervision — lives in [`server`].
//!
//! Std-only by the repo's dependency policy: no async runtime, no
//! serde. The [`json`] module is the shared JSON codec, also used by
//! the bench report writers and the `xqc` client.

mod chaos;
pub mod json;
pub mod proto;
pub mod server;

pub use server::{spawn, ServerConfig, ServerHandle, StatsSnapshot};
