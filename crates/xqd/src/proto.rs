//! The xqd line protocol: one JSON object per line, in both directions.
//!
//! Requests:
//!
//! ```json
//! {"id": 1, "op": "query", "query": "1 + 1", "deadline_ms": 500}
//! {"id": 2, "op": "query", "query": "...", "ordering": "baseline"}
//! {"id": 3, "op": "load", "url": "new.xml", "xml": "<a/>"}
//! {"id": 4, "op": "load", "url": "d1.xml", "xml": "<a/>", "catalog": "corpus", "shards": 8}
//! {"id": 5, "op": "query", "query": "fn:collection()//x", "catalog": "corpus"}
//! {"id": 6, "op": "stats"}
//! {"id": 7, "op": "ping"}
//! {"id": 8, "op": "health"}
//! {"id": 9, "op": "ready"}
//! {"id": 10, "op": "shutdown"}
//! ```
//!
//! The optional `catalog` field routes a query or load at a *named*
//! catalog instead of the default one; named catalogs are created by
//! the first load that mentions them, stage documents lazily (the tree
//! parse is deferred to the first query that can touch it), and a
//! query naming an unknown catalog gets `FODC0002`. The optional
//! `shards` field on `load` re-partitions the target catalog into that
//! many shards after the load commits — shard-parallel `fn:collection()`
//! plans are compiled against that layout.
//!
//! Responses echo `id` and carry either `"ok": true` plus op-specific
//! fields (`result` for queries) or `"ok": false` with `code` /
//! `message`. Engine errors surface their `EXRQ`/W3C code; requests the
//! server could not even parse get [`exrquy_diag::ErrorCode::EPROTO`]
//! and an `id` of `null` when the id itself was unreadable.
//!
//! `health` and `ready` are the probe ops: both answer inline on the
//! reader thread (never queued), so they respond even when the worker
//! pool is saturated or the server is draining. `health` reports
//! liveness plus worker-pool state; `ready` reports `"ready": false`
//! (still with `"ok": true` — the probe itself succeeded) while the
//! server drains or a catalog reload is staging.

use crate::json::{obj, parse, Value};

/// Upper bound on a single request line. Longer lines are rejected with
/// `EPROTO` *without* buffering the whole line — the connection reader
/// discards the excess so one hostile client cannot balloon memory.
pub const MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// What a client asked for, after validation.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: Value,
    pub op: Op,
}

#[derive(Debug, Clone)]
pub enum Op {
    Query {
        query: String,
        /// Absolute per-request deadline, in milliseconds from receipt.
        deadline_ms: Option<u64>,
        /// `"indifferent"` (default) or `"baseline"`.
        baseline: bool,
        /// Named catalog to run against; `None` routes to the default.
        catalog: Option<String>,
    },
    /// Stage a document and atomically swap it into the shared catalog.
    Load {
        url: String,
        xml: String,
        /// Named catalog to load into; created on first load. `None`
        /// targets the default catalog.
        catalog: Option<String>,
        /// Re-partition the target catalog into this many shards after
        /// the load commits (the `load --shard` op).
        shards: Option<usize>,
    },
    Stats,
    Ping,
    /// Liveness probe: worker-pool state, answered inline.
    Health,
    /// Readiness probe: flips false during drain and catalog reload.
    Ready,
    Shutdown,
}

/// A protocol-level failure: the line was not a valid request.
#[derive(Debug, Clone)]
pub struct ProtoError {
    /// The request id if we got far enough to read one.
    pub id: Value,
    pub message: String,
}

impl ProtoError {
    fn new(id: Value, message: impl Into<String>) -> Self {
        ProtoError {
            id,
            message: message.into(),
        }
    }
}

/// Shared `catalog` field of query/load ops: an optional non-empty
/// string naming a catalog other than the default.
fn parse_catalog(
    map: &std::collections::BTreeMap<String, Value>,
    id: &Value,
) -> Result<Option<String>, ProtoError> {
    match map.get("catalog") {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) if !s.is_empty() => Ok(Some(s.clone())),
        Some(_) => Err(ProtoError::new(
            id.clone(),
            "catalog must be a non-empty string",
        )),
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = parse(line).map_err(|e| ProtoError::new(Value::Null, format!("invalid json: {e}")))?;
    let Some(map) = v.as_object() else {
        return Err(ProtoError::new(
            Value::Null,
            "request must be a json object",
        ));
    };
    let id = map.get("id").cloned().unwrap_or(Value::Null);
    match &id {
        Value::Null | Value::Int(_) | Value::Str(_) => {}
        _ => {
            return Err(ProtoError::new(
                Value::Null,
                "id must be an integer, string, or absent",
            ))
        }
    }
    let op_name = map
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtoError::new(id.clone(), "missing or non-string 'op'"))?;
    let op = match op_name {
        "query" => {
            let query = map
                .get("query")
                .and_then(Value::as_str)
                .ok_or_else(|| ProtoError::new(id.clone(), "query op requires 'query'"))?
                .to_string();
            let deadline_ms = match map.get("deadline_ms") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_i64().filter(|n| *n >= 0).ok_or_else(|| {
                    ProtoError::new(id.clone(), "deadline_ms must be a non-negative integer")
                })? as u64),
            };
            let baseline = match map.get("ordering").and_then(Value::as_str) {
                None | Some("indifferent") => false,
                Some("baseline") => true,
                Some(other) => {
                    return Err(ProtoError::new(
                        id.clone(),
                        format!("unknown ordering '{other}' (want indifferent|baseline)"),
                    ))
                }
            };
            let catalog = parse_catalog(map, &id)?;
            Op::Query {
                query,
                deadline_ms,
                baseline,
                catalog,
            }
        }
        "load" => {
            let url = map
                .get("url")
                .and_then(Value::as_str)
                .ok_or_else(|| ProtoError::new(id.clone(), "load op requires 'url'"))?
                .to_string();
            let xml = map
                .get("xml")
                .and_then(Value::as_str)
                .ok_or_else(|| ProtoError::new(id.clone(), "load op requires 'xml'"))?
                .to_string();
            let catalog = parse_catalog(map, &id)?;
            let shards = match map.get("shards") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_i64().filter(|n| *n >= 1).ok_or_else(|| {
                    ProtoError::new(id.clone(), "shards must be a positive integer")
                })? as usize),
            };
            Op::Load {
                url,
                xml,
                catalog,
                shards,
            }
        }
        "stats" => Op::Stats,
        "ping" => Op::Ping,
        "health" => Op::Health,
        "ready" => Op::Ready,
        "shutdown" => Op::Shutdown,
        other => return Err(ProtoError::new(id.clone(), format!("unknown op '{other}'"))),
    };
    Ok(Request { id, op })
}

/// Success response with op-specific extras.
pub fn ok_response(id: &Value, extras: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![("id", id.clone()), ("ok", Value::Bool(true))];
    pairs.extend(extras);
    obj(pairs).render()
}

/// Error response carrying a typed code.
pub fn err_response(id: &Value, code: &str, message: &str) -> String {
    obj(vec![
        ("id", id.clone()),
        ("ok", Value::Bool(false)),
        ("code", Value::Str(code.to_string())),
        ("message", Value::Str(message.to_string())),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_query_request() {
        let r = parse_request(
            r#"{"id": 7, "op": "query", "query": "1+1", "deadline_ms": 250, "ordering": "baseline"}"#,
        )
        .unwrap();
        assert_eq!(r.id, Value::Int(7));
        match r.op {
            Op::Query {
                query,
                deadline_ms,
                baseline,
                catalog,
            } => {
                assert_eq!(query, "1+1");
                assert_eq!(deadline_ms, Some(250));
                assert!(baseline);
                assert_eq!(catalog, None);
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn parses_catalog_routing_and_sharded_loads() {
        let r =
            parse_request(r#"{"id":1,"op":"query","query":"fn:collection()","catalog":"corpus"}"#)
                .unwrap();
        match r.op {
            Op::Query { catalog, .. } => assert_eq!(catalog.as_deref(), Some("corpus")),
            other => panic!("wrong op: {other:?}"),
        }
        let r = parse_request(
            r#"{"id":2,"op":"load","url":"d.xml","xml":"<a/>","catalog":"corpus","shards":8}"#,
        )
        .unwrap();
        match r.op {
            Op::Load {
                url,
                catalog,
                shards,
                ..
            } => {
                assert_eq!(url, "d.xml");
                assert_eq!(catalog.as_deref(), Some("corpus"));
                assert_eq!(shards, Some(8));
            }
            other => panic!("wrong op: {other:?}"),
        }
        // Absent fields keep the single-catalog wire format working.
        let r = parse_request(r#"{"id":3,"op":"load","url":"d.xml","xml":"<a/>"}"#).unwrap();
        match r.op {
            Op::Load {
                catalog, shards, ..
            } => {
                assert_eq!(catalog, None);
                assert_eq!(shards, None);
            }
            other => panic!("wrong op: {other:?}"),
        }
        for (line, needle) in [
            (
                r#"{"id":1,"op":"query","query":"1","catalog":""}"#,
                "catalog must be",
            ),
            (
                r#"{"id":1,"op":"query","query":"1","catalog":7}"#,
                "catalog must be",
            ),
            (
                r#"{"id":1,"op":"load","url":"d","xml":"<a/>","shards":0}"#,
                "shards must be",
            ),
            (
                r#"{"id":1,"op":"load","url":"d","xml":"<a/>","shards":"two"}"#,
                "shards must be",
            ),
        ] {
            let e = parse_request(line).unwrap_err();
            assert!(e.message.contains(needle), "{line}: {}", e.message);
        }
    }

    #[test]
    fn rejects_malformed_requests_with_eproto_details() {
        for (line, needle) in [
            ("not json", "invalid json"),
            ("[1,2]", "must be a json object"),
            (r#"{"id":1}"#, "'op'"),
            (r#"{"id":1,"op":"query"}"#, "requires 'query'"),
            (r#"{"id":1,"op":"nope"}"#, "unknown op"),
            (
                r#"{"id":1,"op":"query","query":"1","deadline_ms":-5}"#,
                "deadline_ms",
            ),
            (r#"{"id":{},"op":"ping"}"#, "id must be"),
            (
                r#"{"id":1,"op":"query","query":"1","ordering":"x"}"#,
                "unknown ordering",
            ),
        ] {
            let e = parse_request(line).unwrap_err();
            assert!(
                e.message.contains(needle),
                "{line}: {} should mention {needle}",
                e.message
            );
        }
    }

    #[test]
    fn parses_probe_ops() {
        for (name, want) in [("health", "Health"), ("ready", "Ready")] {
            let r = parse_request(&format!(r#"{{"id":1,"op":"{name}"}}"#)).unwrap();
            assert_eq!(format!("{:?}", r.op), want);
        }
    }

    #[test]
    fn responses_echo_ids_verbatim() {
        let ok = ok_response(
            &Value::Str("abc".into()),
            vec![("result", Value::Str("2".into()))],
        );
        assert_eq!(ok, r#"{"id":"abc","ok":true,"result":"2"}"#);
        let err = err_response(&Value::Int(3), "EXRQ0006", "overloaded");
        assert_eq!(
            err,
            r#"{"code":"EXRQ0006","id":3,"message":"overloaded","ok":false}"#
        );
    }
}
