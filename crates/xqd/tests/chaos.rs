//! Chaos soak: mixed hostile and well-behaved load against one daemon.
//!
//! The invariants under test are the serving contract, not query
//! semantics (covered elsewhere):
//!
//! 1. every request gets exactly one typed response — no hangs, no
//!    silently dropped lines;
//! 2. successful responses are byte-identical to serial in-process
//!    execution of the same query;
//! 3. malformed, oversized, and mid-request-disconnect traffic never
//!    takes the server down or wedges other clients;
//! 4. with failpoints armed, faults surface as typed errors and the
//!    drain at the end still completes.
//!
//! The soak is deterministic (fixed xorshift seeds per client), so a
//! failure reproduces.

use exrquy::Session;
use exrquy_diag::Failpoints;
use exrquy_xqd::json::{obj, parse, Value};
use exrquy_xqd::{spawn, ServerConfig, ServerHandle};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const DOC: &str = "<a><b><c>1</c><d>2</d></b><c>3</c><e><c>4</c></e></a>";

/// The well-formed query mix; answers are precomputed serially.
const QUERIES: &[&str] = &[
    r#"fn:count(doc("t.xml")//c)"#,
    r#"for $c in doc("t.xml")//c return <hit>{ $c }</hit>"#,
    r#"fn:sum((1 to 100))"#,
    r#"unordered { doc("t.xml")//c }"#,
    r#"1 + 1"#,
];

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn serial_answers() -> HashMap<&'static str, String> {
    let mut s = Session::new();
    s.load_document("t.xml", DOC).unwrap();
    QUERIES
        .iter()
        .map(|&q| (q, s.query(q).unwrap().to_xml()))
        .collect()
}

fn chaos_server(cfg: ServerConfig) -> ServerHandle {
    let mut s = Session::new();
    s.load_document("t.xml", DOC).unwrap();
    spawn(cfg, s).expect("spawn chaos server")
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: std::net::SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Conn {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed connection mid-soak");
        parse(line.trim_end()).expect("server emitted invalid json")
    }
}

fn query_line(id: i64, q: &str, deadline_ms: Option<i64>) -> String {
    let mut req = vec![
        ("id", Value::Int(id)),
        ("op", Value::Str("query".into())),
        ("query", Value::Str(q.to_string())),
    ];
    if let Some(ms) = deadline_ms {
        req.push(("deadline_ms", Value::Int(ms)));
    }
    obj(req).render()
}

/// One soak client: a deterministic stream of valid queries, protocol
/// garbage, deadline pressure, and abrupt reconnects.
fn soak_client(
    addr: std::net::SocketAddr,
    seed: u64,
    iterations: usize,
    answers: &HashMap<&'static str, String>,
) -> (u64, u64) {
    let mut rng = seed;
    let mut conn = Conn::open(addr);
    let mut ok = 0u64;
    let mut shed = 0u64;
    for i in 0..iterations {
        match xorshift(&mut rng) % 10 {
            // Mostly: a valid query whose answer we can check.
            0..=4 => {
                let q = QUERIES[(xorshift(&mut rng) as usize) % QUERIES.len()];
                conn.send(&query_line(i as i64, q, Some(30_000)));
                let r = conn.recv();
                if r.get("ok") == Some(&Value::Bool(true)) {
                    assert_eq!(
                        r.get("result").and_then(Value::as_str),
                        Some(answers[q].as_str()),
                        "server response diverged from serial execution for {q}"
                    );
                    ok += 1;
                } else {
                    // The only acceptable failures for a valid query are
                    // the overload/deadline/drain sheds.
                    let code = r.get("code").and_then(Value::as_str).unwrap_or("?");
                    assert!(
                        code.starts_with("EXRQ000"),
                        "valid query failed with unexpected code {code}"
                    );
                    shed += 1;
                }
            }
            // Protocol garbage: typed EPROTO, connection survives.
            5 => {
                conn.send("this is { not json");
                let r = conn.recv();
                assert_eq!(r.get("code").and_then(Value::as_str), Some("EPROTO"));
            }
            // A query with a static error: typed W3C code, not a hang.
            6 => {
                conn.send(&query_line(i as i64, "$unbound_variable", None));
                let r = conn.recv();
                assert_eq!(r.get("ok"), Some(&Value::Bool(false)));
                let code = r.get("code").and_then(Value::as_str).unwrap_or("?");
                assert!(code.starts_with('X'), "expected a static code, got {code}");
            }
            // Impossible deadline: shed or (rarely) a win, never a hang.
            7 => {
                conn.send(&query_line(i as i64, QUERIES[1], Some(0)));
                let r = conn.recv();
                if r.get("ok") != Some(&Value::Bool(true)) {
                    assert_eq!(r.get("code").and_then(Value::as_str), Some("EXRQ0007"));
                    shed += 1;
                } else {
                    ok += 1;
                }
            }
            // Vanish mid-request and come back: the orphaned response
            // must not wedge a worker or leak the connection.
            8 => {
                conn.send(&query_line(i as i64, QUERIES[0], None));
                conn = Conn::open(addr);
            }
            // Empty lines are ignored, not answered.
            _ => {
                conn.send("");
                conn.send(&query_line(i as i64, "1+1", None));
                let r = conn.recv();
                assert_eq!(r.get("result").and_then(Value::as_str), Some("2"));
                ok += 1;
            }
        }
    }
    (ok, shed)
}

#[test]
fn chaos_soak_mixed_load_never_wedges() {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        queue_capacity: 8,
        max_inflight_per_client: 2,
        drain_grace: Duration::from_millis(1_000),
        ..ServerConfig::default()
    };
    let handle = chaos_server(cfg);
    let answers = serial_answers();
    let addr = handle.addr();

    let clients = 4;
    let iterations = 60;
    let results: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let answers = &answers;
        (0..clients)
            .map(|c| {
                scope.spawn(move || soak_client(addr, 0x9E3779B9 + c as u64, iterations, answers))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("soak client panicked"))
            .collect()
    });
    let ok: u64 = results.iter().map(|(o, _)| o).sum();
    assert!(ok > 0, "soak never completed a single query");

    // One oversized line on a fresh connection: rejected, bounded.
    let mut big = Conn::open(addr);
    big.send(&"x".repeat(5 * 1024 * 1024));
    let r = big.recv();
    assert_eq!(r.get("code").and_then(Value::as_str), Some("EPROTO"));
    drop(big);

    // Drain must complete with nothing in flight and nothing leaked.
    let stats = handle.shutdown();
    assert_eq!(stats.queue_depth, 0, "drain left work queued");
    assert!(
        stats.completed >= ok,
        "server counted fewer completions than clients saw"
    );
    assert_eq!(stats.active_connections, 0, "connection leak after soak");
}

#[test]
fn chaos_soak_under_injected_faults_stays_typed_and_drains() {
    // Every fault-injection spec in the registry that bites the query
    // path: responses stay typed, the server stays up, drain completes.
    for spec in ["budget-trip:rownum", "cancel-after:3", "doc-io:1"] {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 8,
            drain_grace: Duration::from_millis(500),
            failpoints: Failpoints::parse(spec).unwrap(),
            ..ServerConfig::default()
        };
        let handle = chaos_server(cfg);
        let mut conn = Conn::open(handle.addr());
        for i in 0..6 {
            let q = QUERIES[i % QUERIES.len()];
            conn.send(&query_line(i as i64, q, Some(10_000)));
            let r = conn.recv();
            if r.get("ok") != Some(&Value::Bool(true)) {
                let code = r.get("code").and_then(Value::as_str).unwrap_or("?");
                assert!(
                    code.starts_with("EXRQ") || code.starts_with('F'),
                    "injected fault {spec} produced untyped failure {code}"
                );
            }
        }
        let stats = handle.shutdown();
        assert_eq!(stats.queue_depth, 0, "drain under {spec} left work queued");
    }
}
