//! Crash containment and self-healing: injected panics poison exactly
//! one request, dead workers are respawned, probes answer under
//! pressure, and the memory watermark defers without deadlocking.

use exrquy::Session;
use exrquy_diag::Failpoints;
use exrquy_xqd::json::{parse, Value};
use exrquy_xqd::{spawn, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed connection unexpectedly");
        parse(line.trim_end()).expect("response is valid json")
    }

    fn query(&mut self, id: usize, q: &str) -> Value {
        let escaped = q.replace('\\', "\\\\").replace('"', "\\\"");
        self.roundtrip(&format!(
            r#"{{"id":{id},"op":"query","query":"{escaped}"}}"#
        ))
    }
}

fn test_session() -> Session {
    let mut s = Session::new();
    s.load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
        .unwrap();
    s
}

fn cfg_with(inject: &str) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 32,
        max_inflight_per_client: 2,
        drain_grace: Duration::from_millis(2_000),
        failpoints: Failpoints::parse(inject).expect("valid failpoint spec"),
        ..ServerConfig::default()
    }
}

/// The acceptance criterion from the fault-containment work: with
/// `panic:rownum` armed, a baseline-ordering query (whose plan
/// materializes `%`) panics mid-execution and answers `EXRQ0009`; the
/// next 100 order-indifferent requests (rownum-free plans — asserted,
/// not assumed) are byte-identical to direct in-process execution, and
/// the admission ledger reconciles with exactly one crash.
#[test]
fn injected_panic_poisons_one_request_and_the_rest_stay_byte_identical() {
    let handle = spawn(cfg_with("panic:rownum"), test_session()).expect("spawn");
    let mut c = Client::connect(&handle);

    // Baseline ordering forces rownum materialization -> trips the
    // failpoint -> contained panic.
    let r = c.roundtrip(
        r#"{"id":0,"op":"query","query":"doc(\"t.xml\")//(c|d)","ordering":"baseline"}"#,
    );
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(r.get("code").and_then(Value::as_str), Some("EXRQ0009"));
    assert!(
        r.get("message")
            .and_then(Value::as_str)
            .unwrap()
            .contains("panicked"),
        "EXRQ0009 message should say the request panicked: {r:?}"
    );

    // Order-indifferent follow-ups whose plans carry no rownum operator.
    let followups = [
        r#"fn:count(doc("t.xml")//c)"#,
        r#"fn:sum(for $c in doc("t.xml")//c return 1)"#,
        r#"for $c in doc("t.xml")//c return <hit/>"#,
        r#"doc("t.xml")//c"#,
        r#"fn:count(doc("t.xml")//c[fn:count(./d) = 0])"#,
    ];
    let session = test_session();
    for q in &followups {
        let plan = session
            .explain(q, &exrquy::QueryOptions::order_indifferent())
            .unwrap();
        assert!(
            !plan.plan_text().contains('%'),
            "follow-up query must compile rownum-free or it would trip \
             the same failpoint: {q}\n{}",
            plan.plan_text()
        );
    }
    for i in 0..100 {
        let q = followups[i % followups.len()];
        let expected = session.query(q).unwrap().to_xml();
        let r = c.query(i + 1, q);
        assert_eq!(
            r.get("ok"),
            Some(&Value::Bool(true)),
            "post-panic request {i} failed: {r:?}"
        );
        assert_eq!(
            r.get("result").and_then(Value::as_str),
            Some(expected.as_str()),
            "post-panic request {i} diverged from direct execution ({q})"
        );
    }

    let stats = handle.shutdown();
    assert_eq!(stats.crashed, 1, "exactly the poisoned request crashed");
    assert_eq!(stats.completed, 100);
    assert!(
        stats.reconciles(),
        "admission ledger must balance: {stats:?}"
    );
}

/// `worker-kill:<n>` panics *outside* the containment boundary, killing
/// the worker thread itself. The supervisor must answer the orphaned
/// request with EXRQ0009, respawn the worker, and keep the pool serving.
#[test]
fn dead_worker_is_detected_respawned_and_its_orphan_answered() {
    let handle = spawn(cfg_with("worker-kill:3"), test_session()).expect("spawn");
    let mut c = Client::connect(&handle);

    let q = r#"fn:count(doc("t.xml")//c)"#;
    for i in 1..=2 {
        let r = c.query(i, q);
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "job {i}: {r:?}");
    }
    // Job 3 lands on the worker that dies mid-claim; the supervisor
    // answers for it.
    let r = c.query(3, q);
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(r.get("code").and_then(Value::as_str), Some("EXRQ0009"));
    assert!(
        r.get("message")
            .and_then(Value::as_str)
            .unwrap()
            .contains("worker thread died"),
        "orphan message should name the dead worker: {r:?}"
    );
    // The pool healed: subsequent requests succeed on both workers.
    for i in 4..=10 {
        let r = c.query(i, q);
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "job {i}: {r:?}");
        assert_eq!(r.get("result").and_then(Value::as_str), Some("2"));
    }

    let health = c.roundtrip(r#"{"id":99,"op":"health"}"#);
    assert_eq!(
        health.get("workers_alive").and_then(Value::as_i64),
        Some(2),
        "respawn should restore the full pool: {health:?}"
    );

    let stats = handle.shutdown();
    assert_eq!(stats.crashed, 1);
    assert!(stats.workers_respawned >= 1);
    assert_eq!(stats.completed, 9);
    assert!(stats.reconciles(), "{stats:?}");
}

#[test]
fn health_and_ready_probes_answer_and_ready_flips_during_drain() {
    let handle = spawn(cfg_with(""), test_session()).expect("spawn");
    let mut c = Client::connect(&handle);

    let h = c.roundtrip(r#"{"id":1,"op":"health"}"#);
    assert_eq!(h.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(h.get("alive"), Some(&Value::Bool(true)));
    assert_eq!(h.get("workers").and_then(Value::as_i64), Some(2));
    assert_eq!(h.get("workers_alive").and_then(Value::as_i64), Some(2));
    assert_eq!(h.get("crashed").and_then(Value::as_i64), Some(0));
    assert!(h.get("uptime_ms").and_then(Value::as_i64).is_some());

    let r = c.roundtrip(r#"{"id":2,"op":"ready"}"#);
    assert_eq!(r.get("ready"), Some(&Value::Bool(true)));
    assert_eq!(r.get("draining"), Some(&Value::Bool(false)));

    // A shutdown op starts the drain; readiness flips false while the
    // probe itself still answers (ok:true).
    let r = c.roundtrip(r#"{"id":3,"op":"shutdown"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    let r = c.roundtrip(r#"{"id":4,"op":"ready"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(r.get("ready"), Some(&Value::Bool(false)));
    assert_eq!(r.get("draining"), Some(&Value::Bool(true)));
    // Work is refused during drain, but probes keep answering.
    let r = c.query(5, "1");
    assert_eq!(r.get("code").and_then(Value::as_str), Some("EXRQ0008"));
    let h = c.roundtrip(r#"{"id":6,"op":"health"}"#);
    assert_eq!(h.get("alive"), Some(&Value::Bool(true)));

    handle.shutdown();
}

/// With the watermark at zero every in-flight execution holds the gate
/// shut for the next one, so this doubles as a deadlock check: the
/// deferral must release when trackers drop, never wedge the pool.
#[test]
fn memory_watermark_defers_admissions_without_deadlock() {
    let mut cfg = cfg_with("");
    cfg.mem_watermark = Some(0);
    let handle = spawn(cfg, test_session()).expect("spawn");

    let constructing = r#"for $c in doc("t.xml")//c return <hit>{ fn:count($c) }</hit>"#;
    let mut clients: Vec<Client> = (0..3).map(|_| Client::connect(&handle)).collect();
    let threads: Vec<_> = clients
        .drain(..)
        .map(|mut c| {
            let q = constructing.to_string();
            std::thread::spawn(move || {
                for i in 0..8 {
                    let r = c.query(i, &q);
                    assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "{r:?}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let stats = handle.shutdown();
    assert_eq!(stats.completed, 24, "every request completed: {stats:?}");
    assert!(
        stats.mem_peak_bytes > 0,
        "constructed nodes should register against the gauge: {stats:?}"
    );
    assert!(stats.reconciles(), "{stats:?}");
}

#[test]
fn stats_report_per_connection_keepalive_metrics() {
    let handle = spawn(cfg_with(""), test_session()).expect("spawn");
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);

    for i in 0..3 {
        a.query(i, "1");
    }
    // The stats request itself is this connection's 4th request.
    let s = a.roundtrip(r#"{"id":9,"op":"stats"}"#);
    assert_eq!(s.get("conn_requests").and_then(Value::as_i64), Some(4));
    assert!(s.get("conn_lifetime_ms").and_then(Value::as_i64).is_some());
    assert!(s.get("active_connections").and_then(Value::as_i64).unwrap() >= 2);
    assert!(s.get("connections").and_then(Value::as_i64).unwrap() >= 2);

    // The second connection's counter is independent of the first's.
    let s = b.roundtrip(r#"{"id":1,"op":"stats"}"#);
    assert_eq!(s.get("conn_requests").and_then(Value::as_i64), Some(1));

    handle.shutdown();
}

/// Torn and trickled writes mangle frame *timing*, never frame
/// *content*: a line-buffered client must still parse every response.
#[test]
fn torn_and_trickled_frames_reassemble_into_valid_lines() {
    let handle = spawn(
        cfg_with("net-torn-write:2,net-trickle:3,net-slow-read:4"),
        test_session(),
    )
    .expect("spawn");
    let session = test_session();
    let q = r#"for $c in doc("t.xml")//c return <hit/>"#;
    let expected = session.query(q).unwrap().to_xml();

    let mut c = Client::connect(&handle);
    for i in 0..12 {
        let r = c.query(i, q);
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "frame {i}: {r:?}");
        assert_eq!(
            r.get("result").and_then(Value::as_str),
            Some(expected.as_str()),
            "frame {i} content survived the fault injection"
        );
    }

    let stats = handle.shutdown();
    assert_eq!(stats.completed, 12);
    assert!(stats.reconciles(), "{stats:?}");
}
