//! Functional coverage for the serving core: protocol round-trips,
//! admission control, deadline shedding, hot reload, drain.

use exrquy::Session;
use exrquy_diag::Failpoints;
use exrquy_xqd::json::{parse, Value};
use exrquy_xqd::{spawn, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Line-protocol client for tests: writes a request, reads one line.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed connection unexpectedly");
        parse(line.trim_end()).expect("response is valid json")
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }
}

fn test_session() -> Session {
    let mut s = Session::new();
    s.load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
        .unwrap();
    s
}

fn small_server(cfg: ServerConfig) -> ServerHandle {
    spawn(cfg, test_session()).expect("spawn server")
}

fn default_cfg() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        max_inflight_per_client: 2,
        drain_grace: Duration::from_millis(1_000),
        ..ServerConfig::default()
    }
}

#[test]
fn query_ping_stats_roundtrip() {
    let handle = small_server(default_cfg());
    let mut c = Client::connect(&handle);

    let r = c.roundtrip(r#"{"id":1,"op":"query","query":"fn:count(doc(\"t.xml\")//c)"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(r.get("id"), Some(&Value::Int(1)));
    assert_eq!(r.get("result").and_then(Value::as_str), Some("2"));

    let r = c.roundtrip(r#"{"id":"p","op":"ping"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(r.get("id").and_then(Value::as_str), Some("p"));

    let r = c.roundtrip(r#"{"id":2,"op":"stats"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    assert!(r.get("completed").and_then(Value::as_i64).unwrap() >= 1);

    let stats = handle.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.proto_errors, 0);
}

#[test]
fn server_result_matches_serial_execution_byte_for_byte() {
    let handle = small_server(default_cfg());
    let queries = [
        r#"for $c in doc("t.xml")//c return <hit>{ $c }</hit>"#,
        r#"fn:count(doc("t.xml")//c)"#,
        r#"1 + 1"#,
    ];
    let session = test_session();
    let mut c = Client::connect(&handle);
    for (i, q) in queries.iter().enumerate() {
        let expected = session.query(q).unwrap().to_xml();
        let escaped = q.replace('\\', "\\\\").replace('"', "\\\"");
        let r = c.roundtrip(&format!(r#"{{"id":{i},"op":"query","query":"{escaped}"}}"#));
        assert_eq!(
            r.get("result").and_then(Value::as_str),
            Some(expected.as_str()),
            "query {q} diverged from serial xq"
        );
    }
    handle.shutdown();
}

#[test]
fn malformed_lines_get_eproto_and_the_connection_survives() {
    let handle = small_server(default_cfg());
    let mut c = Client::connect(&handle);

    for bad in [
        "this is not json",
        "[1,2,3]",
        r#"{"id":5,"op":"wat"}"#,
        r#"{"id":6,"op":"query"}"#,
    ] {
        let r = c.roundtrip(bad);
        assert_eq!(r.get("ok"), Some(&Value::Bool(false)), "line: {bad}");
        assert_eq!(r.get("code").and_then(Value::as_str), Some("EPROTO"));
    }
    // Connection still works after every protocol error.
    let r = c.roundtrip(r#"{"id":7,"op":"query","query":"1+1"}"#);
    assert_eq!(r.get("result").and_then(Value::as_str), Some("2"));

    let stats = handle.shutdown();
    assert_eq!(stats.proto_errors, 4);
}

#[test]
fn oversized_line_is_rejected_without_buffering_it() {
    let handle = small_server(default_cfg());
    let mut c = Client::connect(&handle);
    // ~5 MiB of garbage on one line: over MAX_LINE_BYTES.
    let big = "x".repeat(5 * 1024 * 1024);
    c.send(&big);
    let r = c.recv();
    assert_eq!(r.get("code").and_then(Value::as_str), Some("EPROTO"));
    // And the next request parses fine.
    let r = c.roundtrip(r#"{"id":1,"op":"ping"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    handle.shutdown();
}

#[test]
fn expired_deadline_sheds_with_exrq0007() {
    let handle = small_server(default_cfg());
    let mut c = Client::connect(&handle);
    let r = c.roundtrip(r#"{"id":1,"op":"query","query":"1+1","deadline_ms":0}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(r.get("code").and_then(Value::as_str), Some("EXRQ0007"));
    let stats = handle.shutdown();
    assert_eq!(stats.shed_deadline, 1);
    assert_eq!(stats.completed, 0);
}

#[test]
fn hot_reload_swaps_the_catalog_without_restart() {
    let handle = small_server(default_cfg());
    let mut c = Client::connect(&handle);

    let r = c.roundtrip(r#"{"id":1,"op":"query","query":"fn:count(doc(\"t.xml\")//c)"}"#);
    assert_eq!(r.get("result").and_then(Value::as_str), Some("2"));

    let r = c.roundtrip(r#"{"id":2,"op":"load","url":"t.xml","xml":"<a><c/><c/><c/></a>"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "load failed: {r:?}");

    let r = c.roundtrip(r#"{"id":3,"op":"query","query":"fn:count(doc(\"t.xml\")//c)"}"#);
    assert_eq!(r.get("result").and_then(Value::as_str), Some("3"));

    // A bad reload leaves the previous catalog intact.
    let r = c.roundtrip(r#"{"id":4,"op":"load","url":"t.xml","xml":"<unclosed>"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)));
    let r = c.roundtrip(r#"{"id":5,"op":"query","query":"fn:count(doc(\"t.xml\")//c)"}"#);
    assert_eq!(r.get("result").and_then(Value::as_str), Some("3"));

    let stats = handle.shutdown();
    assert_eq!(stats.loads, 1);
}

#[test]
fn full_queue_sheds_with_exrq0006_instead_of_hanging() {
    // One worker, tiny queue, slow queries: floods must shed fast.
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        max_inflight_per_client: 1,
        drain_grace: Duration::from_millis(500),
        ..default_cfg()
    };
    let handle = small_server(cfg);
    let mut c = Client::connect(&handle);
    // A query that takes a while: big cartesian-ish count.
    let slow = r#"fn:count(for $a in doc("t.xml")//* for $b in doc("t.xml")//* for $c in doc("t.xml")//* for $d in doc("t.xml")//* for $e in doc("t.xml")//* return 1)"#;
    let escaped = slow.replace('"', "\\\"");
    for i in 0..12 {
        c.send(&format!(r#"{{"id":{i},"op":"query","query":"{escaped}"}}"#));
    }
    let mut ok = 0u32;
    let mut overloaded = 0u32;
    for _ in 0..12 {
        let r = c.recv();
        if r.get("ok") == Some(&Value::Bool(true)) {
            ok += 1;
        } else {
            assert_eq!(r.get("code").and_then(Value::as_str), Some("EXRQ0006"));
            overloaded += 1;
        }
    }
    assert!(overloaded > 0, "flood never tripped admission control");
    assert!(ok > 0, "admission control rejected everything");
    let stats = handle.shutdown();
    assert_eq!(stats.shed_overload as u32, overloaded);
}

#[test]
fn shutdown_op_drains_and_refuses_new_work() {
    let handle = small_server(default_cfg());
    let mut c = Client::connect(&handle);
    let r = c.roundtrip(r#"{"id":1,"op":"shutdown"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    // The ok response is written just before the drain flag flips;
    // give the reader thread a beat to get there.
    let patience = std::time::Instant::now() + Duration::from_secs(2);
    while !handle.shutdown_requested() && std::time::Instant::now() < patience {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.shutdown_requested());

    let r = c.roundtrip(r#"{"id":2,"op":"query","query":"1+1"}"#);
    assert_eq!(r.get("code").and_then(Value::as_str), Some("EXRQ0008"));

    let stats = handle.shutdown();
    assert_eq!(stats.shed_draining, 1);
}

#[test]
fn injected_doc_faults_surface_as_typed_errors_not_hangs() {
    // The staging session already performed one load (the seed
    // document), so doc-parse:2 targets the first load issued over the
    // wire.
    let cfg = ServerConfig {
        failpoints: Failpoints::parse("doc-parse:2").unwrap(),
        ..default_cfg()
    };
    // Build the initial session *without* failpoints so setup succeeds.
    let handle = spawn(cfg, test_session()).unwrap();
    let mut c = Client::connect(&handle);

    let r = c.roundtrip(r#"{"id":1,"op":"load","url":"u.xml","xml":"<ok/>"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)), "{r:?}");
    assert_eq!(r.get("code").and_then(Value::as_str), Some("FODC0006"));

    // Queries still answer; the failpoint only bites the load path it
    // was armed for.
    let r = c.roundtrip(r#"{"id":2,"op":"query","query":"1+1"}"#);
    assert_eq!(r.get("result").and_then(Value::as_str), Some("2"));
    handle.shutdown();
}

#[test]
fn per_client_fairness_lets_a_second_client_through_a_flood() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 32,
        max_inflight_per_client: 1,
        ..default_cfg()
    };
    let handle = small_server(cfg);
    let mut flooder = Client::connect(&handle);
    let slow = r#"fn:count(for $a in doc("t.xml")//* for $b in doc("t.xml")//* for $c in doc("t.xml")//* return 1)"#
        .replace('"', "\\\"");
    for i in 0..8 {
        flooder.send(&format!(r#"{{"id":{i},"op":"query","query":"{slow}"}}"#));
    }
    // The polite client's single request must not wait behind all 8.
    let mut polite = Client::connect(&handle);
    let r = polite.roundtrip(r#"{"id":100,"op":"query","query":"1+1"}"#);
    assert_eq!(r.get("result").and_then(Value::as_str), Some("2"));
    for _ in 0..8 {
        flooder.recv();
    }
    handle.shutdown();
}

#[test]
fn abrupt_disconnect_does_not_wedge_the_server() {
    let handle = small_server(default_cfg());
    for i in 0..5 {
        let mut c = Client::connect(&handle);
        c.send(&format!(
            r#"{{"id":{i},"op":"query","query":"fn:count(doc(\"t.xml\")//*)"}}"#
        ));
        drop(c); // vanish before reading the response
    }
    // Server still answers a well-behaved client.
    let mut c = Client::connect(&handle);
    let r = c.roundtrip(r#"{"id":9,"op":"ping"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    let stats = handle.shutdown();
    assert_eq!(stats.active_connections, 0, "connection leak");
}

#[test]
fn named_catalogs_route_queries_and_shard_their_corpus() {
    let handle = small_server(default_cfg());
    let mut c = Client::connect(&handle);

    // Build a 3-document corpus in catalog "corpus", re-partitioned to
    // 2 shards on the last load. Named loads stage lazily, so nodes==0
    // until a query materializes the shards.
    for (i, shards) in [(0, ""), (1, ""), (2, r#","shards":2"#)] {
        let r = c.roundtrip(&format!(
            r#"{{"id":{i},"op":"load","url":"d{i}.xml","xml":"<r><x>{i}</x></r>","catalog":"corpus"{shards}}}"#
        ));
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "{r:?}");
        if shards.is_empty() {
            assert_eq!(r.get("shards").and_then(Value::as_i64), Some(1));
        } else {
            assert_eq!(r.get("shards").and_then(Value::as_i64), Some(2));
            assert_eq!(
                r.get("nodes").and_then(Value::as_i64),
                Some(0),
                "named loads stage lazily — no tree parse at load time"
            );
        }
    }

    // A routed collection() scan sees all three documents in load
    // order, byte-identical to what a local sharded session produces.
    let r = c.roundtrip(r#"{"id":3,"op":"query","query":"fn:collection()//x","catalog":"corpus"}"#);
    assert_eq!(
        r.get("result").and_then(Value::as_str),
        Some("<x>0</x><x>1</x><x>2</x>"),
        "{r:?}"
    );

    // The default catalog is untouched by named loads: t.xml is still
    // there, and the corpus documents are not.
    let r = c.roundtrip(r#"{"id":4,"op":"query","query":"fn:count(doc(\"t.xml\")//c)"}"#);
    assert_eq!(r.get("result").and_then(Value::as_str), Some("2"));
    let r = c.roundtrip(r#"{"id":5,"op":"query","query":"fn:count(doc(\"d0.xml\"))"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)));

    // Routing at a catalog nobody loaded is a typed error, not a hang.
    let r = c.roundtrip(r#"{"id":6,"op":"query","query":"1+1","catalog":"nope"}"#);
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(r.get("code").and_then(Value::as_str), Some("FODC0002"));

    let stats = handle.shutdown();
    assert_eq!(stats.loads, 3);
    assert_eq!(stats.failed, 2, "missing doc + unknown catalog");
}
