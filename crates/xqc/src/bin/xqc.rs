//! xqc — command-line client for an xqd daemon.
//!
//! ```text
//! xqc --addr 127.0.0.1:7077 [--retries <n>] [--connect-timeout-ms <ms>] \
//!     [--read-timeout-ms <ms>] [--seed <n>] <command> [args]
//!
//! commands:
//!   query <expr> [--deadline-ms <ms>] [--ordering indifferent|baseline]
//!   load <url> <path>        stage a document and hot-swap the catalog
//!   ping | stats | health | ready | shutdown
//! ```
//!
//! Exit codes mirror the repo's error taxonomy: 0 on success, the
//! error class code (1 static, 2 dynamic, 3 resource, 4 io,
//! 5 verification) on a server error, 4 on transport failure, 1 on
//! protocol confusion. `ready` exits 0 only when the server is ready.

use exrquy_xqc::{Client, ClientError, Config, QueryOpts};
use std::process::exit;
use std::time::Duration;

const EXIT_USAGE: i32 = 64;
const EXIT_IO: i32 = 4;
const EXIT_STATIC: i32 = 1;
const EXIT_NOT_READY: i32 = 1;

fn usage() -> ! {
    eprintln!(
        "usage: xqc --addr <host:port> [--retries <n>] [--connect-timeout-ms <ms>] \\\n\
         \x20        [--read-timeout-ms <ms>] [--seed <n>] <command> [args]\n\
         commands: query <expr> [--deadline-ms <ms>] [--ordering indifferent|baseline]\n\
         \x20         load <url> <path> | ping | stats | health | ready | shutdown"
    );
    exit(EXIT_USAGE);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("xqc: {flag} requires a numeric argument");
            exit(EXIT_USAGE);
        }
    }
}

fn fail(e: ClientError) -> ! {
    eprintln!("xqc: {e}");
    match e {
        ClientError::Transport(_) => exit(EXIT_IO),
        ClientError::Proto(_) => exit(EXIT_STATIC),
        ClientError::Server { code, .. } => exit(code.class().exit_code()),
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut cfg: Option<Config> = None;
    let mut retries: Option<u32> = None;
    let mut connect_ms: Option<u64> = None;
    let mut read_ms: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut command: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(addr) = args.next() else { usage() };
                cfg = Some(Config::new(addr));
            }
            "--retries" => retries = Some(parse_num("--retries", args.next())),
            "--connect-timeout-ms" => {
                connect_ms = Some(parse_num("--connect-timeout-ms", args.next()))
            }
            "--read-timeout-ms" => read_ms = Some(parse_num("--read-timeout-ms", args.next())),
            "--seed" => seed = Some(parse_num("--seed", args.next())),
            "--help" | "-h" => usage(),
            _ => {
                command.push(arg);
                command.extend(args.by_ref());
            }
        }
    }
    let Some(mut cfg) = cfg else { usage() };
    if let Some(n) = retries {
        cfg.max_retries = n;
    }
    if let Some(ms) = connect_ms {
        cfg.connect_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = read_ms {
        cfg.read_timeout = Duration::from_millis(ms);
    }
    if let Some(s) = seed {
        cfg.jitter_seed = s;
    }
    let mut client = Client::connect(cfg);

    let mut cmd = command.into_iter();
    match cmd.next().as_deref() {
        Some("query") => {
            let Some(expr) = cmd.next() else { usage() };
            let mut opts = QueryOpts::default();
            while let Some(flag) = cmd.next() {
                match flag.as_str() {
                    "--deadline-ms" => {
                        opts.deadline_ms = Some(parse_num("--deadline-ms", cmd.next()))
                    }
                    "--ordering" => match cmd.next().as_deref() {
                        Some("indifferent") => opts.baseline = false,
                        Some("baseline") => opts.baseline = true,
                        _ => usage(),
                    },
                    _ => usage(),
                }
            }
            match client.query_with(&expr, &opts) {
                Ok(result) => println!("{result}"),
                Err(e) => fail(e),
            }
        }
        Some("load") => {
            let (Some(url), Some(path)) = (cmd.next(), cmd.next()) else {
                usage()
            };
            let xml = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("xqc: cannot read {path}: {e}");
                exit(EXIT_IO);
            });
            if let Err(e) = client.load(&url, &xml) {
                fail(e);
            }
            eprintln!("xqc: loaded {url} ({} bytes)", xml.len());
        }
        Some("ping") => match client.ping() {
            Ok(()) => println!("pong"),
            Err(e) => fail(e),
        },
        Some("stats") => match client.server_stats() {
            Ok(v) => println!("{}", v.render()),
            Err(e) => fail(e),
        },
        Some("health") => match client.health() {
            Ok(v) => println!("{}", v.render()),
            Err(e) => fail(e),
        },
        Some("ready") => match client.ready() {
            Ok(ready) => {
                println!("{ready}");
                if !ready {
                    exit(EXIT_NOT_READY);
                }
            }
            Err(e) => fail(e),
        },
        Some("shutdown") => match client.shutdown() {
            Ok(()) => eprintln!("xqc: server draining"),
            Err(e) => fail(e),
        },
        _ => usage(),
    }
}
