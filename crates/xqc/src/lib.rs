//! xqc — the retrying client for the xqd line protocol.
//!
//! A thin, std-only client that makes the daemon's failure modes
//! survivable instead of fatal: connection loss, torn and trickled
//! response frames, overload sheds, and deadline sheds are all retried
//! with bounded exponential backoff and *deterministic* jitter, while
//! failures that would repeat verbatim — protocol errors, contained
//! panics — are surfaced immediately.
//!
//! ## Retry-safety classification
//!
//! Whether a failure is worth retrying is a property of the **error
//! code**, not of the caller's mood:
//!
//! | failure | retried? | why |
//! |---|---|---|
//! | connect refused / reset / EOF | yes, after reconnect | transient network or a restarting server |
//! | read timeout, truncated line | yes, after reconnect | the response is gone; the op is re-issued |
//! | `EXRQ0006` (overloaded) | yes, same connection | the server asked for backoff |
//! | `EXRQ0007` (deadline shed) | yes, same connection | a fresh attempt gets a fresh deadline |
//! | `EXRQ0008` (draining) | no | the server is going away; retrying races the drain |
//! | `EXRQ0009` (contained panic) | no | deterministic: the same input panics again |
//! | `EPROTO` | no | the request itself is malformed |
//! | any engine/type error | no | deterministic result of the query |
//! | complete-but-unparseable line | no ([`ClientError::Proto`]) | the transport works; the peer is confused |
//!
//! Retrying a *query* is always safe (queries are reads); retrying a
//! *load* is safe because loads are idempotent swaps keyed by URL.
//!
//! ## Determinism
//!
//! Backoff jitter comes from a seeded xorshift generator
//! ([`Config::jitter_seed`]), so a client's retry schedule is a pure
//! function of its config and failure history — the chaos soak and the
//! differential harness stay reproducible end to end.

use exrquy_diag::ErrorCode;
use exrquy_xqd::json::{obj, parse, Value};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client configuration. `Default` is not provided on purpose: the
/// address is mandatory, so construction goes through [`Config::new`].
#[derive(Debug, Clone)]
pub struct Config {
    /// `host:port` of the xqd daemon.
    pub addr: String,
    pub connect_timeout: Duration,
    /// Per-read timeout; a response slower than this counts as a
    /// transport failure (and is retried).
    pub read_timeout: Duration,
    /// Retry budget *per request* (0 = fail fast on first error).
    pub max_retries: u32,
    /// First backoff step; doubles per attempt up to `backoff_max`.
    pub backoff_base: Duration,
    pub backoff_max: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Config {
    pub fn new(addr: impl Into<String>) -> Config {
        Config {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(30),
            max_retries: 4,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            jitter_seed: 0x5eed_cafe,
        }
    }
}

/// Why a request ultimately failed, after any retries.
#[derive(Debug)]
pub enum ClientError {
    /// Connection-level failure (refused, reset, EOF mid-response,
    /// timeout) that survived the whole retry budget.
    Transport(String),
    /// The server delivered a complete line that is not a valid
    /// response (bad JSON, unknown code, mismatched id). Never retried:
    /// the transport works, so a retry would reproduce the confusion.
    Proto(String),
    /// The server answered `ok:false` with a typed, non-retryable code
    /// — or a retryable one after the budget ran out.
    Server { code: ErrorCode, message: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport: {m}"),
            ClientError::Proto(m) => write!(f, "protocol: {m}"),
            ClientError::Server { code, message } => write!(f, "[{}] {message}", code.as_str()),
        }
    }
}

impl std::error::Error for ClientError {}

/// Is an `ok:false` response with this code worth retrying?
///
/// Only the two *load-dependent* sheds qualify: overload
/// (`EXRQ0006`) and deadline (`EXRQ0007`) depend on what else the
/// server was doing, so a later attempt can succeed. Everything else —
/// engine errors, protocol errors, drain refusals, contained panics —
/// is a deterministic function of the request or a sign the server is
/// leaving, and must surface immediately.
pub fn retry_safe(code: ErrorCode) -> bool {
    matches!(code, ErrorCode::EXRQ0006 | ErrorCode::EXRQ0007)
}

/// Exponential backoff with deterministic jitter: attempt `n` (1-based)
/// waits `base * 2^(n-1)` capped at `max`, then jittered into the upper
/// half of that window (`[cap/2, cap]`) by an xorshift draw from
/// `rng_state`. Pure function of its inputs — two clients with the same
/// seed and failure history sleep identically.
pub fn backoff_delay(cfg: &Config, attempt: u32, rng_state: &mut u64) -> Duration {
    let shift = attempt.saturating_sub(1).min(16);
    let cap = cfg
        .backoff_base
        .saturating_mul(1u32 << shift)
        .min(cfg.backoff_max);
    let mut x = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng_state = x;
    let cap_us = cap.as_micros() as u64;
    let half = cap_us / 2;
    let jitter = if half == 0 { 0 } else { x % (half + 1) };
    Duration::from_micros(half + jitter)
}

/// Client-side counters, exposed for benchmarks and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClientStats {
    /// Attempts beyond the first, across all requests.
    pub retries: u64,
    /// Connections established after the first one.
    pub reconnects: u64,
}

/// Options for [`Client::query_with`].
#[derive(Debug, Default, Clone)]
pub struct QueryOpts {
    pub deadline_ms: Option<u64>,
    /// Request the order-aware baseline instead of the default
    /// order-indifferent execution.
    pub baseline: bool,
    /// Route the query at a named server catalog instead of the
    /// default one (see the xqd `catalog` request field).
    pub catalog: Option<String>,
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A lazily-connecting, reconnecting xqd client. Not thread-safe by
/// design (one connection, sequential requests); spawn one per thread.
pub struct Client {
    cfg: Config,
    conn: Option<Conn>,
    ever_connected: bool,
    rng: u64,
    next_id: i64,
    stats: ClientStats,
}

/// One transport attempt's outcome, before retry policy is applied.
enum Once {
    Reply(Value),
    /// Complete line, but not a usable response — never retried.
    Garbage(String),
    /// Connection-level failure — retried after reconnect.
    Gone(String),
}

impl Client {
    /// Create a client. No I/O happens here; the first request
    /// connects (and a dropped connection reconnects on the next one).
    pub fn connect(cfg: Config) -> Client {
        let rng = cfg.jitter_seed;
        Client {
            cfg,
            conn: None,
            ever_connected: false,
            rng,
            next_id: 0,
            stats: ClientStats::default(),
        }
    }

    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Run a query with default options; returns the serialized result.
    pub fn query(&mut self, query: &str) -> Result<String, ClientError> {
        self.query_with(query, &QueryOpts::default())
    }

    pub fn query_with(&mut self, query: &str, opts: &QueryOpts) -> Result<String, ClientError> {
        let mut fields = vec![
            ("op", Value::Str("query".into())),
            ("query", Value::Str(query.into())),
        ];
        if let Some(ms) = opts.deadline_ms {
            fields.push(("deadline_ms", Value::Int(ms as i64)));
        }
        if opts.baseline {
            fields.push(("ordering", Value::Str("baseline".into())));
        }
        if let Some(c) = &opts.catalog {
            fields.push(("catalog", Value::Str(c.clone())));
        }
        let resp = self.request(fields)?;
        match resp.get("result").and_then(Value::as_str) {
            Some(r) => Ok(r.to_string()),
            None => Err(ClientError::Proto(format!(
                "ok response without 'result': {resp:?}"
            ))),
        }
    }

    /// Stage a document and swap it into the server catalog.
    pub fn load(&mut self, url: &str, xml: &str) -> Result<(), ClientError> {
        self.load_into(url, xml, None, None)
    }

    /// Stage a document into a *named* catalog (created by the server on
    /// first load; `None` targets the default), optionally
    /// re-partitioning it into `shards` shards afterwards.
    pub fn load_into(
        &mut self,
        url: &str,
        xml: &str,
        catalog: Option<&str>,
        shards: Option<usize>,
    ) -> Result<(), ClientError> {
        let mut fields = vec![
            ("op", Value::Str("load".into())),
            ("url", Value::Str(url.into())),
            ("xml", Value::Str(xml.into())),
        ];
        if let Some(c) = catalog {
            fields.push(("catalog", Value::Str(c.into())));
        }
        if let Some(n) = shards {
            fields.push(("shards", Value::Int(n as i64)));
        }
        self.request(fields).map(|_| ())
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(vec![("op", Value::Str("ping".into()))])
            .map(|_| ())
    }

    /// Server-side counters as a JSON object.
    pub fn server_stats(&mut self) -> Result<Value, ClientError> {
        self.request(vec![("op", Value::Str("stats".into()))])
    }

    /// Liveness probe payload (worker-pool state).
    pub fn health(&mut self) -> Result<Value, ClientError> {
        self.request(vec![("op", Value::Str("health".into()))])
    }

    /// Readiness probe: `Ok(true)` iff the server is accepting work.
    pub fn ready(&mut self) -> Result<bool, ClientError> {
        let resp = self.request(vec![("op", Value::Str("ready".into()))])?;
        Ok(resp.get("ready") == Some(&Value::Bool(true)))
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(vec![("op", Value::Str("shutdown".into()))])
            .map(|_| ())
    }

    fn request(&mut self, mut fields: Vec<(&str, Value)>) -> Result<Value, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        fields.insert(0, ("id", Value::Int(id)));
        let line = obj(fields).render();
        let mut attempt: u32 = 0;
        loop {
            match self.roundtrip_once(&line, id) {
                Once::Reply(resp) => {
                    if resp.get("ok") == Some(&Value::Bool(true)) {
                        return Ok(resp);
                    }
                    let code_str = resp.get("code").and_then(Value::as_str).unwrap_or("");
                    let Some(code) = ErrorCode::parse(code_str) else {
                        return Err(ClientError::Proto(format!(
                            "error response with unknown code '{code_str}'"
                        )));
                    };
                    let message = resp
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string();
                    if retry_safe(code) && attempt < self.cfg.max_retries {
                        // The transport answered; back off on the same
                        // connection and re-issue.
                        attempt += 1;
                        self.stats.retries += 1;
                        std::thread::sleep(backoff_delay(&self.cfg, attempt, &mut self.rng));
                        continue;
                    }
                    return Err(ClientError::Server { code, message });
                }
                Once::Garbage(m) => return Err(ClientError::Proto(m)),
                Once::Gone(m) => {
                    // Connection state is unknown; drop it so the next
                    // attempt reconnects from scratch.
                    self.conn = None;
                    if attempt < self.cfg.max_retries {
                        attempt += 1;
                        self.stats.retries += 1;
                        std::thread::sleep(backoff_delay(&self.cfg, attempt, &mut self.rng));
                        continue;
                    }
                    return Err(ClientError::Transport(m));
                }
            }
        }
    }

    fn roundtrip_once(&mut self, line: &str, id: i64) -> Once {
        let conn = match self.ensure_conn() {
            Ok(c) => c,
            Err(m) => return Once::Gone(m),
        };
        if let Err(e) = conn
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.write_all(b"\n"))
            .and_then(|()| conn.writer.flush())
        {
            return Once::Gone(format!("write failed: {e}"));
        }
        let mut resp = String::new();
        match conn.reader.read_line(&mut resp) {
            Ok(0) => return Once::Gone("server closed the connection".into()),
            Ok(_) if !resp.ends_with('\n') => {
                // EOF mid-line: a torn frame the peer never finished.
                return Once::Gone("truncated response line".into());
            }
            Ok(_) => {}
            Err(e) => return Once::Gone(format!("read failed: {e}")),
        }
        let v = match parse(resp.trim_end()) {
            Ok(v) => v,
            Err(e) => return Once::Garbage(format!("unparseable response line: {e}")),
        };
        if v.get("id") != Some(&Value::Int(id)) {
            return Once::Garbage(format!("response id mismatch (want {id}): {v:?}"));
        }
        Once::Reply(v)
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn, String> {
        if self.conn.is_none() {
            let addr = self
                .cfg
                .addr
                .to_socket_addrs()
                .map_err(|e| format!("resolve {}: {e}", self.cfg.addr))?
                .next()
                .ok_or_else(|| format!("resolve {}: no addresses", self.cfg.addr))?;
            let stream = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout)
                .map_err(|e| format!("connect {}: {e}", self.cfg.addr))?;
            stream
                .set_read_timeout(Some(self.cfg.read_timeout))
                .map_err(|e| format!("set timeout: {e}"))?;
            let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
            if self.ever_connected {
                self.stats.reconnects += 1;
            }
            self.ever_connected = true;
            self.conn = Some(Conn {
                writer,
                reader: BufReader::new(stream),
            });
        }
        // Invariant: just populated above when absent.
        Ok(self.conn.as_mut().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_safety_is_exactly_the_two_load_dependent_sheds() {
        for &code in ErrorCode::ALL {
            let expected = matches!(code, ErrorCode::EXRQ0006 | ErrorCode::EXRQ0007);
            assert_eq!(
                retry_safe(code),
                expected,
                "{} retry classification",
                code.as_str()
            );
        }
        // The two headline non-retryables, spelled out.
        assert!(!retry_safe(ErrorCode::EXRQ0009));
        assert!(!retry_safe(ErrorCode::EPROTO));
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_into_the_upper_half() {
        let cfg = Config {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(80),
            ..Config::new("x")
        };
        let mut rng = 7;
        for (attempt, cap_ms) in [(1u32, 10u64), (2, 20), (3, 40), (4, 80), (5, 80), (6, 80)] {
            let d = backoff_delay(&cfg, attempt, &mut rng);
            let cap = Duration::from_millis(cap_ms);
            assert!(d >= cap / 2 && d <= cap, "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_in_the_seed() {
        let cfg = Config::new("x");
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = seed;
            (1..=8).map(|a| backoff_delay(&cfg, a, &mut rng)).collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43));
    }
}
