//! The self-healing soak: one daemon with panics, worker deaths, and
//! every network fault armed *simultaneously*, under concurrent query
//! load, poison requests, and hot reloads. The daemon must never die,
//! the client must recover every retry-safe failure, and every
//! successful answer must be byte-identical to direct execution.

use exrquy::Session;
use exrquy_diag::{ErrorCode, Failpoints};
use exrquy_xqc::{Client, ClientError, Config, QueryOpts};
use exrquy_xqd::{spawn, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DOC: &str = "<a><b><c/><d/></b><c/></a>";

/// Order-indifferent queries whose plans are rownum-free, so the armed
/// `panic:rownum` failpoint never fires for them (asserted below).
const POOL: &[&str] = &[
    r#"fn:count(doc("t.xml")//c)"#,
    r#"fn:sum(for $c in doc("t.xml")//c return 1)"#,
    r#"for $c in doc("t.xml")//c return <hit/>"#,
    r#"doc("t.xml")//c"#,
    r#"fn:count(doc("t.xml")//c[fn:count(./d) = 0])"#,
];

fn soak_client(addr: &str, seed: u64) -> Client {
    Client::connect(Config {
        max_retries: 6,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(50),
        read_timeout: Duration::from_secs(30),
        jitter_seed: seed,
        ..Config::new(addr)
    })
}

#[test]
fn daemon_survives_simultaneous_panics_worker_deaths_net_chaos_and_reloads() {
    let mut session = Session::new();
    session.load_document("t.xml", DOC).unwrap();
    let expected: Vec<String> = POOL
        .iter()
        .map(|q| {
            let plan = session
                .explain(q, &exrquy::QueryOptions::order_indifferent())
                .unwrap();
            assert!(
                !plan.plan_text().contains('%'),
                "soak pool query must be rownum-free: {q}"
            );
            session.query(q).unwrap().to_xml()
        })
        .collect();

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        queue_capacity: 64,
        max_inflight_per_client: 2,
        drain_grace: Duration::from_millis(2_000),
        failpoints: Failpoints::parse(
            "panic:rownum,worker-kill:40,net-disconnect:23,net-torn-write:5,\
             net-trickle:11,net-slow-read:13",
        )
        .unwrap(),
        ..ServerConfig::default()
    };
    let handle = spawn(cfg, session).expect("spawn daemon");
    let addr = handle.addr().to_string();

    // EXRQ0009s seen by the *healthy* traffic: only the one worker-kill
    // orphan may land here, and its response frame may itself be eaten
    // by a disconnect fault (in which case the retry succeeds and even
    // that one is invisible).
    let stray_crash_replies = Arc::new(AtomicU64::new(0));
    let total_retries = Arc::new(AtomicU64::new(0));

    let mut threads = Vec::new();
    for t in 0..3u64 {
        let addr = addr.clone();
        let expected = expected.clone();
        let strays = Arc::clone(&stray_crash_replies);
        let retries = Arc::clone(&total_retries);
        threads.push(std::thread::spawn(move || {
            let mut client = soak_client(&addr, 1000 + t);
            for i in 0..40usize {
                let k = (i + t as usize) % POOL.len();
                match client.query(POOL[k]) {
                    Ok(result) => assert_eq!(
                        result, expected[k],
                        "thread {t} request {i} diverged from direct execution"
                    ),
                    Err(ClientError::Server {
                        code: ErrorCode::EXRQ0009,
                        ..
                    }) => {
                        strays.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("thread {t} request {i}: unrecovered failure {other}"),
                }
            }
            retries.fetch_add(client.stats().retries, Ordering::SeqCst);
            assert!(
                client.stats().retries >= 1,
                "thread {t}: 40 frames through a disconnect-every-23rd \
                 transport must have needed at least one retry"
            );
        }));
    }

    // Poison traffic: baseline ordering materializes rownum, so every
    // execution trips `panic:rownum` — each request must come back as
    // a contained EXRQ0009, never kill the daemon, never be retried as
    // if it could succeed.
    {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = soak_client(&addr, 9999);
            let opts = QueryOpts {
                baseline: true,
                ..QueryOpts::default()
            };
            for i in 0..5 {
                match client.query_with(r#"doc("t.xml")//(c|d)"#, &opts) {
                    Err(ClientError::Server {
                        code: ErrorCode::EXRQ0009,
                        ..
                    }) => {}
                    Err(ClientError::Server {
                        code: ErrorCode::EXRQ0008,
                        ..
                    }) => panic!("poison {i}: daemon started draining mid-soak"),
                    other => panic!("poison {i}: wanted contained EXRQ0009, got {other:?}"),
                }
            }
        }));
    }

    // Hot reloads of the *same* content race the query traffic; results
    // stay stable while the catalog pointer churns.
    {
        let addr = addr.clone();
        let strays = Arc::clone(&stray_crash_replies);
        threads.push(std::thread::spawn(move || {
            let mut client = soak_client(&addr, 777);
            for i in 0..25 {
                match client.load("t.xml", DOC) {
                    Ok(()) => {}
                    Err(ClientError::Server {
                        code: ErrorCode::EXRQ0009,
                        ..
                    }) => {
                        // The worker-kill orphan may be a load.
                        strays.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("reload {i}: {other}"),
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    for t in threads {
        t.join().expect("soak thread panicked");
    }

    // Zero daemon deaths: it still answers, with a full worker pool.
    let mut probe = soak_client(&addr, 1);
    probe.ping().expect("daemon alive after the soak");
    let health = probe.health().expect("health probe");
    assert_eq!(
        health.get("workers_alive").and_then(|v| v.as_i64()),
        Some(3),
        "supervisor restored the pool: {health:?}"
    );
    assert!(probe.ready().expect("ready probe"), "not draining");

    assert!(
        stray_crash_replies.load(Ordering::SeqCst) <= 1,
        "at most the single worker-kill orphan may surface EXRQ0009 \
         outside the poison traffic"
    );
    assert!(total_retries.load(Ordering::SeqCst) >= 3);

    let stats = handle.shutdown();
    assert!(stats.reconciles(), "admission ledger: {stats:?}");
    assert!(
        stats.crashed >= 5,
        "five poison executions plus the worker kill: {stats:?}"
    );
    assert!(stats.workers_respawned >= 1, "{stats:?}");
    assert_eq!(stats.shed_overload, 0, "queue never overflowed: {stats:?}");
}
