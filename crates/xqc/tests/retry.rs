//! Retry-path coverage against scripted flaky servers: each test stands
//! up a raw `TcpListener` that misbehaves in one specific way and
//! asserts the client retries exactly when the failure is retry-safe.

use exrquy_diag::ErrorCode;
use exrquy_xqc::{Client, ClientError, Config};
use exrquy_xqd::json::{parse, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Fast-retry config pointed at `addr`.
fn quick_cfg(addr: &str) -> Config {
    Config {
        max_retries: 3,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        read_timeout: Duration::from_secs(5),
        ..Config::new(addr)
    }
}

/// Read one request line off `stream`; returns the echoed id rendering.
fn read_request(reader: &mut BufReader<TcpStream>) -> Option<Value> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) | Err(_) => None,
        Ok(_) => parse(line.trim_end()).ok()?.get("id").cloned(),
    }
}

fn respond(stream: &mut TcpStream, body: &str) {
    stream.write_all(body.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

/// Spawn a scripted server; each closure handles one accepted
/// connection in order, then the listener closes.
fn scripted<F>(script: Vec<F>) -> (String, JoinHandle<()>)
where
    F: FnOnce(TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        for handler in script {
            let (stream, _) = listener.accept().unwrap();
            handler(stream);
        }
    });
    (addr, handle)
}

#[test]
fn connection_drop_before_response_triggers_reconnect_and_retry() {
    let (addr, server) = scripted(vec![
        // First connection: read the request, slam the door.
        Box::new(|stream: TcpStream| {
            let mut reader = BufReader::new(stream);
            let _ = read_request(&mut reader);
            // dropping the stream closes it without a response
        }) as Box<dyn FnOnce(TcpStream) + Send>,
        // Second connection: behave.
        Box::new(|stream: TcpStream| {
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let id = read_request(&mut reader).unwrap();
            respond(
                &mut writer,
                &format!(r#"{{"id":{},"ok":true,"result":"2"}}"#, id.render()),
            );
        }),
    ]);

    let mut client = Client::connect(quick_cfg(&addr));
    assert_eq!(client.query("1 + 1").unwrap(), "2");
    assert_eq!(client.stats().retries, 1);
    assert_eq!(client.stats().reconnects, 1);
    server.join().unwrap();
}

#[test]
fn overload_shed_is_retried_on_the_same_connection() {
    let (addr, server) = scripted(vec![Box::new(|stream: TcpStream| {
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // First attempt: shed with the retry-safe overload code.
        let id = read_request(&mut reader).unwrap();
        respond(
            &mut writer,
            &format!(
                r#"{{"id":{},"ok":false,"code":"EXRQ0006","message":"overloaded"}}"#,
                id.render()
            ),
        );
        // Retry arrives on the *same* connection.
        let id = read_request(&mut reader).unwrap();
        respond(
            &mut writer,
            &format!(r#"{{"id":{},"ok":true,"result":"2"}}"#, id.render()),
        );
    }) as Box<dyn FnOnce(TcpStream) + Send>]);

    let mut client = Client::connect(quick_cfg(&addr));
    assert_eq!(client.query("1 + 1").unwrap(), "2");
    assert_eq!(client.stats().retries, 1);
    assert_eq!(client.stats().reconnects, 0, "no reconnect for a shed");
    server.join().unwrap();
}

#[test]
fn non_retryable_codes_fail_immediately_without_a_second_request() {
    for code in ["EXRQ0009", "EPROTO", "XPST0003", "EXRQ0008"] {
        let requests_seen = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&requests_seen);
        let response = format!(r#""ok":false,"code":"{code}","message":"nope""#);
        let (addr, server) = scripted(vec![Box::new(move |stream: TcpStream| {
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            while let Some(id) = read_request(&mut reader) {
                seen.fetch_add(1, Ordering::SeqCst);
                respond(
                    &mut writer,
                    &format!(r#"{{"id":{},{response}}}"#, id.render()),
                );
            }
        }) as Box<dyn FnOnce(TcpStream) + Send>]);

        let mut client = Client::connect(quick_cfg(&addr));
        match client.query("1") {
            Err(ClientError::Server { code: got, .. }) => {
                assert_eq!(got, ErrorCode::parse(code).unwrap());
            }
            other => panic!("{code}: wanted a server error, got {other:?}"),
        }
        assert_eq!(client.stats().retries, 0, "{code} must not be retried");
        drop(client); // closes the connection, ends the server loop
        server.join().unwrap();
        assert_eq!(requests_seen.load(Ordering::SeqCst), 1, "{code}");
    }
}

#[test]
fn garbage_and_mismatched_responses_are_protocol_errors_not_retries() {
    for bad in [
        "this is not json".to_string(),
        // Valid JSON, but the wrong id: a confused peer, not a lost one.
        r#"{"id":999,"ok":true,"result":"2"}"#.to_string(),
        // Valid error shape with a code outside the taxonomy.
        r#"{"id":1,"ok":false,"code":"EWHAT","message":"?"}"#.to_string(),
    ] {
        let (addr, server) = scripted(vec![Box::new(move |stream: TcpStream| {
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let _ = read_request(&mut reader);
            respond(&mut writer, &bad);
        }) as Box<dyn FnOnce(TcpStream) + Send>]);

        let mut client = Client::connect(quick_cfg(&addr));
        match client.query("1") {
            Err(ClientError::Proto(_)) => {}
            other => panic!("wanted a protocol error, got {other:?}"),
        }
        assert_eq!(client.stats().retries, 0);
        server.join().unwrap();
    }
}

#[test]
fn truncated_response_line_counts_as_transport_and_is_retried() {
    let (addr, server) = scripted(vec![
        Box::new(|mut stream: TcpStream| {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let _ = read_request(&mut reader);
            // Half a frame, no newline, then close: a torn write the
            // peer never finished.
            stream.write_all(br#"{"id":1,"ok":tr"#).unwrap();
            stream.flush().unwrap();
        }) as Box<dyn FnOnce(TcpStream) + Send>,
        Box::new(|stream: TcpStream| {
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let id = read_request(&mut reader).unwrap();
            respond(
                &mut writer,
                &format!(r#"{{"id":{},"ok":true,"result":"1"}}"#, id.render()),
            );
        }),
    ]);

    let mut client = Client::connect(quick_cfg(&addr));
    assert_eq!(client.query("1").unwrap(), "1");
    assert_eq!(client.stats().retries, 1);
    assert_eq!(client.stats().reconnects, 1);
    server.join().unwrap();
}

#[test]
fn connect_refused_exhausts_the_retry_budget_then_surfaces_transport() {
    // Bind then drop to get a port that actively refuses.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let mut client = Client::connect(quick_cfg(&addr));
    match client.query("1") {
        Err(ClientError::Transport(m)) => assert!(m.contains("connect"), "{m}"),
        other => panic!("wanted transport failure, got {other:?}"),
    }
    assert_eq!(client.stats().retries, 3, "full budget spent");
}
