//! Minimal micro-benchmark harness, API-compatible with the subset of
//! `criterion` the `benches/` targets use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! / `iter_batched`, `criterion_group!` / `criterion_main!`).
//!
//! It times each benchmark over a fixed number of samples and prints a
//! `group/label/param  median  mean` line per benchmark. No statistics
//! engine, no HTML reports — just stable wall-clock numbers with zero
//! external dependencies, so the bench targets build offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

pub struct BenchmarkId {
    label: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(label: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: label.to_string(),
            param: param.to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        let mut s = b.samples;
        s.sort_unstable();
        let median = s.get(s.len() / 2).copied().unwrap_or_default();
        let mean = if s.is_empty() {
            Duration::ZERO
        } else {
            s.iter().sum::<Duration>() / s.len() as u32
        };
        println!(
            "  {}/{}/{}  median {:?}  mean {:?}",
            self.name, id.label, id.param, median, mean
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f` once per sample, after one untimed warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std_black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    /// Criterion-style batched iteration: `setup` runs untimed before
    /// each timed call of `f`.
    pub fn iter_batched<S, O, Setup, F>(&mut self, mut setup: Setup, mut f: F, _size: BatchSize)
    where
        Setup: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        std_black_box(f(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std_black_box(f(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Criterion-compatible: bundle benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Criterion-compatible: `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($g:ident),+ $(,)?) => {
        fn main() { $( $g(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("id", 1), &7u32, |b, &x| b.iter(|| x * 2));
        g.bench_with_input(BenchmarkId::new("batched", 2), &(), |b, _| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
