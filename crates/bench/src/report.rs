//! Shared JSON report writer for the bench binaries.
//!
//! `par-bench` and `qps-bench` emit their `BENCH_*.json` artifacts
//! through the same codec the daemon's wire protocol uses
//! ([`exrquy_xqd::json`]), so the reports are valid JSON by
//! construction — no hand-rolled string assembly to drift.

use exrquy_xqd::json::Value;

/// Wrap an `f64` for a report, flattening NaN/inf to null (JSON has no
/// spelling for them).
pub fn num(f: f64) -> Value {
    Value::Float(f)
}

/// Write `report` to `path` with a trailing newline.
pub fn write(path: &str, report: &Value) {
    let mut text = report.render();
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Interpolated percentile over an **ascending-sorted** slice of
/// latencies. `p` in [0, 100]; empty input yields 0.
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted_ms.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted_ms[lo]
    } else {
        let frac = rank - lo as f64;
        sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn reports_render_as_valid_json() {
        let report =
            exrquy_xqd::json::obj(vec![("bench", Value::Str("x".into())), ("p50", num(1.25))]);
        let text = report.render();
        assert_eq!(exrquy_xqd::json::parse(&text).unwrap(), report);
    }
}
