//! Reproduction of the paper's **Figure 12**: observed speedup from order
//! indifference over the complete XMark query set, across document sizes.
//!
//! The paper sweeps documents from 1 MB to 10 GB and reports speedups of
//! 0–10 000 % (logarithmic outliers Q6/Q7 from step merging, Q11/Q12 from
//! the removed iter→seq reorder). A speedup of 100 % means the
//! order-indifferent plans execute twice as fast.
//!
//! Usage:
//! `figure12 [--scales 0.001,0.01,0.1] [--runs 2] [--cutoff-ms 30000] [--queries 1..20]`
//!
//! Default scales 0.001/0.01/0.1 correspond to ≈0.1/1/10 MB-class
//! instances on this generator (the paper's shape, laptop-sized); pass
//! `--scales 1` for the 100 MB-class run.

use exrquy::QueryOptions;
use exrquy_bench::{best_of, fmt_bytes, xmark_session, Cli};
use exrquy_xmark::{query, query_name};
use std::time::Duration;

fn main() {
    let cli = Cli::new();
    let scales: Vec<f64> = cli
        .get("scales", String::from("0.001,0.01,0.1"))
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let runs = cli.get("runs", 2_usize);
    let cutoff = Duration::from_millis(cli.get("cutoff-ms", 30_000_u64));
    let queries: Vec<usize> = parse_queries(&cli.get("queries", String::from("1..20")));

    println!("== Figure 12: speedup of order indifference on XMark ==");
    println!("speedup = t_baseline / t_enabled - 1 (100 % ⇒ twice as fast)\n");

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header = vec!["query".to_string()];
    let mut per_scale: Vec<Vec<Option<f64>>> = Vec::new();

    for &scale in &scales {
        let (mut session, bytes) = xmark_session(scale);
        header.push(format!("{} ", fmt_bytes(bytes)));
        eprintln!(
            "scale {scale}: {} / {} nodes",
            fmt_bytes(bytes),
            session.store_nodes()
        );
        let mut col: Vec<Option<f64>> = Vec::new();
        for &n in &queries {
            let q = query(n);
            let base = best_of(&mut session, q, &QueryOptions::baseline(), runs);
            let speedup = match base {
                Ok(tb) if tb <= cutoff => {
                    let te = best_of(&mut session, q, &QueryOptions::order_indifferent(), runs)
                        .expect("enabled run failed");
                    Some(100.0 * (tb.as_secs_f64() / te.as_secs_f64().max(1e-9) - 1.0))
                }
                Ok(_) => None, // over cutoff (paper: 30 s interactive cutoff)
                Err(e) => panic!("{}: baseline failed: {e}", query_name(n)),
            };
            eprintln!(
                "  {:>4}: {}",
                query_name(n),
                speedup.map_or("(cutoff)".into(), |s| format!("{s:+.0} %"))
            );
            col.push(speedup);
        }
        per_scale.push(col);
    }

    for (qi, &n) in queries.iter().enumerate() {
        let mut row = vec![query_name(n)];
        for col in &per_scale {
            row.push(match col[qi] {
                Some(s) => format!("{s:+.0} %"),
                None => "—".into(),
            });
        }
        rows.push(row);
    }

    // Render the table.
    println!();
    let widths: Vec<usize> = (0..header.len())
        .map(|c| {
            rows.iter()
                .map(|r| r[c].chars().count())
                .chain(std::iter::once(header[c].chars().count()))
                .max()
                .unwrap()
        })
        .collect();
    let print_row = |cells: &[String], widths: &[usize]| {
        let line: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", line.join(" | "));
    };
    print_row(&header, &widths);
    for r in &rows {
        print_row(r, &widths);
    }
    println!(
        "\npaper shape: most queries gain 0–250 %; Q6/Q7 are logarithmic\n\
         outliers (step merging); Q11/Q12 gain from the removed iter→seq\n\
         reorder; '—' marks baseline runs over the cutoff."
    );
}

fn parse_queries(spec: &str) -> Vec<usize> {
    if let Some((a, b)) = spec.split_once("..") {
        let a: usize = a.parse().unwrap_or(1);
        let b: usize = b.parse().unwrap_or(20);
        (a..=b).collect()
    } else {
        spec.split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect()
    }
}
