//! Vectorized engine-core benchmark: scalar operator-at-a-time vs the
//! batch-at-a-time path (flattened physical programs, selection vectors,
//! fused kernels), emitting `BENCH_vec.json`.
//!
//! Usage:
//! `vec-bench [--scales 0.01,0.1] [--runs 3] [--queries 1..20]
//!            [--micro-rows 500000] [--micro-runs <runs>]
//!            [--out BENCH_vec.json]
//!            [--baseline seed_times.txt] [--baseline-label <rev>]`
//!
//! Two sections:
//!
//! * **micro** — synthetic single-operator-class kernels (map, filter,
//!   fused filter→map chains, aggregation, distinct) over a generated
//!   integer stream, reported as ns/row for each engine path. These
//!   isolate where batching pays: fused chains skip whole intermediate
//!   table materializations, selection vectors defer gathers, and the
//!   bit-packed boolean column feeds σ without boxing.
//! * **e2e** — the XMark query set at each configured scale, scalar vs
//!   vectorized wall-clock, with the per-scale geometric-mean speedup.
//!
//! Every e2e cell's rendered output must be byte-identical between the
//! two paths (`identical_serializations` in the JSON — the run aborts
//! red otherwise), so the speedup is never bought with a semantics
//! change.
//!
//! `--baseline` points at a whitespace-separated `scale query ms` file
//! (lines starting with `#` are comments) holding the same queries
//! timed by the *pre-refactor* build's harness on the same host; when
//! given, each row and scale section also reports the speedup of the
//! vectorized path over that baseline. This is the end-to-end "vs the
//! engine before the batch core landed" number — the in-binary scalar
//! column understates it because `--scalar` shares the columnar table
//! layout, the staircase/name-stream steps, and the constructor fast
//! paths with the vectorized engine.

use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_bench::report::{num, write};
use exrquy_bench::{best_of, fmt_bytes, xmark_session, Cli};
use exrquy_xmark::{query, query_name};
use exrquy_xqd::json::{obj, Value};

/// One micro-benchmark kernel: a query whose runtime is dominated by a
/// single operator class, and the row count it processes.
struct Micro {
    class: &'static str,
    rows: usize,
    query: String,
}

fn micros(n: usize) -> Vec<Micro> {
    vec![
        Micro {
            class: "map (fun)",
            rows: n,
            query: format!("fn:count(for $i in (1 to {n}) return $i * 2 + 1)"),
        },
        Micro {
            class: "filter (select)",
            rows: n,
            query: format!("fn:count(for $i in (1 to {n}) where $i mod 7 = 3 return $i)"),
        },
        Micro {
            class: "fused filter->map",
            rows: n,
            query: format!("fn:count(for $i in (1 to {n}) where $i mod 7 = 3 return $i * 2 + 1)"),
        },
        Micro {
            class: "aggregate (sum)",
            rows: n,
            query: format!("fn:sum(for $i in (1 to {n}) return $i mod 97)"),
        },
        Micro {
            class: "distinct",
            rows: n,
            query: format!("fn:count(fn:distinct-values(for $i in (1 to {n}) return $i mod 1024))"),
        },
    ]
}

fn main() {
    let cli = Cli::new();
    let scales: Vec<f64> = cli
        .get("scales", String::from("0.01,0.1"))
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let runs = cli.get("runs", 3_usize);
    let queries = parse_queries(&cli.get("queries", String::from("1..20")));
    let micro_rows = cli.get("micro-rows", 500_000_usize);
    // Micro cells run hundreds of milliseconds each — they are stable at
    // far fewer repetitions than the sub-millisecond e2e cells need.
    let micro_runs = cli.get("micro-runs", runs);
    let out_path = cli.get("out", String::from("BENCH_vec.json"));
    let baseline_path = cli.get("baseline", String::new());
    let baseline_label = cli.get("baseline-label", String::from("pre-refactor"));
    let baseline = load_baseline(&baseline_path);

    let scalar_opts = QueryOptions::order_indifferent().with_vectorized(false);
    let vector_opts = QueryOptions::order_indifferent().with_vectorized(true);

    // Micro section: ns/row per operator class, no document involved.
    eprintln!("vec-bench: micro kernels over {micro_rows} rows");
    let mut session = Session::new();
    let mut micro_rows_json: Vec<Value> = Vec::new();
    for m in micros(micro_rows) {
        let scalar = best_of(&mut session, &m.query, &scalar_opts, micro_runs)
            .unwrap_or_else(|e| panic!("micro `{}` scalar failed: {e}", m.class));
        let vector = best_of(&mut session, &m.query, &vector_opts, micro_runs)
            .unwrap_or_else(|e| panic!("micro `{}` vectorized failed: {e}", m.class));
        let (s_ns, v_ns) = (
            scalar.as_nanos() as f64 / m.rows as f64,
            vector.as_nanos() as f64 / m.rows as f64,
        );
        eprintln!(
            "  {:>18}: scalar {s_ns:7.1} ns/row, vectorized {v_ns:7.1} ns/row (x{:.2})",
            m.class,
            s_ns / v_ns.max(1e-9)
        );
        micro_rows_json.push(obj(vec![
            ("class", Value::Str(m.class.into())),
            ("rows", Value::Int(m.rows as i64)),
            ("scalar_ns_per_row", num(s_ns)),
            ("vectorized_ns_per_row", num(v_ns)),
            ("speedup", num(s_ns / v_ns.max(1e-9))),
        ]));
    }

    // E2E section: XMark at each scale, both engine paths.
    let mut identical = true;
    let mut scale_sections: Vec<Value> = Vec::new();
    for &scale in &scales {
        let (mut session, bytes) = xmark_session(scale);
        eprintln!(
            "vec-bench: XMark scale {scale} ({}), {} nodes",
            fmt_bytes(bytes),
            session.store_nodes()
        );
        let mut rows: Vec<Value> = Vec::new();
        let mut ratios: Vec<f64> = Vec::new();
        let mut base_ratios: Vec<f64> = Vec::new();
        for &n in &queries {
            let q = query(n);
            if rendered(&mut session, q, &scalar_opts) != rendered(&mut session, q, &vector_opts) {
                identical = false;
                eprintln!("  {}: output DIVERGED between engine paths", query_name(n));
            }
            let scalar = best_of(&mut session, q, &scalar_opts, runs)
                .unwrap_or_else(|e| panic!("{} scalar failed: {e}", query_name(n)));
            let vector = best_of(&mut session, q, &vector_opts, runs)
                .unwrap_or_else(|e| panic!("{} vectorized failed: {e}", query_name(n)));
            let (s_ms, v_ms) = (scalar.as_secs_f64() * 1e3, vector.as_secs_f64() * 1e3);
            let speedup = s_ms / v_ms.max(1e-9);
            ratios.push(speedup);
            let mut cells = vec![
                ("query", Value::Str(query_name(n))),
                ("scalar_ms", num(s_ms)),
                ("vectorized_ms", num(v_ms)),
                ("speedup", num(speedup)),
            ];
            let base = baseline
                .iter()
                .find_map(|&((bs, bq), ms)| ((bs - scale).abs() < 1e-12 && bq == n).then_some(ms));
            match base {
                Some(b_ms) => {
                    let vs_base = b_ms / v_ms.max(1e-9);
                    base_ratios.push(vs_base);
                    cells.push(("baseline_ms", num(b_ms)));
                    cells.push(("speedup_vs_baseline", num(vs_base)));
                    eprintln!(
                        "  {:>4}: scalar {s_ms:8.2} ms, vectorized {v_ms:8.2} ms (x{speedup:.2}; x{vs_base:.2} vs {baseline_label} {b_ms:.2} ms)",
                        query_name(n)
                    );
                }
                None => eprintln!(
                    "  {:>4}: scalar {s_ms:8.2} ms, vectorized {v_ms:8.2} ms (x{speedup:.2})",
                    query_name(n)
                ),
            }
            rows.push(obj(cells));
        }
        let geomean =
            (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len().max(1) as f64).exp();
        eprintln!("  scale {scale}: geomean speedup x{geomean:.2} (vs in-binary --scalar)");
        let mut section = vec![
            ("scale", num(scale)),
            ("doc_bytes", Value::Int(bytes as i64)),
            ("geomean_speedup", num(geomean)),
        ];
        if !base_ratios.is_empty() {
            let g =
                (base_ratios.iter().map(|r| r.ln()).sum::<f64>() / base_ratios.len() as f64).exp();
            eprintln!("  scale {scale}: geomean speedup x{g:.2} (vs {baseline_label})");
            section.push(("geomean_speedup_vs_baseline", num(g)));
        }
        section.push(("queries", Value::Array(rows)));
        scale_sections.push(obj(section));
    }

    let mut report = vec![
        ("bench", Value::Str("vectorized-engine-core".into())),
        ("runs_per_cell", Value::Int(runs as i64)),
        (
            "host_cores",
            Value::Int(std::thread::available_parallelism().map_or(1, |n| n.get()) as i64),
        ),
        ("identical_serializations", Value::Bool(identical)),
    ];
    if !baseline.is_empty() {
        report.push(("baseline", Value::Str(baseline_label.clone())));
    }
    report.push(("micro", Value::Array(micro_rows_json)));
    report.push(("xmark", Value::Array(scale_sections)));
    let report = obj(report);
    write(&out_path, &report);
    eprintln!(
        "wrote {out_path} (serializations {})",
        if identical { "identical" } else { "DIVERGED" }
    );
    assert!(identical, "vectorized output diverged from scalar");
}

/// Parse a `scale query ms` baseline file (e.g. `0.01 Q7 0.38`); `#`
/// lines are comments, a missing or empty path yields no baseline.
fn load_baseline(path: &str) -> Vec<((f64, usize), f64)> {
    if path.is_empty() {
        return Vec::new();
    }
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline file `{path}`: {e}"));
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_whitespace();
        let (Some(s), Some(q), Some(ms)) = (f.next(), f.next(), f.next()) else {
            panic!("malformed baseline line `{line}` (want `scale query ms`)");
        };
        let scale: f64 = s
            .parse()
            .unwrap_or_else(|_| panic!("bad scale in `{line}`"));
        let qn: usize = q
            .trim_start_matches(['Q', 'q'])
            .parse()
            .unwrap_or_else(|_| panic!("bad query in `{line}`"));
        let ms: f64 = ms.parse().unwrap_or_else(|_| panic!("bad ms in `{line}`"));
        out.push(((scale, qn), ms));
    }
    out
}

/// The byte-identity witness: full rendered output, order preserved.
fn rendered(session: &mut Session, q: &str, opts: &QueryOptions) -> Vec<String> {
    let out = session.query_with(q, opts).expect("query failed");
    out.items.iter().map(ResultItem::render).collect()
}

fn parse_queries(spec: &str) -> Vec<usize> {
    if let Some((a, b)) = spec.split_once("..") {
        let a: usize = a.parse().unwrap_or(1);
        let b: usize = b.parse().unwrap_or(20);
        (a..=b).collect()
    } else {
        spec.split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect()
    }
}
