//! Reproduction of the paper's **Table 2**: the execution-time profile of
//! XMark Q11.
//!
//! The paper reports (558 MB instance, order indifference ignored):
//!
//! ```text
//! Sub-expression                              Time [ms]      %
//! $auction/site/people/person                       107    <1 %
//! $auction/site/…/initial                           144    <1 %
//! …/@income, 5000 * $i (+ atomization)              949     2 %
//! join (of $p and $i)                            23,989    45 %
//! return $i  (iter → seq)                        23,861    45 %
//! <items name=…</items>                             627     1 %
//! fn:count($l)                                    3,367     6 %
//! ```
//!
//! and shows that enabling order indifference removes the `iter → seq`
//! reorder entirely (≈45 % saved). We reproduce the breakdown by operator
//! phase for both compiler configurations.
//!
//! Usage: `table2 [--scale 0.02] [--runs 3]`

use exrquy::{QueryOptions, Session};
use exrquy_bench::{fmt_bytes, xmark_session, Cli};
use exrquy_xmark::query;
use std::time::Duration;

fn main() {
    let cli = Cli::new();
    let scale = cli.get("scale", 0.02_f64);
    let runs = cli.get("runs", 3_usize);

    println!("== Table 2: Q11 profile breakdown ==");
    let (mut session, bytes) = xmark_session(scale);
    println!(
        "XMark scale {scale} ({}, {} nodes)\n",
        fmt_bytes(bytes),
        session.store_nodes()
    );

    let base_total = profile(
        &mut session,
        "baseline (order indifference ignored)",
        &QueryOptions::baseline(),
        runs,
    );
    let oi_total = profile(
        &mut session,
        "order indifference enabled",
        &QueryOptions::order_indifferent(),
        runs,
    );

    let saved = 100.0 * (1.0 - oi_total.as_secs_f64() / base_total.as_secs_f64().max(1e-12));
    println!(
        "total: baseline {:.1} ms, enabled {:.1} ms — {:.0} % of execution time saved",
        base_total.as_secs_f64() * 1e3,
        oi_total.as_secs_f64() * 1e3,
        saved
    );
    println!("(paper: the iter→seq reorder alone accounted for 45 %)");
}

fn profile(session: &mut Session, label: &str, opts: &QueryOptions, runs: usize) -> Duration {
    let plan = session.prepare(query(11), opts).expect("Q11 compiles");
    // Warm-up + best-of-N profile.
    let mut best: Option<(Duration, exrquy::engine::Profile)> = None;
    for _ in 0..runs.max(1) {
        let out = session.execute(&plan).expect("Q11 executes");
        let total = out.profile.total();
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, out.profile));
        }
    }
    let (total, prof) = best.unwrap();
    println!("-- {label} --");
    println!(
        "plan: {} (initial {})",
        plan.stats_final, plan.stats_initial
    );
    print!("{}", prof.render_breakdown(&plan.dag));
    println!();
    total
}
