//! Serving-layer load benchmark: hammer an `xqd` daemon with N
//! concurrent clients and report throughput, latency percentiles, and
//! shed/error counts to `BENCH_serve.json`.
//!
//! Usage:
//! `qps-bench [--addr host:port] [--scale 0.005] [--clients 4]
//!            [--requests 50] [--queries 1,6,13] [--deadline-ms 0]
//!            [--retries 0] [--reload-every 0] [--workers 4] [--queue 64]
//!            [--max-inflight 2] [--threads 0] [--out BENCH_serve.json]`
//!
//! Without `--addr` the daemon is spawned in-process on a loopback port
//! with an XMark document at `--scale`, so the benchmark is
//! self-contained (this is what CI runs). Shed responses (`EXRQ0006/7/8`)
//! are *successes* of the overload policy and are counted separately
//! from errors: the daemon's contract is a typed answer for every
//! request, never a hang.
//!
//! Clients go through the retrying `xqc` library. `--retries` defaults
//! to 0 so sheds stay *visible* in the tally instead of being absorbed
//! by the retry loop; raise it to measure the self-healing path.
//! `--reload-every <ms>` (in-process mode only) runs a reloader thread
//! that hot-swaps the same XMark document into the catalog on that
//! cadence for the whole run — the hot-reload soak: throughput under
//! continuous catalog churn, with zero failed requests.

use exrquy::Session;
use exrquy_bench::report::{num, percentile, write};
use exrquy_bench::{fmt_bytes, Cli};
use exrquy_diag::ErrorCode;
use exrquy_xmark::{generate, query, XmarkConfig};
use exrquy_xqc::{Client, ClientError, Config, QueryOpts};
use exrquy_xqd::json::{obj, Value};
use exrquy_xqd::{spawn, ServerConfig, ServerHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

#[derive(Debug, Default, Clone)]
struct ClientTally {
    latencies_ms: Vec<f64>,
    ok: u64,
    shed_overload: u64,
    shed_deadline: u64,
    shed_draining: u64,
    errors: u64,
    retries: u64,
}

fn bench_client(addr: &str, seed: u64, retries: u32) -> Client {
    Client::connect(Config {
        max_retries: retries,
        read_timeout: Duration::from_secs(120),
        jitter_seed: seed,
        ..Config::new(addr)
    })
}

fn main() {
    let cli = Cli::new();
    let addr_flag = cli.get("addr", String::new());
    let scale = cli.get("scale", 0.005_f64);
    let clients = cli.get("clients", 4_usize).max(1);
    let requests = cli.get("requests", 50_usize).max(1);
    let deadline_ms = cli.get("deadline-ms", 0_u64);
    let retries = cli.get("retries", 0_u32);
    let reload_every_ms = cli.get("reload-every", 0_u64);
    let catalogs_n = cli.get("catalogs", 0_usize);
    let shards = cli.get("shards", 0_usize);
    let out_path = cli.get("out", String::from("BENCH_serve.json"));
    let query_nums: Vec<usize> = cli
        .get("queries", String::from("1,6,13"))
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let queries: Vec<String> = query_nums.iter().map(|&n| query(n).to_string()).collect();
    assert!(!queries.is_empty(), "--queries selected nothing");

    // Spawn in-process unless pointed at a running daemon.
    let mut spawned: Option<ServerHandle> = None;
    let mut corpus_xml: Option<String> = None;
    let addr = if addr_flag.is_empty() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cli.get("workers", 4_usize),
            queue_capacity: cli.get("queue", 64_usize),
            max_inflight_per_client: cli.get("max-inflight", 2_usize),
            threads: cli.get("threads", 0_usize),
            ..ServerConfig::default()
        };
        let xml = generate(&XmarkConfig::at_scale(scale));
        let bytes = xml.len();
        let mut session = Session::new();
        session
            .load_document("auction.xml", &xml)
            .expect("generated XMark document must parse");
        eprintln!(
            "qps-bench: in-process xqd, scale {scale} ({}), {} workers",
            fmt_bytes(bytes),
            cfg.workers
        );
        corpus_xml = Some(xml);
        let handle = spawn(cfg, session).expect("spawn in-process daemon");
        let addr = handle.addr().to_string();
        spawned = Some(handle);
        addr
    } else {
        if reload_every_ms > 0 {
            eprintln!("qps-bench: --reload-every needs the in-process daemon (no --addr)");
            std::process::exit(64);
        }
        if catalogs_n > 0 {
            corpus_xml = Some(generate(&XmarkConfig::at_scale(scale)));
        }
        eprintln!("qps-bench: targeting running daemon at {addr_flag}");
        addr_flag
    };

    // Multi-tenant arm: stand up `--catalogs M` named catalogs, each
    // holding its own copy of the XMark document (staged lazily
    // server-side, optionally re-partitioned with `--shards N`), then
    // route client c at catalog c mod M. Latency percentiles are
    // reported per catalog as well as overall.
    let catalog_names: Vec<String> = (0..catalogs_n).map(|i| format!("cat{i}")).collect();
    if catalogs_n > 0 {
        let xml = corpus_xml.as_ref().expect("corpus generated above");
        let mut setup = bench_client(&addr, 0xca7a, 4);
        for name in &catalog_names {
            setup
                .load_into(
                    "auction.xml",
                    xml,
                    Some(name),
                    (shards > 0).then_some(shards),
                )
                .expect("named catalog setup load");
        }
        eprintln!(
            "qps-bench: {} named catalogs loaded{}",
            catalogs_n,
            if shards > 0 {
                format!(", {shards} shards each")
            } else {
                String::new()
            }
        );
    }

    // The hot-reload soak: swap the identical document into the catalog
    // on a fixed cadence while the clients hammer queries. Results stay
    // stable (same content); only the snapshot pointer churns.
    let stop_reloader = AtomicBool::new(false);
    let started = Instant::now();
    let reload_xml = (reload_every_ms > 0).then(|| corpus_xml.clone().expect("in-process"));
    let (tallies, reloads) = std::thread::scope(|scope| {
        let reloader = reload_xml.as_ref().map(|xml| {
            let addr = addr.clone();
            let stop = &stop_reloader;
            scope.spawn(move || {
                let mut client = bench_client(&addr, 0x4e10ad, 4);
                let mut reloads = 0_u64;
                while !stop.load(Ordering::SeqCst) {
                    match client.load("auction.xml", xml) {
                        Ok(()) => reloads += 1,
                        // Overload past the retry budget: skip this round.
                        Err(ClientError::Server {
                            code: ErrorCode::EXRQ0006,
                            ..
                        }) => {}
                        Err(e) => panic!("hot reload failed mid-bench: {e}"),
                    }
                    std::thread::sleep(Duration::from_millis(reload_every_ms));
                }
                reloads
            })
        });
        let mut handles = Vec::new();
        for c in 0..clients {
            let addr = addr.clone();
            let queries = &queries;
            let catalog = (catalogs_n > 0).then(|| catalog_names[c % catalogs_n].clone());
            handles.push(scope.spawn(move || {
                run_client(
                    &addr,
                    c,
                    requests,
                    queries,
                    deadline_ms,
                    retries,
                    catalog.as_deref(),
                )
            }));
        }
        let tallies: Vec<ClientTally> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop_reloader.store(true, Ordering::SeqCst);
        let reloads = reloader.map(|h| h.join().unwrap()).unwrap_or(0);
        (tallies, reloads)
    });
    let wall = started.elapsed();

    let mut all = ClientTally::default();
    for t in &tallies {
        all.latencies_ms.extend_from_slice(&t.latencies_ms);
        all.ok += t.ok;
        all.shed_overload += t.shed_overload;
        all.shed_deadline += t.shed_deadline;
        all.shed_draining += t.shed_draining;
        all.errors += t.errors;
        all.retries += t.retries;
    }
    all.latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let total = (clients * requests) as u64;
    let answered = all.latencies_ms.len() as u64;
    let shed = all.shed_overload + all.shed_deadline + all.shed_draining;
    let throughput = answered as f64 / wall.as_secs_f64().max(1e-9);
    let (p50, p95, p99) = (
        percentile(&all.latencies_ms, 50.0),
        percentile(&all.latencies_ms, 95.0),
        percentile(&all.latencies_ms, 99.0),
    );

    eprintln!(
        "qps-bench: {answered}/{total} answered in {:.2}s — {throughput:.1} req/s, \
         p50 {p50:.2} ms, p95 {p95:.2} ms, p99 {p99:.2} ms, \
         {} ok / {shed} shed / {} errors, {} retries, {reloads} hot reloads",
        wall.as_secs_f64(),
        all.ok,
        all.errors,
        all.retries,
    );

    let mut pairs = vec![
        ("bench", Value::Str("serving-qps".into())),
        ("clients", Value::Int(clients as i64)),
        ("requests_per_client", Value::Int(requests as i64)),
        ("deadline_ms", Value::Int(deadline_ms as i64)),
        ("wall_s", num(wall.as_secs_f64())),
        ("throughput_rps", num(throughput)),
        ("p50_ms", num(p50)),
        ("p95_ms", num(p95)),
        ("p99_ms", num(p99)),
        ("answered", Value::Int(answered as i64)),
        ("ok", Value::Int(all.ok as i64)),
        ("shed_overload", Value::Int(all.shed_overload as i64)),
        ("shed_deadline", Value::Int(all.shed_deadline as i64)),
        ("shed_draining", Value::Int(all.shed_draining as i64)),
        ("errors", Value::Int(all.errors as i64)),
        ("client_retries", Value::Int(all.retries as i64)),
        ("reloads", Value::Int(reloads as i64)),
    ];

    // Per-catalog latency percentiles: client c ran against catalog
    // c mod M, so the per-catalog sample is the union of those clients'
    // tallies.
    if catalogs_n > 0 {
        let mut per_catalog = Vec::with_capacity(catalogs_n);
        for (ci, name) in catalog_names.iter().enumerate() {
            let mut lat: Vec<f64> = tallies
                .iter()
                .enumerate()
                .filter(|(c, _)| c % catalogs_n == ci)
                .flat_map(|(_, t)| t.latencies_ms.iter().copied())
                .collect();
            lat.sort_by(|a, b| a.total_cmp(b));
            let ok: u64 = tallies
                .iter()
                .enumerate()
                .filter(|(c, _)| c % catalogs_n == ci)
                .map(|(_, t)| t.ok)
                .sum();
            eprintln!(
                "qps-bench: catalog {name}: {} samples, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
                lat.len(),
                percentile(&lat, 50.0),
                percentile(&lat, 95.0),
                percentile(&lat, 99.0),
            );
            per_catalog.push(obj(vec![
                ("catalog", Value::Str(name.clone())),
                ("requests", Value::Int(lat.len() as i64)),
                ("ok", Value::Int(ok as i64)),
                ("p50_ms", num(percentile(&lat, 50.0))),
                ("p95_ms", num(percentile(&lat, 95.0))),
                ("p99_ms", num(percentile(&lat, 99.0))),
            ]));
        }
        pairs.push(("shards_per_catalog", Value::Int(shards.max(1) as i64)));
        pairs.push(("catalogs", Value::Array(per_catalog)));
    }

    // With an in-process daemon the server-side counters come along for
    // free and must agree with the client's view.
    let server_stats = spawned.map(|handle| {
        let stats = handle.shutdown();
        obj(vec![
            ("admitted", Value::Int(stats.admitted as i64)),
            ("completed", Value::Int(stats.completed as i64)),
            ("failed", Value::Int(stats.failed as i64)),
            ("crashed", Value::Int(stats.crashed as i64)),
            ("shed_overload", Value::Int(stats.shed_overload as i64)),
            ("shed_deadline", Value::Int(stats.shed_deadline as i64)),
            ("shed_draining", Value::Int(stats.shed_draining as i64)),
            ("queue_peak", Value::Int(stats.queue_peak as i64)),
            ("loads", Value::Int(stats.loads as i64)),
            ("connections", Value::Int(stats.connections as i64)),
        ])
    });
    if let Some(stats) = &server_stats {
        pairs.push(("server", stats.clone()));
    }
    write(&out_path, &obj(pairs));
    eprintln!("wrote {out_path}");

    assert_eq!(
        answered, total,
        "every request must get a typed response — missing answers mean a hang"
    );
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: &str,
    client_idx: usize,
    requests: usize,
    queries: &[String],
    deadline_ms: u64,
    retries: u32,
    catalog: Option<&str>,
) -> ClientTally {
    let mut client = bench_client(addr, 0xbe7c + client_idx as u64, retries);
    let mut tally = ClientTally::default();
    let opts = QueryOpts {
        deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        baseline: false,
        catalog: catalog.map(str::to_string),
    };

    for i in 0..requests {
        let q = &queries[i % queries.len()];
        let sent = Instant::now();
        let outcome = client.query_with(q, &opts);
        // One latency sample per *request* (retries included in its
        // latency), so `answered == total` still proves no hangs.
        tally.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        match outcome {
            Ok(_) => tally.ok += 1,
            Err(ClientError::Server { code, .. }) => match code {
                ErrorCode::EXRQ0006 => tally.shed_overload += 1,
                ErrorCode::EXRQ0007 => tally.shed_deadline += 1,
                ErrorCode::EXRQ0008 => tally.shed_draining += 1,
                _ => tally.errors += 1,
            },
            // Transport/protocol failures against a healthy daemon are
            // harness bugs, not tally entries.
            Err(e) => panic!("client {client_idx}: {e}"),
        }
    }
    tally.retries = client.stats().retries;
    tally
}
