//! Serving-layer load benchmark: hammer an `xqd` daemon with N
//! concurrent clients and report throughput, latency percentiles, and
//! shed/error counts to `BENCH_serve.json`.
//!
//! Usage:
//! `qps-bench [--addr host:port] [--scale 0.005] [--clients 4]
//!            [--requests 50] [--queries 1,6,13] [--deadline-ms 0]
//!            [--workers 4] [--queue 64] [--max-inflight 2]
//!            [--threads 0] [--out BENCH_serve.json]`
//!
//! Without `--addr` the daemon is spawned in-process on a loopback port
//! with an XMark document at `--scale`, so the benchmark is
//! self-contained (this is what CI runs). Shed responses (`EXRQ0006/7/8`)
//! are *successes* of the overload policy and are counted separately
//! from errors: the daemon's contract is a typed answer for every
//! request, never a hang.

use exrquy::Session;
use exrquy_bench::report::{num, percentile, write};
use exrquy_bench::{fmt_bytes, Cli};
use exrquy_xmark::{generate, query, XmarkConfig};
use exrquy_xqd::json::{obj, parse, Value};
use exrquy_xqd::{spawn, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

#[derive(Debug, Default, Clone)]
struct ClientTally {
    latencies_ms: Vec<f64>,
    ok: u64,
    shed_overload: u64,
    shed_deadline: u64,
    shed_draining: u64,
    errors: u64,
}

fn main() {
    let cli = Cli::new();
    let addr_flag = cli.get("addr", String::new());
    let scale = cli.get("scale", 0.005_f64);
    let clients = cli.get("clients", 4_usize).max(1);
    let requests = cli.get("requests", 50_usize).max(1);
    let deadline_ms = cli.get("deadline-ms", 0_u64);
    let out_path = cli.get("out", String::from("BENCH_serve.json"));
    let query_nums: Vec<usize> = cli
        .get("queries", String::from("1,6,13"))
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let queries: Vec<String> = query_nums.iter().map(|&n| query(n).to_string()).collect();
    assert!(!queries.is_empty(), "--queries selected nothing");

    // Spawn in-process unless pointed at a running daemon.
    let mut spawned: Option<ServerHandle> = None;
    let addr = if addr_flag.is_empty() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cli.get("workers", 4_usize),
            queue_capacity: cli.get("queue", 64_usize),
            max_inflight_per_client: cli.get("max-inflight", 2_usize),
            threads: cli.get("threads", 0_usize),
            ..ServerConfig::default()
        };
        let xml = generate(&XmarkConfig::at_scale(scale));
        let bytes = xml.len();
        let mut session = Session::new();
        session
            .load_document("auction.xml", &xml)
            .expect("generated XMark document must parse");
        eprintln!(
            "qps-bench: in-process xqd, scale {scale} ({}), {} workers",
            fmt_bytes(bytes),
            cfg.workers
        );
        let handle = spawn(cfg, session).expect("spawn in-process daemon");
        let addr = handle.addr().to_string();
        spawned = Some(handle);
        addr
    } else {
        eprintln!("qps-bench: targeting running daemon at {addr_flag}");
        addr_flag
    };

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let addr = addr.clone();
            let queries = &queries;
            handles.push(scope.spawn(move || run_client(&addr, c, requests, queries, deadline_ms)));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();

    let mut all = ClientTally::default();
    for t in &tallies {
        all.latencies_ms.extend_from_slice(&t.latencies_ms);
        all.ok += t.ok;
        all.shed_overload += t.shed_overload;
        all.shed_deadline += t.shed_deadline;
        all.shed_draining += t.shed_draining;
        all.errors += t.errors;
    }
    all.latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let total = (clients * requests) as u64;
    let answered = all.latencies_ms.len() as u64;
    let shed = all.shed_overload + all.shed_deadline + all.shed_draining;
    let throughput = answered as f64 / wall.as_secs_f64().max(1e-9);
    let (p50, p95, p99) = (
        percentile(&all.latencies_ms, 50.0),
        percentile(&all.latencies_ms, 95.0),
        percentile(&all.latencies_ms, 99.0),
    );

    eprintln!(
        "qps-bench: {answered}/{total} answered in {:.2}s — {throughput:.1} req/s, \
         p50 {p50:.2} ms, p95 {p95:.2} ms, p99 {p99:.2} ms, \
         {} ok / {shed} shed / {} errors",
        wall.as_secs_f64(),
        all.ok,
        all.errors
    );

    let mut pairs = vec![
        ("bench", Value::Str("serving-qps".into())),
        ("clients", Value::Int(clients as i64)),
        ("requests_per_client", Value::Int(requests as i64)),
        ("deadline_ms", Value::Int(deadline_ms as i64)),
        ("wall_s", num(wall.as_secs_f64())),
        ("throughput_rps", num(throughput)),
        ("p50_ms", num(p50)),
        ("p95_ms", num(p95)),
        ("p99_ms", num(p99)),
        ("answered", Value::Int(answered as i64)),
        ("ok", Value::Int(all.ok as i64)),
        ("shed_overload", Value::Int(all.shed_overload as i64)),
        ("shed_deadline", Value::Int(all.shed_deadline as i64)),
        ("shed_draining", Value::Int(all.shed_draining as i64)),
        ("errors", Value::Int(all.errors as i64)),
    ];

    // With an in-process daemon the server-side counters come along for
    // free and must agree with the client's view.
    let server_stats = spawned.map(|handle| {
        let stats = handle.shutdown();
        obj(vec![
            ("admitted", Value::Int(stats.admitted as i64)),
            ("completed", Value::Int(stats.completed as i64)),
            ("failed", Value::Int(stats.failed as i64)),
            ("shed_overload", Value::Int(stats.shed_overload as i64)),
            ("shed_deadline", Value::Int(stats.shed_deadline as i64)),
            ("shed_draining", Value::Int(stats.shed_draining as i64)),
            ("queue_peak", Value::Int(stats.queue_peak as i64)),
            ("connections", Value::Int(stats.connections as i64)),
        ])
    });
    if let Some(stats) = &server_stats {
        pairs.push(("server", stats.clone()));
    }
    write(&out_path, &obj(pairs));
    eprintln!("wrote {out_path}");

    assert_eq!(
        answered, total,
        "every request must get a typed response — missing answers mean a hang"
    );
}

fn run_client(
    addr: &str,
    client_idx: usize,
    requests: usize,
    queries: &[String],
    deadline_ms: u64,
) -> ClientTally {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut tally = ClientTally::default();

    for i in 0..requests {
        let q = &queries[i % queries.len()];
        let mut req = vec![
            ("id", Value::Int((client_idx * requests + i) as i64)),
            ("op", Value::Str("query".into())),
            ("query", Value::Str(q.clone())),
        ];
        if deadline_ms > 0 {
            req.push(("deadline_ms", Value::Int(deadline_ms as i64)));
        }
        let line = obj(req).render();
        let sent = Instant::now();
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();

        let mut response = String::new();
        let n = reader.read_line(&mut response).expect("read response");
        assert!(n > 0, "daemon closed connection mid-benchmark");
        tally.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        let v = parse(response.trim_end()).expect("daemon sent invalid json");
        if v.get("ok") == Some(&Value::Bool(true)) {
            tally.ok += 1;
        } else {
            match v.get("code").and_then(Value::as_str) {
                Some("EXRQ0006") => tally.shed_overload += 1,
                Some("EXRQ0007") => tally.shed_deadline += 1,
                Some("EXRQ0008") => tally.shed_draining += 1,
                _ => tally.errors += 1,
            }
        }
    }
    tally
}
