//! Cost-based planner benchmark: statistics-driven join reordering and
//! rank-compensation elision vs the rule-only planner (`--no-cost`),
//! over a deliberately skewed multi-document join corpus, emitting
//! `BENCH_cost.json`.
//!
//! Usage:
//! `plan-bench [--rows 1000] [--keys 50] [--runs 3]
//!             [--out BENCH_cost.json] [--min-geomean 1.0]`
//!
//! The corpus is a star schema: three "big" documents (`--rows` elements,
//! `--keys` distinct join keys each, uniformly cycled) and one "tiny"
//! document whose two elements match only 2 of those keys. Every query
//! is a multi-way star join written in its *worst* clause order — the
//! selective tiny relation joined last — which is exactly the situation
//! the paper's order indifference lets a cost-based planner repair: the
//! join clusters reorder against the cardinality model, the hash builds
//! flip onto the small sides, and (the queries being aggregates in
//! unordered mode) the order-restoring compensation sort is provably
//! unnecessary and elided. One query is written in its *best* clause
//! order as a no-regression control.
//!
//! Two sections feed the JSON:
//!
//! * **timing** — each query, costed vs `--no-cost`, best-of-`--runs`
//!   wall-clock on the default vectorized path, with the geometric-mean
//!   speedup over all queries.
//! * **matrix** — every query × {costed, uncosted} × {vectorized,
//!   scalar} × {1, 2, 8}-shard corpus layouts, each cell's rendered
//!   serialization compared byte-for-byte against the uncosted
//!   vectorized 1-shard reference (`identical_serializations` — the run
//!   aborts red on any divergence, so the speedup is never bought with
//!   a semantics change).
//!
//! `--min-geomean` is the CI guardrail: the process exits nonzero when
//! the measured geomean falls below it.

use exrquy::{QueryOptions, Session};
use exrquy_bench::report::{num, write};
use exrquy_bench::{best_of, Cli};
use exrquy_xqd::json::{obj, Value};
use std::fmt::Write as _;

/// One skewed star document: `rows` elements named `tag`, join key
/// cycling over `keys` distinct values.
fn star_doc(tag: &str, rows: usize, keys: usize) -> String {
    let mut xml = String::with_capacity(rows * 24);
    xml.push_str("<doc>");
    for i in 0..rows {
        let _ = write!(xml, "<{tag} k=\"k{}\" id=\"{tag}{i}\"/>", i % keys);
    }
    xml.push_str("</doc>");
    xml
}

/// The tiny selective relation: two elements matching keys k0 and k1
/// only — joining it early collapses the iteration space.
fn tiny_doc() -> String {
    "<doc><t k=\"k0\" id=\"t0\"/><t k=\"k1\" id=\"t1\"/></doc>".to_string()
}

/// The query set: star joins over the corpus, worst clause order first.
fn queries() -> Vec<(&'static str, String)> {
    let star4_skewed = r#"fn:count(for $y in doc("big0.xml")//s
for $x in doc("big1.xml")//r where $x/@k = $y/@k
for $w in doc("big2.xml")//w where $w/@k = $y/@k
for $t in doc("tiny.xml")//t where $t/@k = $y/@k
return $t)"#
        .to_string();
    let star3_big = r#"fn:count(for $y in doc("big0.xml")//s
for $x in doc("big1.xml")//r where $x/@k = $y/@k
for $w in doc("big2.xml")//w where $w/@k = $y/@k
return $w)"#
        .to_string();
    let star3_tiny = r#"fn:count(for $y in doc("big0.xml")//s
for $x in doc("big1.xml")//r where $x/@k = $y/@k
for $t in doc("tiny.xml")//t where $t/@k = $y/@k
return $t)"#
        .to_string();
    let star4_ideal = r#"fn:count(for $y in doc("big0.xml")//s
for $t in doc("tiny.xml")//t where $t/@k = $y/@k
for $x in doc("big1.xml")//r where $x/@k = $y/@k
for $w in doc("big2.xml")//w where $w/@k = $y/@k
return $w)"#
        .to_string();
    vec![
        ("star4-skewed", star4_skewed),
        ("star3-big", star3_big),
        ("star3-tiny", star3_tiny),
        ("star4-ideal", star4_ideal),
    ]
}

fn corpus(rows: usize, keys: usize) -> Vec<(String, String)> {
    vec![
        ("big0.xml".to_string(), star_doc("s", rows, keys)),
        ("big1.xml".to_string(), star_doc("r", rows, keys)),
        ("big2.xml".to_string(), star_doc("w", rows, keys)),
        ("tiny.xml".to_string(), tiny_doc()),
    ]
}

fn session(docs: &[(String, String)], shards: usize) -> Session {
    let mut s = Session::new();
    s.load_corpus_sharded(docs.iter().map(|(u, x)| (u.as_str(), x.as_str())), shards);
    s
}

/// Rendered serialization of one query under `opts`, or the error code —
/// the unit of the byte-identity matrix.
fn cell(session: &Session, query: &str, opts: &QueryOptions) -> String {
    match session.query_with(query, opts) {
        Ok(out) => exrquy::result::serialize_sequence(&out.items),
        Err(e) => format!("<error {}>", e.code()),
    }
}

fn main() {
    let cli = Cli::new();
    let rows: usize = cli.get("rows", 1000);
    let keys: usize = cli.get("keys", 50);
    let runs: usize = cli.get("runs", 3);
    let out_path: String = cli.get("out", "BENCH_cost.json".to_string());
    let min_geomean: f64 = cli.get("min-geomean", 0.0);

    let costed = QueryOptions::order_indifferent();
    let mut uncosted = costed.clone();
    uncosted.opt.cost = false;

    let docs = corpus(rows, keys);
    let mut timing_session = session(&docs, 1);

    // -- timing: costed vs rule-only on the default vectorized path --
    let mut rows_json: Vec<Value> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    println!(
        "{:<14} {:>11} {:>11} {:>8}  plan",
        "query", "costed", "--no-cost", "speedup"
    );
    for (name, q) in &queries() {
        let plan = timing_session
            .prepare(q, &costed)
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let (reordered, elided) = (plan.cost_report.reordered, plan.cost_report.elided);
        let c = best_of(&mut timing_session, q, &costed, runs)
            .unwrap_or_else(|e| panic!("{name} costed: {e:?}"))
            .as_secs_f64()
            * 1e3;
        let u = best_of(&mut timing_session, q, &uncosted, runs)
            .unwrap_or_else(|e| panic!("{name} uncosted: {e:?}"))
            .as_secs_f64()
            * 1e3;
        let speedup = u / c;
        ratios.push(speedup);
        println!(
            "{name:<14} {c:>9.2}ms {u:>9.2}ms {speedup:>7.2}x  {reordered} reordered, {elided} elided"
        );
        rows_json.push(obj(vec![
            ("query", Value::Str(name.to_string())),
            ("costed_ms", num(c)),
            ("uncosted_ms", num(u)),
            ("speedup", num(speedup)),
            ("reordered", Value::Int(reordered as i64)),
            ("elided", Value::Int(elided as i64)),
        ]));
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!("geomean speedup: {geomean:.2}x");

    // -- matrix: byte-identity across planner × engine path × layout --
    let reference: Vec<String> = queries()
        .iter()
        .map(|(_, q)| cell(&timing_session, q, &uncosted))
        .collect();
    let mut cells = 0usize;
    let mut identical = true;
    for shards in [1usize, 2, 8] {
        let s = session(&docs, shards);
        for (arm_name, arm) in [("costed", &costed), ("uncosted", &uncosted)] {
            for vectorized in [true, false] {
                for (i, (name, q)) in queries().iter().enumerate() {
                    let opts = arm.clone().with_vectorized(vectorized);
                    let got = cell(&s, q, &opts);
                    cells += 1;
                    if got != reference[i] {
                        identical = false;
                        let path = if vectorized { "vec" } else { "scalar" };
                        eprintln!(
                            "MISMATCH: {name} [{arm_name}/{path}/x{shards} shards] \
                             diverged from the uncosted vectorized 1-shard reference"
                        );
                    }
                }
            }
        }
    }
    println!("matrix: {cells} cells, identical_serializations: {identical}");

    let report = obj(vec![
        ("bench", Value::Str("plan".to_string())),
        (
            "corpus",
            obj(vec![
                ("rows", Value::Int(rows as i64)),
                ("keys", Value::Int(keys as i64)),
                ("docs", Value::Int(docs.len() as i64)),
                (
                    "skew",
                    Value::Str("tiny relation matches 2 keys".to_string()),
                ),
            ]),
        ),
        ("runs", Value::Int(runs as i64)),
        ("queries", Value::Array(rows_json)),
        ("geomean_speedup", num(geomean)),
        ("matrix_cells", Value::Int(cells as i64)),
        ("identical_serializations", Value::Bool(identical)),
    ]);
    write(&out_path, &report);
    println!("wrote {out_path}");

    if !identical {
        eprintln!("FAIL: costed plans must serialize byte-identically");
        std::process::exit(1);
    }
    if geomean < min_geomean {
        eprintln!("FAIL: geomean speedup {geomean:.2}x below guardrail {min_geomean:.2}x");
        std::process::exit(1);
    }
}
