//! Intra-query parallel execution benchmark: wall-clock the XMark query
//! set at several worker-thread counts and emit `BENCH_par.json`.
//!
//! Usage:
//! `par-bench [--scale 0.01] [--runs 3] [--threads 1,2,4]
//!            [--queries 1..20] [--out BENCH_par.json]`
//!
//! For every query the serial run (`threads = 1`) is the reference: each
//! parallel run's rendered output must be byte-identical to it (the
//! scheduler's determinism contract), and the reported speedup is
//! `t_serial / t_parallel`. The JSON records `host_cores` — on a 1-core
//! host the scheduler has no parallelism to exploit and speedups near
//! 1.0 (or slightly below, from scheduling overhead) are the honest
//! expectation; the numbers are only meaningful relative to that field.
//!
//! Each parallel cell also records the scheduler's own counters
//! (parallel regions, ops run on workers vs inline, steals, ready-queue
//! peak) so a flat speedup is attributable: no regions means the plan
//! had no parallelism to mine, many steals with no speedup means the
//! work units were too small.

use exrquy::engine::SchedStats;
use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_bench::report::{num, write};
use exrquy_bench::{best_of, fmt_bytes, xmark_session, Cli};
use exrquy_xmark::{query, query_name};
use exrquy_xqd::json::{obj, Value};

struct Cell {
    threads: usize,
    wall_ms: f64,
    sched: SchedStats,
}

fn main() {
    let cli = Cli::new();
    let scale = cli.get("scale", 0.01_f64);
    let runs = cli.get("runs", 3_usize);
    let threads: Vec<usize> = cli
        .get("threads", String::from("1,2,4"))
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let queries = parse_queries(&cli.get("queries", String::from("1..20")));
    let out_path = cli.get("out", String::from("BENCH_par.json"));
    assert!(
        threads.contains(&1),
        "the thread list must include 1 (the serial reference)"
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (mut session, bytes) = xmark_session(scale);
    eprintln!(
        "par-bench: scale {scale} ({}), {} nodes, host cores {host_cores}",
        fmt_bytes(bytes),
        session.store_nodes()
    );

    let mut rows: Vec<(String, Vec<Cell>)> = Vec::new();
    let mut identical = true;
    for &n in &queries {
        let q = query(n);
        let (reference, _) = rendered(&mut session, q, 1);
        let mut cells: Vec<Cell> = Vec::new();
        for &t in &threads {
            let (output, sched) = rendered(&mut session, q, t);
            if t != 1 && output != reference {
                identical = false;
                eprintln!(
                    "  {}: threads={t} output DIVERGED from serial",
                    query_name(n)
                );
            }
            let opts = QueryOptions::order_indifferent().with_threads(t);
            let best = best_of(&mut session, q, &opts, runs)
                .unwrap_or_else(|e| panic!("{} at threads={t} failed: {e}", query_name(n)));
            cells.push(Cell {
                threads: t,
                wall_ms: best.as_secs_f64() * 1e3,
                sched,
            });
        }
        let serial = cells.iter().find(|c| c.threads == 1).unwrap().wall_ms;
        let line: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "t{} {:.2} ms (x{:.2}, {} steals)",
                    c.threads,
                    c.wall_ms,
                    serial / c.wall_ms.max(1e-9),
                    c.sched.steals
                )
            })
            .collect();
        eprintln!("  {:>4}: {}", query_name(n), line.join(", "));
        rows.push((query_name(n), cells));
    }

    let report = render_report(scale, bytes, host_cores, runs, identical, &rows);
    write(&out_path, &report);
    eprintln!(
        "wrote {out_path} ({} queries, serializations {})",
        rows.len(),
        if identical { "identical" } else { "DIVERGED" }
    );
    assert!(identical, "parallel output diverged from serial");
}

/// The byte-identity witness (full rendered output, order preserved)
/// plus the scheduler counters of that run.
fn rendered(session: &mut Session, q: &str, threads: usize) -> (Vec<String>, SchedStats) {
    let opts = QueryOptions::order_indifferent().with_threads(threads);
    let out = session.query_with(q, &opts).expect("query failed");
    let items = out.items.iter().map(ResultItem::render).collect();
    (items, out.profile.sched)
}

fn sched_json(s: &SchedStats) -> Value {
    obj(vec![
        ("regions", Value::Int(s.regions as i64)),
        ("par_ops", Value::Int(s.par_ops as i64)),
        ("inline_ops", Value::Int(s.inline_ops as i64)),
        ("steals", Value::Int(s.steals as i64)),
        ("queue_peak", Value::Int(s.queue_peak as i64)),
    ])
}

fn render_report(
    scale: f64,
    bytes: usize,
    host_cores: usize,
    runs: usize,
    identical: bool,
    rows: &[(String, Vec<Cell>)],
) -> Value {
    let queries: Vec<Value> = rows
        .iter()
        .map(|(name, cells)| {
            let serial = cells.iter().find(|c| c.threads == 1).unwrap().wall_ms;
            let mut pairs = vec![("query", Value::Str(name.clone()))];
            let cell_values: Vec<(String, Value)> = cells
                .iter()
                .map(|c| {
                    (
                        format!("t{}", c.threads),
                        obj(vec![
                            ("wall_ms", num(c.wall_ms)),
                            ("speedup", num(serial / c.wall_ms.max(1e-9))),
                            ("sched", sched_json(&c.sched)),
                        ]),
                    )
                })
                .collect();
            for (k, v) in &cell_values {
                pairs.push((k.as_str(), v.clone()));
            }
            obj(pairs)
        })
        .collect();
    obj(vec![
        ("bench", Value::Str("intra-query-parallelism".into())),
        ("scale", num(scale)),
        ("doc_bytes", Value::Int(bytes as i64)),
        ("host_cores", Value::Int(host_cores as i64)),
        ("runs_per_cell", Value::Int(runs as i64)),
        ("identical_serializations", Value::Bool(identical)),
        ("queries", Value::Array(queries)),
    ])
}

fn parse_queries(spec: &str) -> Vec<usize> {
    if let Some((a, b)) = spec.split_once("..") {
        let a: usize = a.parse().unwrap_or(1);
        let b: usize = b.parse().unwrap_or(20);
        (a..=b).collect()
    } else {
        spec.split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect()
    }
}
