//! Intra-query parallel execution benchmark: wall-clock the XMark query
//! set at several worker-thread counts and emit `BENCH_par.json`.
//!
//! Usage:
//! `par-bench [--scale 0.01] [--runs 3] [--threads 1,2,4]
//!            [--queries 1..20] [--out BENCH_par.json]`
//!
//! For every query the serial run (`threads = 1`) is the reference: each
//! parallel run's rendered output must be byte-identical to it (the
//! scheduler's determinism contract), and the reported speedup is
//! `t_serial / t_parallel`. The JSON records `host_cores` — on a 1-core
//! host the scheduler has no parallelism to exploit and speedups near
//! 1.0 (or slightly below, from scheduling overhead) are the honest
//! expectation; the numbers are only meaningful relative to that field.

use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_bench::{best_of, fmt_bytes, xmark_session, Cli};
use exrquy_xmark::{query, query_name};
use std::fmt::Write as _;

fn main() {
    let cli = Cli::new();
    let scale = cli.get("scale", 0.01_f64);
    let runs = cli.get("runs", 3_usize);
    let threads: Vec<usize> = cli
        .get("threads", String::from("1,2,4"))
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let queries = parse_queries(&cli.get("queries", String::from("1..20")));
    let out_path = cli.get("out", String::from("BENCH_par.json"));
    assert!(
        threads.contains(&1),
        "the thread list must include 1 (the serial reference)"
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (mut session, bytes) = xmark_session(scale);
    eprintln!(
        "par-bench: scale {scale} ({}), {} nodes, host cores {host_cores}",
        fmt_bytes(bytes),
        session.store_nodes()
    );

    let mut rows: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
    let mut identical = true;
    for &n in &queries {
        let q = query(n);
        let reference = rendered(&mut session, q, 1);
        let mut times: Vec<(usize, f64)> = Vec::new();
        for &t in &threads {
            if t != 1 && rendered(&mut session, q, t) != reference {
                identical = false;
                eprintln!(
                    "  {}: threads={t} output DIVERGED from serial",
                    query_name(n)
                );
            }
            let opts = QueryOptions::order_indifferent().with_threads(t);
            let best = best_of(&mut session, q, &opts, runs)
                .unwrap_or_else(|e| panic!("{} at threads={t} failed: {e}", query_name(n)));
            times.push((t, best.as_secs_f64() * 1e3));
        }
        let serial = times.iter().find(|(t, _)| *t == 1).unwrap().1;
        let line: Vec<String> = times
            .iter()
            .map(|(t, ms)| format!("t{t} {ms:.2} ms (x{:.2})", serial / ms.max(1e-9)))
            .collect();
        eprintln!("  {:>4}: {}", query_name(n), line.join(", "));
        rows.push((query_name(n), times));
    }

    let json = render_json(scale, bytes, host_cores, runs, identical, &rows);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!(
        "wrote {out_path} ({} queries, serializations {})",
        rows.len(),
        if identical { "identical" } else { "DIVERGED" }
    );
    assert!(identical, "parallel output diverged from serial");
}

/// The byte-identity witness: the full rendered output, order preserved.
fn rendered(session: &mut Session, q: &str, threads: usize) -> Vec<String> {
    let opts = QueryOptions::order_indifferent().with_threads(threads);
    let out = session.query_with(q, &opts).expect("query failed");
    out.items.iter().map(ResultItem::render).collect()
}

fn render_json(
    scale: f64,
    bytes: usize,
    host_cores: usize,
    runs: usize,
    identical: bool,
    rows: &[(String, Vec<(usize, f64)>)],
) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"intra-query-parallelism\",");
    let _ = writeln!(j, "  \"scale\": {scale},");
    let _ = writeln!(j, "  \"doc_bytes\": {bytes},");
    let _ = writeln!(j, "  \"host_cores\": {host_cores},");
    let _ = writeln!(j, "  \"runs_per_cell\": {runs},");
    let _ = writeln!(j, "  \"identical_serializations\": {identical},");
    let _ = writeln!(j, "  \"queries\": [");
    for (i, (name, times)) in rows.iter().enumerate() {
        let serial = times.iter().find(|(t, _)| *t == 1).unwrap().1;
        let cells: Vec<String> = times
            .iter()
            .map(|(t, ms)| {
                format!(
                    "\"t{t}\": {{\"wall_ms\": {ms:.4}, \"speedup\": {:.4}}}",
                    serial / ms.max(1e-9)
                )
            })
            .collect();
        let _ = writeln!(
            j,
            "    {{\"query\": \"{name}\", {}}}{}",
            cells.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn parse_queries(spec: &str) -> Vec<usize> {
    if let Some((a, b)) = spec.split_once("..") {
        let a: usize = a.parse().unwrap_or(1);
        let b: usize = b.parse().unwrap_or(20);
        (a..=b).collect()
    } else {
        spec.split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect()
    }
}
