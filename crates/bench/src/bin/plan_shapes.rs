//! Reproduction of the paper's plan-shape artifacts:
//!
//! * **Figure 6(a)/(b)** — XMark Q6 compiled under `ordered` vs
//!   `unordered`: the `%` operators trade for `#`, except the one
//!   iter→seq `%`;
//! * **Figure 9** — Q6 `unordered` after column dependency analysis:
//!   (almost) no residual order computation;
//! * **Figure 10** — `unordered { $t//(c|d) }`: the doc-order-aware union
//!   is cut down to a concatenation;
//! * **§4.1** — Q11's DAG shrinks from 235 to 141 operators under the
//!   analysis (paper numbers; ours differ in absolute size, the shrink is
//!   what's reproduced).
//!
//! Usage: `plan_shapes [--dot <dir>]` (writes Graphviz files when given).

use exrquy::{QueryOptions, Session};
use exrquy_algebra::stats::costly_rownums;
use exrquy_bench::Cli;
use exrquy_opt::OptOptions;
use exrquy_xmark::{query, query_name};

fn main() {
    let cli = Cli::new();
    let dot_dir: String = cli.get("dot", String::new());

    let mut session = Session::new();
    session
        .load_document("auction.xml", "<site/>")
        .expect("stub document");
    session
        .load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
        .expect("fragment");

    // ---- Figures 6 and 9: Q6 under three configurations
    println!("== Figures 6(a), 6(b), 9: XMark Q6 plan shapes ==");
    println!("paper: 19 ops / 5 % (ordered); all but one % become # (unordered);");
    println!("       order-free after column dependency analysis\n");
    let configs = [
        ("Fig 6(a)  ordered, no analysis", QueryOptions::baseline()),
        ("Fig 6(b)  unordered, no analysis", {
            let mut o = QueryOptions::order_indifferent();
            o.opt = OptOptions::disabled();
            o
        }),
        (
            "Fig 9     unordered + column dependency analysis",
            QueryOptions::order_indifferent(),
        ),
    ];
    println!(
        "{:<50} {:>5} {:>4} {:>4} {:>9}",
        "configuration", "ops", "%", "#", "costly %"
    );
    for (label, opts) in &configs {
        let plan = session.prepare(query(6), opts).expect("Q6 compiles");
        let s = &plan.stats_final;
        println!(
            "{label:<50} {:>5} {:>4} {:>4} {:>9}",
            s.total,
            s.rownums(),
            s.rowids(),
            costly_rownums(&plan.dag, plan.root)
        );
        if !dot_dir.is_empty() {
            let file = format!("{dot_dir}/q6_{}.dot", slug(label));
            std::fs::write(&file, plan.plan_dot(label)).expect("write dot");
            eprintln!("wrote {file}");
        }
    }

    // ---- Figure 10: trading | for ,
    println!("\n== Figure 10: unordered {{ $t//(c|d) }} ==");
    println!("paper: the doc-order-aware union is cut down to sequence concatenation\n");
    let q = r#"let $t := doc("t.xml")/a return unordered { $t//(c|d) }"#;
    for (label, opts) in [
        ("ordered baseline", QueryOptions::baseline()),
        ("unordered + analysis", QueryOptions::order_indifferent()),
    ] {
        let plan = session.prepare(q, &opts).expect("compiles");
        let s = &plan.stats_final;
        println!(
            "{label:<24} {:>3} ops, {} %, {} #, {} costly % — union ops: {}",
            s.total,
            s.rownums(),
            s.rowids(),
            costly_rownums(&plan.dag, plan.root),
            s.count("∪̇"),
        );
        if !dot_dir.is_empty() {
            let file = format!("{dot_dir}/union_{}.dot", slug(label));
            std::fs::write(&file, plan.plan_dot(label)).expect("write dot");
        }
    }

    // ---- §4.1: plan size reduction per query
    println!("\n== §4.1: column dependency analysis, plan sizes (Q1–Q20) ==");
    println!("paper reference point: Q11 shrinks 235 → 141 operators\n");
    println!(
        "{:>5} {:>13} {:>13} {:>8}  {:>9} {:>9}",
        "query", "initial ops", "final ops", "shrink", "costly %", "final %"
    );
    for n in 1..=20 {
        let plan = session
            .prepare(query(n), &QueryOptions::order_indifferent())
            .expect("compiles");
        let shrink =
            100.0 * (1.0 - plan.stats_final.total as f64 / plan.stats_initial.total as f64);
        println!(
            "{:>5} {:>13} {:>13} {:>7.0}%  {:>9} {:>9}",
            query_name(n),
            plan.stats_initial.total,
            plan.stats_final.total,
            shrink,
            costly_rownums(&plan.dag, plan.root),
            plan.stats_final.rownums(),
        );
    }
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .to_lowercase()
}
