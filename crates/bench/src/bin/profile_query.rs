//! Per-operator-kind profile of one XMark query at one scale — the
//! debugging companion to `table2`.
//!
//! Usage: `profile_query [--query 10] [--scale 0.02] [--baseline]`

use exrquy::QueryOptions;
use exrquy_bench::{fmt_bytes, xmark_session, Cli};
use exrquy_xmark::query;

fn main() {
    let cli = Cli::new();
    let n = cli.get("query", 10_usize);
    let scale = cli.get("scale", 0.02_f64);
    let opts = if cli.has("baseline") {
        QueryOptions::baseline()
    } else {
        QueryOptions::order_indifferent()
    };
    let (session, bytes) = xmark_session(scale);
    eprintln!("Q{n} at scale {scale} ({})", fmt_bytes(bytes));
    let plan = session.prepare(query(n), &opts).expect("compiles");
    eprintln!("plan: {}", plan.stats_final);
    let out = session.execute(&plan).expect("executes");
    eprintln!("{} result items", out.items.len());
    let mut kinds: Vec<(&str, f64)> = out
        .profile
        .per_kind()
        .iter()
        .map(|(k, d)| (*k, d.as_secs_f64() * 1e3))
        .collect();
    kinds.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (k, ms) in kinds {
        println!("{k:<12} {ms:>10.2} ms");
    }
    println!(
        "{:<12} {:>10.2} ms",
        "TOTAL",
        out.profile.total().as_secs_f64() * 1e3
    );
}
