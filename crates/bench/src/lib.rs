//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Every table and figure of the paper's evaluation (§5) has a binary in
//! `src/bin/`:
//!
//! | paper artifact | binary |
//! |----------------|--------|
//! | Table 2 (Q11 profile breakdown) | `table2` |
//! | Figure 12 (XMark speedup sweep) | `figure12` |
//! | Figures 6/9/10 + §4.1 plan sizes | `plan_shapes` |
//!
//! Criterion micro-benches in `benches/` cover the cost model the paper
//! relies on (`%` vs `#`, staircase join vs naive steps) and ablations of
//! the optimizer passes.

pub mod harness;
pub mod report;

use exrquy::{QueryOptions, Session};
use exrquy_xmark::{generate, XmarkConfig};
use std::time::{Duration, Instant};

/// Build a session with an XMark document at `scale` loaded as
/// `auction.xml`. Returns the session and the serialized document size in
/// bytes.
pub fn xmark_session(scale: f64) -> (Session, usize) {
    let cfg = XmarkConfig::at_scale(scale);
    let xml = generate(&cfg);
    let bytes = xml.len();
    let mut s = Session::new();
    s.load_document("auction.xml", &xml)
        .expect("generated XMark document must parse");
    (s, bytes)
}

/// Wall-clock one prepared-query execution.
pub fn time_query(
    session: &mut Session,
    query: &str,
    opts: &QueryOptions,
) -> Result<Duration, exrquy::Error> {
    let plan = session.prepare(query, opts)?;
    let started = Instant::now();
    let out = session.execute(&plan)?;
    let elapsed = started.elapsed();
    std::hint::black_box(out.items.len());
    Ok(elapsed)
}

/// Best-of-`n` timing (the paper reports wall-clock execution times).
pub fn best_of(
    session: &mut Session,
    query: &str,
    opts: &QueryOptions,
    n: usize,
) -> Result<Duration, exrquy::Error> {
    let mut best = Duration::MAX;
    for _ in 0..n {
        best = best.min(time_query(session, query, opts)?);
    }
    Ok(best)
}

/// Human-readable byte size.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1_000_000 {
        format!("{:.1} MB", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.1} KB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Parse `--key value`-style CLI options with defaults.
pub struct Cli {
    args: Vec<String>,
}

impl Cli {
    /// Capture the process arguments.
    pub fn new() -> Self {
        Cli {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name <v>`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Presence of a boolean `--name` flag.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.args.iter().any(|a| a == &flag)
    }
}

impl Default for Cli {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_xmark::query;

    #[test]
    fn harness_runs_a_query_at_tiny_scale() {
        let (mut s, bytes) = xmark_session(0.001);
        assert!(bytes > 10_000);
        let d = time_query(&mut s, query(6), &QueryOptions::baseline()).unwrap();
        assert!(d > Duration::ZERO);
        let d2 = best_of(&mut s, query(6), &QueryOptions::order_indifferent(), 2).unwrap();
        assert!(d2 > Duration::ZERO);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(500), "500 B");
        assert_eq!(fmt_bytes(2_500), "2.5 KB");
        assert_eq!(fmt_bytes(12_000_000), "12.0 MB");
    }
}
