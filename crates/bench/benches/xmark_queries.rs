//! Criterion companion to the `figure12` binary: per-query execution time
//! under the two compiler configurations, on a fixed small XMark instance.
//! (The paper-scale sweep with its 30 s cutoff lives in `--bin figure12`;
//! this gives statistically solid numbers for a representative subset.)

use exrquy::QueryOptions;
use exrquy_bench::harness::{BenchmarkId, Criterion};
use exrquy_bench::xmark_session;
use exrquy_bench::{criterion_group, criterion_main};
use exrquy_xmark::query;

fn bench(c: &mut Criterion) {
    let (session, _) = xmark_session(0.005);
    let mut group = c.benchmark_group("xmark");
    group.sample_size(20);
    // Q1 (lookup), Q6/Q7 (step merging outliers), Q8 (join), Q11 (the
    // Table 2 query), Q19 (order by).
    for n in [1usize, 6, 7, 8, 11, 19] {
        for (label, opts) in [
            ("baseline", QueryOptions::baseline()),
            ("unordered", QueryOptions::order_indifferent()),
        ] {
            let plan = session.prepare(query(n), &opts).unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, format!("Q{n}")),
                &plan,
                |b, plan| b.iter(|| session.execute(plan).unwrap().items.len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
