//! Optimizer-pass ablations: what each of the three rewrites (column
//! dependency analysis, `%`-weakening, step merging) contributes to plan
//! shrinkage, and what the analysis itself costs — the "design choices"
//! benches DESIGN.md calls out.

use exrquy::{QueryOptions, Session};
use exrquy_bench::harness::{BenchmarkId, Criterion};
use exrquy_bench::{criterion_group, criterion_main};
use exrquy_opt::{optimize, OptOptions};
use exrquy_xmark::query;

fn plans(session: &Session, n: usize) -> (exrquy_algebra::Dag, exrquy_algebra::OpId) {
    let mut opts = QueryOptions::order_indifferent();
    opts.opt = OptOptions::disabled();
    let plan = session.prepare(query(n), &opts).unwrap();
    (plan.dag.clone(), plan.root)
}

fn bench(c: &mut Criterion) {
    let mut session = Session::new();
    session.load_document("auction.xml", "<site/>").unwrap();

    let mut group = c.benchmark_group("optimize_pass");
    for n in [6usize, 10, 11] {
        let (dag, root) = plans(&session, n);
        let full = OptOptions::default();
        let no_weaken = OptOptions {
            weaken_rownum: false,
            ..full
        };
        let no_merge = OptOptions {
            merge_steps: false,
            ..full
        };
        let cda_only = OptOptions {
            weaken_rownum: false,
            merge_steps: false,
            ..full
        };
        let physical = OptOptions {
            physical_order: true,
            ..full
        };
        for (label, opts) in [
            ("full", full),
            ("no-weaken", no_weaken),
            ("no-step-merge", no_merge),
            ("cda-only", cda_only),
            ("full+physical-order", physical),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("Q{n}")),
                &opts,
                |b, opts| {
                    b.iter_batched(
                        || dag.clone(),
                        |mut d| optimize(&mut d, root, opts).0,
                        exrquy_bench::harness::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
