//! The cost asymmetry the whole paper exploits: `%` (RowNum — a blocking
//! sort) vs `#` (RowId — "negligible cost or even free") vs the weakened
//! `%⟨⟩` (criterion-free numbering, §7).

use exrquy_algebra::{AValue, Col, Dag, Op, OpId, SortKey};
use exrquy_bench::harness::{BenchmarkId, Criterion};
use exrquy_bench::{criterion_group, criterion_main};
use exrquy_engine::{Engine, EngineOptions};
use exrquy_xml::{Catalog, FragArena};
use std::sync::Arc;

/// Build a `[iter, item]` literal with `n` rows, shuffled item values,
/// `groups` distinct iterations.
fn input(dag: &mut Dag, n: usize, groups: i64) -> OpId {
    let mut rows = Vec::with_capacity(n);
    // Deterministic pseudo-shuffle (xorshift) — no order correlation.
    let mut x: i64 = 88172645463325252;
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rows.push(vec![
            AValue::Int((i as i64) % groups),
            AValue::Int(x % 1_000_000),
        ]);
    }
    dag.add(Op::Lit {
        cols: vec![Col::ITER, Col::ITEM],
        rows,
    })
}

fn run(dag: &Dag, root: OpId) -> usize {
    let mut arena = FragArena::new(Arc::new(Catalog::new()));
    let mut engine = Engine::new(dag, &mut arena, EngineOptions::default());
    engine.eval(root).unwrap().nrows()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rownum_vs_rowid");
    for &n in &[10_000usize, 100_000] {
        let mut dag = Dag::new();
        let src = input(&mut dag, n, 64);
        let rownum = dag.add(Op::RowNum {
            input: src,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let rowid = dag.add(Op::RowId {
            input: src,
            new: Col::POS,
        });
        let free_rownum = dag.add(Op::RowNum {
            input: src,
            new: Col::POS,
            order: vec![],
            part: Some(Col::ITER),
        });
        group.bench_with_input(BenchmarkId::new("percent-sort", n), &n, |b, _| {
            b.iter(|| run(&dag, rownum))
        });
        group.bench_with_input(BenchmarkId::new("hash-free", n), &n, |b, _| {
            b.iter(|| run(&dag, rowid))
        });
        group.bench_with_input(BenchmarkId::new("percent-grouped-free", n), &n, |b, _| {
            b.iter(|| run(&dag, free_rownum))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
