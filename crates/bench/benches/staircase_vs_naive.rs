//! Staircase join vs the naive quadratic step algorithm — the step
//! evaluation substrate of §3 ("several existing XPath step evaluation
//! techniques may be plugged in to realize ⬡").

use exrquy_bench::harness::{BenchmarkId, Criterion};
use exrquy_bench::{criterion_group, criterion_main};
use exrquy_xmark::{generate, XmarkConfig};
use exrquy_xml::{axis, Axis, NamePool, NodeTest};

fn bench(c: &mut Criterion) {
    let xml = generate(&XmarkConfig::at_scale(0.002));
    let mut pool = NamePool::new();
    let doc = exrquy_xml::parse_document(&xml, &mut pool).unwrap();
    let item = pool.lookup("item").unwrap();
    // Context: the document root (the common near-root descendant scan).
    let root_ctx = vec![0u32];
    // Context: every element (a worst case for overlap pruning).
    let all_elems: Vec<u32> = (0..doc.len() as u32)
        .filter(|&p| doc.kind(p) == exrquy_xml::NodeKind::Element)
        .collect();

    let mut group = c.benchmark_group("step_descendant_item");
    group.bench_with_input(BenchmarkId::new("staircase", "root"), &(), |b, _| {
        b.iter(|| axis::step(&doc, &root_ctx, Axis::Descendant, NodeTest::Name(item)))
    });
    // Warm the per-name streams, then measure the TwigStack-style access.
    let _ = doc.name_streams();
    group.bench_with_input(BenchmarkId::new("name-stream", "root"), &(), |b, _| {
        b.iter(|| axis::step_name_stream(&doc, &root_ctx, Axis::Descendant, NodeTest::Name(item)))
    });
    group.bench_with_input(BenchmarkId::new("naive", "root"), &(), |b, _| {
        b.iter(|| axis::naive(&doc, &root_ctx, Axis::Descendant, NodeTest::Name(item)))
    });
    group.bench_with_input(
        BenchmarkId::new("staircase", "all-elements"),
        &(),
        |b, _| b.iter(|| axis::step(&doc, &all_elems, Axis::Descendant, NodeTest::Name(item))),
    );
    group.bench_with_input(
        BenchmarkId::new("name-stream", "all-elements"),
        &(),
        |b, _| {
            b.iter(|| {
                axis::step_name_stream(&doc, &all_elems, Axis::Descendant, NodeTest::Name(item))
            })
        },
    );
    group.finish();

    let mut group = c.benchmark_group("step_child");
    group.bench_with_input(
        BenchmarkId::new("staircase", "all-elements"),
        &(),
        |b, _| b.iter(|| axis::step(&doc, &all_elems, Axis::Child, NodeTest::Wildcard)),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
